"""Collective-communication cost models (Gloo-style).

Fig. 19's claim is that LiveUpdate's LoRA synchronization time grows
O(log N) with node count because Gloo's AllGather is tree-based, versus the
O(N) growth of naive all-to-all exchange.  This module provides closed-form
cost models for tree, ring, and naive algorithms under the standard
alpha-beta (latency-bandwidth) model, plus a helper to fit/extrapolate the
logarithmic trend the paper projects out to 48 nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .network import NetworkLink, INFINIBAND_EDR

__all__ = [
    "CollectiveCostModel",
    "allgather_tree_seconds",
    "allgather_ring_seconds",
    "allgather_naive_seconds",
    "fit_log_trend",
]


@dataclass(frozen=True)
class CollectiveCostModel:
    """alpha-beta cost model over a given fabric.

    ``alpha`` is per-message latency (seconds); ``beta`` is seconds/byte.
    """

    link: NetworkLink = INFINIBAND_EDR

    @property
    def alpha(self) -> float:
        return self.link.latency_ms / 1e3

    @property
    def beta(self) -> float:
        return 1.0 / self.link.bytes_per_second

    def allgather_tree(self, num_nodes: int, bytes_per_node: float) -> float:
        """Binomial-tree AllGather: ceil(log2 N) rounds.

        Each round doubles the gathered payload, so round ``r`` moves
        ``2**r * bytes_per_node``; total data moved per node is
        ``(N - 1) * bytes_per_node`` but the *rounds* (and thus latency
        terms) grow logarithmically — the effect dominating at the paper's
        payload sizes.
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if num_nodes == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_nodes))
        total = 0.0
        gathered = bytes_per_node
        for _ in range(rounds):
            total += self.alpha + self.beta * gathered
            gathered = min(gathered * 2, num_nodes * bytes_per_node)
        return total

    def allgather_ring(self, num_nodes: int, bytes_per_node: float) -> float:
        """Ring AllGather: N-1 steps, each moving one node's shard."""
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if num_nodes == 1:
            return 0.0
        return (num_nodes - 1) * (self.alpha + self.beta * bytes_per_node)

    def allgather_naive(self, num_nodes: int, bytes_per_node: float) -> float:
        """Naive: every node sends its shard to every other node serially."""
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if num_nodes == 1:
            return 0.0
        return (num_nodes - 1) * (
            self.alpha + self.beta * bytes_per_node * num_nodes / 2.0
        )

    def tree_merge(self, num_nodes: int, merged_bytes: float) -> float:
        """Aggregating tree exchange: O(log N) rounds of ~constant payload.

        LiveUpdate's replicas modify heavily-overlapping hot-id sets, and the
        priority merge deduplicates per index, so the payload at every tree
        level stays close to the merged-update size instead of growing with
        the node count.  That is what produces Fig. 19's logarithmic scaling
        (a plain AllGather is bandwidth-linear in N regardless of topology).
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if num_nodes == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_nodes))
        return rounds * (self.alpha + self.beta * merged_bytes)

    def broadcast_tree(self, num_nodes: int, volume_bytes: float) -> float:
        """Binomial broadcast: ceil(log2 N) full-payload hops."""
        if num_nodes <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_nodes))
        return rounds * (self.alpha + self.beta * volume_bytes)


def allgather_tree_seconds(
    num_nodes: int, bytes_per_node: float, link: NetworkLink = INFINIBAND_EDR
) -> float:
    """AllGather (tree) seconds on ``link`` — convenience wrapper."""
    return CollectiveCostModel(link).allgather_tree(num_nodes, bytes_per_node)


def allgather_ring_seconds(
    num_nodes: int, bytes_per_node: float, link: NetworkLink = INFINIBAND_EDR
) -> float:
    """AllGather (ring) seconds on ``link`` — convenience wrapper."""
    return CollectiveCostModel(link).allgather_ring(num_nodes, bytes_per_node)


def allgather_naive_seconds(
    num_nodes: int, bytes_per_node: float, link: NetworkLink = INFINIBAND_EDR
) -> float:
    """AllGather (naive) seconds on ``link`` — convenience wrapper."""
    return CollectiveCostModel(link).allgather_naive(num_nodes, bytes_per_node)


def fit_log_trend(
    node_counts: np.ndarray, times: np.ndarray
) -> tuple[float, float]:
    """Least-squares fit of ``t = a + b * log2(N)``.

    Returns ``(a, b)``; used to extrapolate measured sync times to larger
    clusters exactly the way Fig. 19's dashed projection does.
    """
    node_counts = np.asarray(node_counts, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if node_counts.shape != times.shape or node_counts.size < 2:
        raise ValueError("need matching arrays of at least two points")
    x = np.log2(node_counts)
    design = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(design, times, rcond=None)
    return float(coef[0]), float(coef[1])
