"""Legacy parameter-server API as a facade over the sharded store.

The original ``ParameterServer`` was a single per-row Python dict: its
``pull_delta`` scanned every key in the world and its ``_shard_of`` used the
salted builtin ``hash()``, so shard statistics differed between processes
with different ``PYTHONHASHSEED``.  The real storage now lives in
:mod:`repro.cluster.shardstore`; this module keeps the seed API surface —
``publish_batch`` / ``pull_rows`` / ``pull_delta`` / ``delta_volume_bytes``
and per-shard stats — as a thin delegation layer so existing callers and
tests keep working, while inheriting splitmix64 placement (deterministic
across processes), O(changed) delta pulls, and vectorized row gathers.
"""

from __future__ import annotations

import numpy as np

from .resilience.errors import DegradedReadError
from .shardstore.shard import ShardStats
from .shardstore.store import QuorumError, ShardedParameterStore

__all__ = ["ShardStats", "ParameterServer", "PublishRefusedError"]


class PublishRefusedError(QuorumError):
    """A facade publish was refused before any write was applied.

    Subclasses :class:`~repro.cluster.shardstore.store.QuorumError` so
    existing ``except QuorumError`` callers keep working, while new code
    can catch the facade-level type without importing shardstore
    internals.  The store is untouched: retry the same batch after the
    fleet heals — nothing was acked, so nothing can be lost or doubled.
    """


class ParameterServer:
    """Versioned row store for embedding tables, sharded by row id.

    Keys are ``(table_name, row_id)``; each write advances the row's version
    to the server's current *publish version*.  Training clusters call
    :meth:`publish_batch` to push rows and bump the version; inference nodes
    call :meth:`pull_delta` to fetch everything newer than their local
    version — exactly the delta-update protocol of Section II-B.

    Args:
        num_shards: splitmix64 hash shards.
        row_bytes: accounting size per row (dtype bytes x dim); ``None``
            derives it from ``row_dim`` and ``row_dtype``.
        row_dim: row width when known up front; otherwise pinned at each
            table's first publish.
        row_dtype: row lane — float64 (train, default) or float32
            (serve; checked downcast at publish, half the bytes).
        replication: copies per key; above 1 the facade inherits quorum
            publishes (a mid-window shard loss surfaces as a typed
            :class:`~repro.cluster.shardstore.store.QuorumError`, never a
            silent row drop), failover reads, and :meth:`repair`.
        auto_compact_every: run log compaction after every N-th version
            bump (see :meth:`ShardedParameterStore.compact`).
    """

    def __init__(
        self,
        num_shards: int = 8,
        row_bytes: int | None = 128,
        row_dim: int | None = None,
        row_dtype=np.float64,
        replication: int = 1,
        auto_compact_every: int | None = None,
    ) -> None:
        self.store = ShardedParameterStore(
            num_shards=num_shards,
            row_bytes=row_bytes,
            row_dim=row_dim,
            row_dtype=row_dtype,
            replication=replication,
            auto_compact_every=auto_compact_every,
        )
        self.num_shards = num_shards
        self.row_bytes = self.store.row_bytes

    # ----------------------------------------------------------------- basics
    @property
    def version(self) -> int:
        return self.store.version

    @property
    def shard_stats(self) -> list[ShardStats]:
        return self.store.shard_stats

    def _shard_of(self, key: tuple[str, int]) -> int:
        """Owning shard of one ``(table, row_id)`` key.

        Routed through the splitmix64 placement ring — never the salted
        builtin ``hash()`` — so every process agrees on the answer.
        """
        table, row_id = key
        return int(self.store.placement.shard_of(table, np.array([row_id]))[0])

    def __len__(self) -> int:
        return len(self.store)

    @property
    def total_bytes(self) -> int:
        return self.store.total_bytes

    # ----------------------------------------------------------------- writes
    def publish_batch(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> int:
        """Write rows under a freshly bumped version; returns that version.

        Version batching: one publish call = one synchronization event, no
        matter how many rows it carries (Section II-B's "version batching").

        Raises
        ------
        PublishRefusedError
            When the write quorum is unreachable.  Nothing was applied
            and no version was bumped; retry the same batch after repair.
        """
        try:
            return self.store.publish_batch(table, indices, rows)
        except QuorumError as err:
            raise PublishRefusedError(
                err.table, err.version, err.needed, err.got
            ) from err

    # ------------------------------------------------------------------ reads
    def _read_coverage_ok(self, since_version: int) -> bool:
        """Whether the live shards can provably answer an exact read.

        True when the available owners of every ring slot intersect
        every acknowledged write quorum, or the slot's primary is live
        and has no missed publish past ``since_version`` (a clean
        primary vouches for its own range).
        """
        store = self.store
        live = store.live_shard_ids
        suspects = set(store.suspect_shard_ids(since_version))
        clean = [sid for sid in live if sid not in suspects]
        return store.placement.coverage_ok(store.replication, live, clean)

    def pull_rows(
        self,
        table: str,
        indices: np.ndarray,
        *,
        degraded_ok: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Point lookups; returns (found_mask, rows) with zeros for misses.

        When the live replica set cannot provably cover every key — too
        many owners down for some ring slot — the read is *stale-risky*:
        with ``degraded_ok=False`` (default) it raises a typed
        :class:`~repro.cluster.resilience.errors.DegradedReadError`
        instead of silently serving possibly-old rows; pass
        ``degraded_ok=True`` to opt into best-effort rows explicitly.
        """
        if not self._read_coverage_ok(0):
            if not degraded_ok:
                raise DegradedReadError(
                    [table], self.version, self.version, reason="coverage"
                )
        return self.store.pull_rows(table, indices)

    def pull_delta(
        self,
        table: str,
        since_version: int,
        *,
        degraded_ok: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All rows of ``table`` newer than ``since_version``; O(changed).

        Returns ``(indices, rows, current_version)``; the caller records the
        returned version as its new sync point.

        When replica exhaustion means the delta cannot be answered
        exactly, the default is a typed :class:`~repro.cluster.\
resilience.errors.DegradedReadError` — never a silently short delta.
        With ``degraded_ok=True`` the call degrades explicitly instead:
        it returns ``(empty, empty, since_version)``, handing the caller
        its *own* sync point back so the gap is re-pulled after repair
        rather than skipped forever.
        """
        if not self._read_coverage_ok(since_version):
            if not degraded_ok:
                raise DegradedReadError(
                    [table], since_version, self.version, reason="coverage"
                )
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(
                    (0, self.store.dim_of(table)), dtype=self.store.row_dtype
                ),
                since_version,
            )
        return self.store.pull_delta(table, since_version)

    def delta_volume_bytes(self, table: str, since_version: int) -> int:
        """Bytes a delta pull *would* transfer (no read accounting)."""
        return self.store.delta_volume_bytes(table, since_version)

    # ---------------------------------------------------------------- failure
    def kill_shard(self, shard_id: int) -> None:
        """Mark one shard unreachable (delegates to the store)."""
        self.store.kill_shard(shard_id)

    def revive_shard(self, shard_id: int) -> None:
        """Bring a killed shard back, stale until :meth:`repair`."""
        self.store.revive_shard(shard_id)

    def repair(self):
        """Re-replicate whatever the revived shards missed."""
        return self.store.repair()

    def compact(self, watermark: int | None = None) -> int:
        """Compact delta logs (watermark-guarded; see the store)."""
        return self.store.compact(watermark)
