"""Sharded, versioned parameter server (the Redis-style tier in Fig. 2).

Production DLRM deployments push trained parameters to a sharded KV store,
which inference nodes pull from.  The simulator keeps real NumPy rows so the
accuracy experiments can actually move parameters through it, while also
exposing the bookkeeping the systems experiments need: version batching,
delta logs (which rows changed since version v), and per-shard volume
accounting for transfer-cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardStats", "ParameterServer"]


@dataclass
class ShardStats:
    """Write/read accounting for one shard."""

    rows_written: int = 0
    rows_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class ParameterServer:
    """Versioned row store for embedding tables, sharded by row id.

    Keys are ``(table_name, row_id)``; each write advances the row's version
    to the server's current *publish version*.  Training clusters call
    :meth:`publish_batch` to push rows and bump the version; inference nodes
    call :meth:`pull_delta` to fetch everything newer than their local
    version — exactly the delta-update protocol of Section II-B.

    Args:
        num_shards: hash shards (affects stats granularity only).
        row_bytes: accounting size per row (dtype bytes x dim).
    """

    def __init__(self, num_shards: int = 8, row_bytes: int = 128) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self.row_bytes = row_bytes
        self.version = 0
        self._rows: dict[tuple[str, int], np.ndarray] = {}
        self._row_version: dict[tuple[str, int], int] = {}
        self.shard_stats = [ShardStats() for _ in range(num_shards)]

    # ----------------------------------------------------------------- basics
    def _shard_of(self, key: tuple[str, int]) -> int:
        return hash(key) % self.num_shards

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def total_bytes(self) -> int:
        return len(self._rows) * self.row_bytes

    # ----------------------------------------------------------------- writes
    def publish_batch(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> int:
        """Write rows under a freshly bumped version; returns that version.

        Version batching: one publish call = one synchronization event, no
        matter how many rows it carries (Section II-B's "version batching").
        """
        indices = np.asarray(indices, dtype=np.int64)
        if rows.shape[0] != indices.shape[0]:
            raise ValueError("indices and rows disagree on length")
        self.version += 1
        for i, row in zip(indices, rows):
            key = (table, int(i))
            self._rows[key] = np.array(row, dtype=np.float64, copy=True)
            self._row_version[key] = self.version
            stats = self.shard_stats[self._shard_of(key)]
            stats.rows_written += 1
            stats.bytes_written += self.row_bytes
        return self.version

    # ------------------------------------------------------------------ reads
    def pull_rows(
        self, table: str, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Point lookups; returns (found_mask, rows) with zeros for misses."""
        indices = np.asarray(indices, dtype=np.int64)
        dim = None
        for key in ((table, int(i)) for i in indices):
            if key in self._rows:
                dim = self._rows[key].shape[0]
                break
        if dim is None:
            return np.zeros(len(indices), dtype=bool), np.zeros((len(indices), 1))
        mask = np.zeros(len(indices), dtype=bool)
        out = np.zeros((len(indices), dim))
        for j, i in enumerate(indices):
            key = (table, int(i))
            row = self._rows.get(key)
            if row is not None:
                mask[j] = True
                out[j] = row
                stats = self.shard_stats[self._shard_of(key)]
                stats.rows_read += 1
                stats.bytes_read += self.row_bytes
        return mask, out

    def pull_delta(
        self, table: str, since_version: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All rows of ``table`` newer than ``since_version``.

        Returns ``(indices, rows, current_version)``; the caller records the
        returned version as its new sync point.
        """
        hits = [
            (key[1], self._rows[key])
            for key, ver in self._row_version.items()
            if key[0] == table and ver > since_version
        ]
        if not hits:
            return np.array([], dtype=np.int64), np.zeros((0, 1)), self.version
        hits.sort(key=lambda kv: kv[0])
        indices = np.array([h[0] for h in hits], dtype=np.int64)
        rows = np.stack([h[1] for h in hits])
        for i in indices:
            stats = self.shard_stats[self._shard_of((table, int(i)))]
            stats.rows_read += 1
            stats.bytes_read += self.row_bytes
        return indices, rows, self.version

    def delta_volume_bytes(self, table: str, since_version: int) -> int:
        """Bytes a delta pull *would* transfer (no read accounting)."""
        count = sum(
            1
            for key, ver in self._row_version.items()
            if key[0] == table and ver > since_version
        )
        return count * self.row_bytes
