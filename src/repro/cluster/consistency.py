"""Replica-consistency verification across inference nodes.

Section II-C's third requirement: "the system must guarantee replica
consistency across distributed inference nodes, ensuring identical outputs
for the same inputs."  This module provides the checker production fleets
run as a canary: feed the same probe batch to every replica and compare
predictions, plus parameter-level comparison utilities for diagnosing
where divergence lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import Batch
from ..dlrm.model import DLRM

__all__ = [
    "ConsistencyReport",
    "check_prediction_consistency",
    "parameter_divergence",
    "ReplicaConvergenceReport",
    "check_replica_convergence",
]


@dataclass
class ConsistencyReport:
    """Result of one fleet-wide consistency probe."""

    num_replicas: int
    max_prediction_gap: float
    mean_prediction_gap: float
    worst_pair: tuple[int, int]
    consistent: bool

    @property
    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else "DIVERGED"
        return (
            f"{status}: {self.num_replicas} replicas, "
            f"max gap {self.max_prediction_gap:.2e} "
            f"(pair {self.worst_pair})"
        )


def check_prediction_consistency(
    models: list[DLRM],
    probe: Batch,
    overlays: list | None = None,
    tolerance: float = 1e-9,
) -> ConsistencyReport:
    """Compare every replica's predictions on the same probe batch.

    Args:
        models: the fleet's serving replicas.
        probe: a shared input batch.
        overlays: optional per-replica embedding overlays (LoRA state); pass
            them to verify consistency *including* local adaptation, or
            omit to check base-parameter consistency only.
        tolerance: max allowed absolute prediction gap.
    """
    if not models:
        raise ValueError("need at least one replica")
    if overlays is not None and len(overlays) != len(models):
        raise ValueError("overlays must align with models")
    preds = []
    for r, model in enumerate(models):
        overlay = overlays[r] if overlays is not None else None
        preds.append(model.predict(probe.dense, probe.sparse_ids, overlay=overlay))
    max_gap, mean_gap, worst = 0.0, 0.0, (0, 0)
    pairs = 0
    for i in range(len(preds)):
        for j in range(i + 1, len(preds)):
            gap = np.abs(preds[i] - preds[j])
            pairs += 1
            mean_gap += float(gap.mean())
            if gap.max() > max_gap:
                max_gap = float(gap.max())
                worst = (i, j)
    mean_gap = mean_gap / pairs if pairs else 0.0
    return ConsistencyReport(
        num_replicas=len(models),
        max_prediction_gap=max_gap,
        mean_prediction_gap=mean_gap,
        worst_pair=worst,
        consistent=max_gap <= tolerance,
    )


@dataclass
class ReplicaConvergenceReport:
    """Result of one store-level replica convergence sweep."""

    tables_checked: int
    copies_checked: int
    missing_copies: int
    version_mismatches: int
    byte_mismatches: int

    @property
    def converged(self) -> bool:
        """True when every live replica holds a byte-identical, correctly
        versioned copy of every row it owns."""
        return (
            self.missing_copies == 0
            and self.version_mismatches == 0
            and self.byte_mismatches == 0
        )

    @property
    def summary(self) -> str:
        status = "CONVERGED" if self.converged else "DIVERGED"
        return (
            f"{status}: {self.copies_checked} copies over "
            f"{self.tables_checked} tables "
            f"(missing {self.missing_copies}, "
            f"stale {self.version_mismatches}, "
            f"byte-diff {self.byte_mismatches})"
        )


def check_replica_convergence(store, tables=None) -> ReplicaConvergenceReport:
    """Audit a replicated parameter store's copies against each other.

    The store-level sibling of :func:`check_prediction_consistency`: for
    every ``(table, row)`` the reconciled truth is the highest-versioned
    copy on any live shard, and every live shard owning that row (at any
    replica rank) must hold it at exactly that version with bit-identical
    bytes.  After :meth:`~repro.cluster.shardstore.store.\
ShardedParameterStore.repair` this must report converged — that is the
    replication protocol's acceptance bar, asserted by the chaos suite.

    Parameters
    ----------
    store : repro.cluster.shardstore.store.ShardedParameterStore
        The store to audit; down shards are skipped (they are expected
        to be stale until revived and repaired).
    tables : list of str, optional
        Restrict the sweep; defaults to every table on any live shard.

    Returns
    -------
    ReplicaConvergenceReport
        Copy counts and the three divergence tallies.
    """
    live = store.live_shard_ids
    if tables is None:
        tables = sorted(
            {t for sid in live for t in store.shards[sid].tables}
        )
    copies_checked = 0
    missing = 0
    stale = 0
    byte_diff = 0
    for table in tables:
        parts = []
        for sid in live:
            exported = store.shards[sid].export_table(table)
            if exported is not None and exported[0].size:
                parts.append(exported)
        if not parts:
            continue
        ids = np.concatenate([p[0] for p in parts])
        rows = np.concatenate([p[1] for p in parts], axis=0)
        versions = np.concatenate([p[2] for p in parts])
        order = np.lexsort((versions, ids))
        ids, rows, versions = ids[order], rows[order], versions[order]
        last = np.r_[ids[1:] != ids[:-1], True]
        truth_ids, truth_rows, truth_versions = (
            ids[last],
            rows[last],
            versions[last],
        )
        owners = store.placement.replica_owners(
            table, truth_ids, store.replication
        )
        for sid in live:
            owned = (owners == sid).any(axis=1)
            if not owned.any():
                continue
            want_ids = truth_ids[owned]
            copies_checked += int(want_ids.size)
            result = store.shards[sid].pull_rows_versions(
                table, want_ids, charge=False
            )
            if result is None:
                missing += int(want_ids.size)
                continue
            found, got_rows, got_versions = result
            missing += int((~found).sum())
            stale += int((found & (got_versions != truth_versions[owned])).sum())
            want_rows = np.ascontiguousarray(truth_rows[owned])
            same_bits = np.all(
                got_rows.view(np.uint8).reshape(got_rows.shape[0], -1)
                == want_rows.view(np.uint8).reshape(want_rows.shape[0], -1),
                axis=1,
            )
            byte_diff += int((found & ~same_bits).sum())
    return ReplicaConvergenceReport(
        tables_checked=len(tables),
        copies_checked=copies_checked,
        missing_copies=missing,
        version_mismatches=stale,
        byte_mismatches=byte_diff,
    )


def parameter_divergence(models: list[DLRM]) -> dict[str, float]:
    """Max pairwise parameter distance per component across the fleet.

    Useful for localising divergence: a fleet can be prediction-consistent
    on hot traffic while cold rows have drifted (eventual consistency).
    """
    if len(models) < 2:
        return {}
    out: dict[str, float] = {}
    num_tables = len(models[0].embeddings)
    for f in range(num_tables):
        worst = 0.0
        for i in range(len(models)):
            for j in range(i + 1, len(models)):
                worst = max(
                    worst,
                    float(
                        np.abs(
                            models[i].embeddings[f].weight
                            - models[j].embeddings[f].weight
                        ).max()
                    ),
                )
        out[f"table_{f}"] = worst
    worst_dense = 0.0
    for i in range(len(models)):
        for j in range(i + 1, len(models)):
            for wa, wb in zip(models[i].bottom.weights, models[j].bottom.weights):
                worst_dense = max(worst_dense, float(np.abs(wa - wb).max()))
            for wa, wb in zip(models[i].top.weights, models[j].top.weights):
                worst_dense = max(worst_dense, float(np.abs(wa - wb).max()))
    out["dense"] = worst_dense
    return out
