"""Replica-consistency verification across inference nodes.

Section II-C's third requirement: "the system must guarantee replica
consistency across distributed inference nodes, ensuring identical outputs
for the same inputs."  This module provides the checker production fleets
run as a canary: feed the same probe batch to every replica and compare
predictions, plus parameter-level comparison utilities for diagnosing
where divergence lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import Batch
from ..dlrm.model import DLRM

__all__ = ["ConsistencyReport", "check_prediction_consistency", "parameter_divergence"]


@dataclass
class ConsistencyReport:
    """Result of one fleet-wide consistency probe."""

    num_replicas: int
    max_prediction_gap: float
    mean_prediction_gap: float
    worst_pair: tuple[int, int]
    consistent: bool

    @property
    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else "DIVERGED"
        return (
            f"{status}: {self.num_replicas} replicas, "
            f"max gap {self.max_prediction_gap:.2e} "
            f"(pair {self.worst_pair})"
        )


def check_prediction_consistency(
    models: list[DLRM],
    probe: Batch,
    overlays: list | None = None,
    tolerance: float = 1e-9,
) -> ConsistencyReport:
    """Compare every replica's predictions on the same probe batch.

    Args:
        models: the fleet's serving replicas.
        probe: a shared input batch.
        overlays: optional per-replica embedding overlays (LoRA state); pass
            them to verify consistency *including* local adaptation, or
            omit to check base-parameter consistency only.
        tolerance: max allowed absolute prediction gap.
    """
    if not models:
        raise ValueError("need at least one replica")
    if overlays is not None and len(overlays) != len(models):
        raise ValueError("overlays must align with models")
    preds = []
    for r, model in enumerate(models):
        overlay = overlays[r] if overlays is not None else None
        preds.append(model.predict(probe.dense, probe.sparse_ids, overlay=overlay))
    max_gap, mean_gap, worst = 0.0, 0.0, (0, 0)
    pairs = 0
    for i in range(len(preds)):
        for j in range(i + 1, len(preds)):
            gap = np.abs(preds[i] - preds[j])
            pairs += 1
            mean_gap += float(gap.mean())
            if gap.max() > max_gap:
                max_gap = float(gap.max())
                worst = (i, j)
    mean_gap = mean_gap / pairs if pairs else 0.0
    return ConsistencyReport(
        num_replicas=len(models),
        max_prediction_gap=max_gap,
        mean_prediction_gap=mean_gap,
        worst_pair=worst,
        consistent=max_gap <= tolerance,
    )


def parameter_divergence(models: list[DLRM]) -> dict[str, float]:
    """Max pairwise parameter distance per component across the fleet.

    Useful for localising divergence: a fleet can be prediction-consistent
    on hot traffic while cold rows have drifted (eventual consistency).
    """
    if len(models) < 2:
        return {}
    out: dict[str, float] = {}
    num_tables = len(models[0].embeddings)
    for f in range(num_tables):
        worst = 0.0
        for i in range(len(models)):
            for j in range(i + 1, len(models)):
                worst = max(
                    worst,
                    float(
                        np.abs(
                            models[i].embeddings[f].weight
                            - models[j].embeddings[f].weight
                        ).max()
                    ),
                )
        out[f"table_{f}"] = worst
    worst_dense = 0.0
    for i in range(len(models)):
        for j in range(i + 1, len(models)):
            for wa, wb in zip(models[i].bottom.weights, models[j].bottom.weights):
                worst_dense = max(worst_dense, float(np.abs(wa - wb).max()))
            for wa, wb in zip(models[i].top.weights, models[j].top.weights):
                worst_dense = max(worst_dense, float(np.abs(wa - wb).max()))
    out["dense"] = worst_dense
    return out
