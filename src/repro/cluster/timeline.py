"""Discrete-event simulator of model-update timelines (Fig. 8).

Each strategy is described by when it *starts* an update and how long that
update takes to land on inference nodes.  The simulator plays an hour (or
any horizon) of wall-clock time and reports, for every instant, which model
version is serving — from which freshness metrics (average/max staleness,
number of versions delivered) follow directly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = ["UpdateEvent", "UpdateTimeline", "simulate_periodic_updates"]


@dataclass(frozen=True)
class UpdateEvent:
    """One update landing on the serving fleet."""

    started_s: float
    applied_s: float
    version: int
    kind: str  # "full" | "delta" | "lora"
    volume_bytes: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.applied_s - self.started_s


@dataclass
class UpdateTimeline:
    """A horizon of update events plus freshness accounting.

    ``data_time(t)`` — the trained-up-to timestamp of the parameters serving
    at time ``t`` — is what recommendation staleness actually measures: an
    update that *started* at s and applied at ``a`` serves data as-of ``s``.
    """

    horizon_s: float
    events: list[UpdateEvent] = field(default_factory=list)

    def add(self, event: UpdateEvent) -> None:
        if event.applied_s < event.started_s:
            raise ValueError("update applied before it started")
        self.events.append(event)
        self.events.sort(key=lambda e: e.applied_s)

    def version_at(self, t: float) -> int:
        """Version serving at time ``t`` (0 = initial model)."""
        times = [e.applied_s for e in self.events]
        idx = bisect.bisect_right(times, t)
        return self.events[idx - 1].version if idx else 0

    def data_time(self, t: float) -> float:
        """Training-data timestamp of the parameters serving at ``t``."""
        times = [e.applied_s for e in self.events]
        idx = bisect.bisect_right(times, t)
        return self.events[idx - 1].started_s if idx else 0.0

    def staleness_at(self, t: float) -> float:
        return t - self.data_time(t)

    def average_staleness(self, resolution_s: float = 10.0) -> float:
        """Time-averaged staleness over the horizon."""
        if self.horizon_s <= 0:
            return 0.0
        total = 0.0
        steps = int(self.horizon_s / resolution_s)
        for i in range(steps):
            total += self.staleness_at(i * resolution_s)
        return total / steps if steps else 0.0

    def max_staleness(self, resolution_s: float = 10.0) -> float:
        steps = int(self.horizon_s / resolution_s)
        return max(
            (self.staleness_at(i * resolution_s) for i in range(steps)),
            default=0.0,
        )

    @property
    def updates_delivered(self) -> int:
        return len([e for e in self.events if e.applied_s <= self.horizon_s])

    @property
    def total_update_seconds(self) -> float:
        """Aggregate time spent performing updates (Fig. 14's metric)."""
        return sum(
            e.duration_s for e in self.events if e.applied_s <= self.horizon_s
        )


def simulate_periodic_updates(
    horizon_s: float,
    interval_s: float,
    update_duration_s: float,
    kind: str,
    volume_bytes: float = 0.0,
    pipeline: bool = False,
) -> UpdateTimeline:
    """Play a periodic update schedule.

    Updates start every ``interval_s``; each takes ``update_duration_s`` to
    land.  Without pipelining, a new update cannot start until the previous
    one has been applied (the back-pressure that makes DeltaUpdate fall
    behind at 5-minute cadence in Fig. 14); with pipelining, transfers
    overlap and land in order.
    """
    if interval_s <= 0 or horizon_s <= 0:
        raise ValueError("interval and horizon must be positive")
    timeline = UpdateTimeline(horizon_s=horizon_s)
    version = 0
    next_start = interval_s
    busy_until = 0.0
    while next_start <= horizon_s:
        start = next_start if pipeline else max(next_start, busy_until)
        if start > horizon_s:
            break
        applied = start + update_duration_s
        version += 1
        timeline.add(
            UpdateEvent(
                started_s=start,
                applied_s=applied,
                version=version,
                kind=kind,
                volume_bytes=volume_bytes,
            )
        )
        busy_until = applied
        next_start += interval_s
    return timeline
