"""Inter-cluster network model.

Update-cost results in the paper (Fig. 14, and the headline "26 minutes to
sync 20 TB over 100 GbE") reduce to transfer time = volume / effective
bandwidth plus propagation latency and a contention discount when update
traffic shares links with serving traffic.  This module provides exactly
that arithmetic, with named link presets used across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkLink", "GBE_100", "INFINIBAND_EDR", "transfer_seconds"]

GB = 1024 ** 3
TB = 1024 ** 4


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point (or bisection) network path.

    Attributes:
        name: label for reports.
        bandwidth_gbps: raw line rate in **gigabits** per second.
        latency_ms: one-way propagation/setup latency.
        efficiency: achievable fraction of line rate (protocol overheads,
            incast, imperfect pipelining); 0.85-0.95 typical.
    """

    name: str
    bandwidth_gbps: float
    latency_ms: float = 0.5
    efficiency: float = 0.9

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0 * self.efficiency

    def transfer_seconds(
        self, volume_bytes: float, contention: float = 0.0
    ) -> float:
        """Time to move ``volume_bytes``.

        Args:
            contention: fraction of the link consumed by competing traffic
                (serving RPCs); update traffic gets the remainder.
        """
        if volume_bytes < 0:
            raise ValueError("volume must be non-negative")
        if not 0.0 <= contention < 1.0:
            raise ValueError("contention must be in [0, 1)")
        effective = self.bytes_per_second * (1.0 - contention)
        return self.latency_ms / 1e3 + volume_bytes / effective

    def scaled(self, factor: float) -> "NetworkLink":
        """A link with ``factor`` times the bandwidth (aggregated trunks)."""
        return NetworkLink(
            name=f"{self.name}x{factor:g}",
            bandwidth_gbps=self.bandwidth_gbps * factor,
            latency_ms=self.latency_ms,
            efficiency=self.efficiency,
        )


#: Commodity inter-cluster link from the paper's examples.
GBE_100 = NetworkLink(name="100GbE", bandwidth_gbps=100.0)

#: Intra-cluster fabric of the evaluation testbed.
INFINIBAND_EDR = NetworkLink(
    name="InfiniBand-EDR", bandwidth_gbps=100.0, latency_ms=0.05, efficiency=0.95
)


def transfer_seconds(
    volume_bytes: float, link: NetworkLink = GBE_100, contention: float = 0.0
) -> float:
    """Module-level convenience wrapper around :meth:`NetworkLink.transfer_seconds`."""
    return link.transfer_seconds(volume_bytes, contention=contention)
