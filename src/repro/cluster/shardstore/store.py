"""The sharded parameter store: the Fig. 2 KV tier, array-native.

``ShardedParameterStore`` partitions ``(table, row_id)`` keys across N
:class:`ParameterShard` instances via the splitmix64 consistent-hash
:class:`ShardPlacement` — byte-identical placement in every process of the
fleet, unlike the seed store's salted ``hash()``.  Publishes partition their
index batch per shard in one vectorized pass (one owner lookup + one
argsort); pulls slice each shard's delta log, so ``pull_delta(since)`` costs
O(changed rows) rather than the seed's O(all rows) dict scan.  Version
batching is preserved: one publish event = one global version bump however
many tables and rows it carries.

Shards can be added or removed live: consistent hashing remaps only the
splitmix64-owned key ranges of the shards that changed owners (~1/N of
keys), and :meth:`add_shard` / :meth:`remove_shard` migrate exactly those
rows, log entries included, so delta semantics survive rebalancing.

**Replication and self-healing.**  With ``replication=R`` each key lives on
the next R distinct shards clockwise from its ring position
(:meth:`ShardPlacement.replica_owners`), and the failure story changes from
"one lost shard silently loses rows" to an explicit contract:

* a publish is **acknowledged** only when every row reached its write
  quorum of ``R // 2 + 1`` live replicas; otherwise it raises a typed
  :class:`QuorumError` *before* bumping the version or writing anything,
  so a failed publish can simply be retried after repair;
* replicas that miss an acknowledged publish (down, or dropped by fault
  injection) are recorded in a store-side missed-version ledger; reads
  reconcile per row by version, so :meth:`pull_delta` and
  :meth:`pull_rows` transparently fail over to the freshest live copy;
* :meth:`plan_repair` / :meth:`repair` re-replicate exactly the rows a
  revived or stale replica is behind on, restoring byte-identical copies.

Delta logs no longer grow without bound: clients register their sync
points with the store, and :meth:`compact` truncates each log up to the
oldest registered sync point — never past it — while readers below the
truncation floor are still served exactly from the resident version
vectors (at O(resident) cost instead of O(changed)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core.dtypes import as_float32_rows, as_float64_rows
from ...obs.metrics import registry as _obs_registry
from ...obs.recorder import flight_recorder as _flight_recorder
from .placement import ShardPlacement
from .shard import ParameterShard, ShardStats

__all__ = [
    "QuorumError",
    "RebalanceReport",
    "RepairTask",
    "RepairPlan",
    "RepairReport",
    "ShardedParameterStore",
]

_REG = _obs_registry()
_PUBLISHES = _REG.counter(
    "shardstore.store.publishes", help="version bumps (publish events)"
)
_ROWS_WRITTEN = _REG.counter(
    "shardstore.store.rows_written", help="rows written across all publishes"
)
_VERSION = _REG.gauge(
    "shardstore.store.version", help="current global store version"
)
_RESIDENT_ROWS = _REG.gauge(
    "shardstore.store.resident_rows", help="rows resident across all shards"
)
_NUM_SHARDS = _REG.gauge(
    "shardstore.store.num_shards", help="live shard count"
)
_SHARDS_DOWN = _REG.gauge(
    "shardstore.store.shards_down", help="shards currently killed/unreachable"
)
_REPLICATION_LAG = _REG.gauge(
    "shardstore.store.replication_lag",
    help="missed (shard, version) publish applications awaiting repair",
)
_QUORUM_FAILURES = _REG.counter(
    "shardstore.store.quorum_failures",
    help="publishes refused for missing their write quorum",
)
_ROWS_REPAIRED = _REG.counter(
    "shardstore.store.rows_repaired",
    help="row copies re-replicated onto stale replicas",
)


class QuorumError(RuntimeError):
    """A publish could not reach its write quorum and was not applied.

    Raised *before* the version bump and before any shard is written, so
    the store is untouched: the caller (typically a
    :class:`~repro.cluster.shardstore.client.ShardClient`, whose staged
    batches survive a failed flush) retries the same publish after the
    fleet heals.  Never swallow this into a silent row drop.
    """

    def __init__(self, table: str, version: int, needed: int, got: int):
        super().__init__(
            f"publish v{version} on table {table!r} reached only {got} of "
            f"{needed} required replicas"
        )
        self.table = table
        self.version = version
        self.needed = needed
        self.got = got


@dataclass
class RebalanceReport:
    """Outcome of one shard add/remove migration."""

    shard_ids: list[int]
    rows_moved: int
    rows_total: int
    bytes_moved: int

    @property
    def moved_fraction(self) -> float:
        return self.rows_moved / self.rows_total if self.rows_total else 0.0


@dataclass
class RepairTask:
    """Rows one stale replica must copy from its fresh peers."""

    shard_id: int
    table: str
    ids: np.ndarray
    rows: np.ndarray
    versions: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.ids.size)


@dataclass
class RepairPlan:
    """Everything :meth:`ShardedParameterStore.repair` would copy.

    Built by :meth:`~ShardedParameterStore.plan_repair` without mutating
    the store, so failure experiments can inspect (and account the bytes
    of) a repair before running it.
    """

    tasks: list[RepairTask] = field(default_factory=list)
    stale_shards: list[int] = field(default_factory=list)
    rows_to_copy: int = 0
    bytes_to_copy: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.tasks and not self.stale_shards


@dataclass
class RepairReport:
    """What one :meth:`ShardedParameterStore.repair` actually copied."""

    rows_copied: int
    bytes_copied: int
    shards_healed: list[int]


class ShardedParameterStore:
    """Versioned row store sharded by stable hash of ``(table, row_id)``.

    Parameters
    ----------
    num_shards : int, optional
        Initial shard count (ids ``0..N-1``).
    row_bytes : int or None, optional
        Accounting size per row for transfer-cost models.  ``None``
        computes it lane-aware as ``(row_dim or 16) * itemsize`` of
        ``row_dtype`` — a float32 store then charges half a float64
        store's bytes through every stat and transfer model.
    row_dim : int, optional
        Row width, when known up front; otherwise pinned at each table's
        first publish (no more probing rows to learn the dim).
    row_dtype : numpy dtype, optional
        Row lane of every resident block.  float64 (the default) stores
        rows exactly; float32 downcasts once at publish time through a
        *checked* coercion (:func:`repro.core.dtypes.as_float32_rows`)
        that raises when any value moves past ``downcast_rtol``.
    downcast_rtol : float, optional
        Tolerance of the publish-time float32 downcast; ignored on the
        float64 lane.
    replication : int, optional
        Copies per key (the next R distinct ring owners).  1 (default)
        keeps the single-copy fast paths bit-for-bit; R > 1 turns on
        quorum publishes, version-reconciled reads and repair.
    auto_compact_every : int or None, optional
        When set, run :meth:`compact` automatically after every N-th
        version bump, so delta logs stay bounded without anyone calling
        maintenance by hand.
    virtual_nodes : int, optional
        Ring points per shard.
    seed : int, optional
        Placement ring seed (must match across the fleet).
    """

    def __init__(
        self,
        num_shards: int = 8,
        row_bytes: int | None = 128,
        row_dim: int | None = None,
        row_dtype=np.float64,
        downcast_rtol: float = 1e-6,
        replication: int = 1,
        auto_compact_every: int | None = None,
        virtual_nodes: int = 64,
        seed: int = 0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        if not 1 <= replication <= num_shards:
            raise ValueError(
                f"replication {replication} must be in [1, {num_shards}]"
            )
        if auto_compact_every is not None and auto_compact_every <= 0:
            raise ValueError("auto_compact_every must be positive")
        self.row_dtype = np.dtype(row_dtype)
        if self.row_dtype.kind != "f":
            raise TypeError(f"row_dtype must be a float lane, got {row_dtype}")
        if row_bytes is None:
            row_bytes = (row_dim or 16) * self.row_dtype.itemsize
        self.row_bytes = row_bytes
        self.row_dim = row_dim
        self.downcast_rtol = downcast_rtol
        self.replication = replication
        self.auto_compact_every = auto_compact_every
        self.version = 0
        self.placement = ShardPlacement(
            list(range(num_shards)), virtual_nodes=virtual_nodes, seed=seed
        )
        self.shards: dict[int, ParameterShard] = {
            sid: ParameterShard(sid, row_bytes, row_dtype=self.row_dtype)
            for sid in range(num_shards)
        }
        self._dims: dict[str, int] = {}
        self._down: set[int] = set()
        # Hinted-handoff ledger: store version -> list per shard of
        # publishes that shard failed to apply (down or fault-dropped).
        self._missed: dict[int, list[int]] = {}
        self._armed_drops: dict[int, int] = {}
        self._sync_points: dict[int, int] = {}
        self._next_sync_token = 1

    # -------------------------------------------------------------- geometry
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def quorum(self) -> int:
        """Replicas that must apply a publish for it to be acknowledged."""
        return self.replication // 2 + 1

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self.shards)

    @property
    def live_shard_ids(self) -> list[int]:
        """Shards currently reachable (not killed), ascending."""
        return [sid for sid in self.shard_ids if sid not in self._down]

    @property
    def down_shard_ids(self) -> list[int]:
        return sorted(self._down)

    @property
    def replication_lag(self) -> int:
        """Missed ``(shard, version)`` applications awaiting repair."""
        return sum(len(v) for v in self._missed.values())

    def missed_versions(self, shard_id: int) -> list[int]:
        """Acknowledged store versions ``shard_id`` has not applied."""
        return list(self._missed.get(shard_id, ()))

    @property
    def shard_stats(self) -> list[ShardStats]:
        """Per-shard accounting, in ascending shard-id order."""
        return [self.shards[sid].stats for sid in self.shard_ids]

    def __len__(self) -> int:
        return sum(s.num_rows for s in self.shards.values())

    @property
    def total_bytes(self) -> int:
        return len(self) * self.row_bytes

    def dim_of(self, table: str) -> int:
        """Row width of ``table`` (constructor/first-publish pin, else 1)."""
        return self._dims.get(table, self.row_dim if self.row_dim else 1)

    # --------------------------------------------------------------- failure
    def kill_shard(self, shard_id: int) -> None:
        """Mark one shard unreachable (crash, partition).

        The shard's rows stay where they are — a kill models loss of
        *availability*; :meth:`revive_shard` brings the same (now stale)
        data back, and :meth:`repair` reconverges it.  Publishes keep
        acknowledging as long as every row still reaches its quorum.
        """
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id}")
        if shard_id in self._down:
            raise ValueError(f"shard {shard_id} is already down")
        self._down.add(shard_id)
        if _REG.enabled:
            _SHARDS_DOWN.set(len(self._down))
            _flight_recorder().record(
                "shardstore.store",
                "shard_killed",
                f"shard {shard_id} down ({len(self._down)} of "
                f"{self.num_shards})",
                shard_id=shard_id,
            )

    def revive_shard(self, shard_id: int) -> None:
        """Bring a killed shard back, stale: run :meth:`repair` to heal it."""
        if shard_id not in self._down:
            raise ValueError(f"shard {shard_id} is not down")
        self._down.discard(shard_id)
        if _REG.enabled:
            _SHARDS_DOWN.set(len(self._down))
            _flight_recorder().record(
                "shardstore.store",
                "shard_revived",
                f"shard {shard_id} back, "
                f"{len(self._missed.get(shard_id, ()))} versions behind",
                shard_id=shard_id,
            )

    def arm_publish_drop(self, shard_id: int, publishes: int = 1) -> None:
        """Make ``shard_id`` silently drop its next N publish applications.

        The fault-injection hook (:class:`repro.cluster.faults.FaultPlane`
        arms it from ``drop_publish`` events): the shard stays live but
        fails to apply, exactly like a lost message — quorum accounting
        and the missed-version ledger treat it the same as a down shard.
        """
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id}")
        if publishes <= 0:
            raise ValueError("publishes must be positive")
        self._armed_drops[shard_id] = (
            self._armed_drops.get(shard_id, 0) + publishes
        )

    def _consume_armed_drops(self) -> frozenset[int]:
        if not self._armed_drops:
            return frozenset()
        dropping = frozenset(self._armed_drops)
        for sid in dropping:
            remaining = self._armed_drops[sid] - 1
            if remaining:
                self._armed_drops[sid] = remaining
            else:
                del self._armed_drops[sid]
        return dropping

    # ---------------------------------------------------------------- writes
    @staticmethod
    def _dedupe_last(
        indices: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unique ids ascending; on duplicates the last occurrence wins."""
        _, first_in_reversed = np.unique(indices[::-1], return_index=True)
        keep = indices.size - 1 - first_in_reversed
        return indices[keep], rows[keep]

    def _normalize_batch(
        self, indices: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shape/dtype validation, BEFORE any version bump or write.

        This is the ONE point where rows cross onto the store's lane: a
        float32 store downcasts float64 training rows here through the
        checked coercer, so corruption (overflow, precision collapse)
        raises before any version bump instead of being served later.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.row_dtype == np.dtype(np.float32):
            rows = as_float32_rows(rows, name="rows", rtol=self.downcast_rtol)
        else:
            rows = as_float64_rows(rows, name="rows")
        if rows.ndim != 2 or rows.shape[0] != indices.shape[0]:
            raise ValueError("indices and rows disagree on length")
        return indices, rows

    def _reconcile_width(
        self, table: str, rows: np.ndarray
    ) -> np.ndarray:
        """Keep one row width per table across every shard.

        A wider batch re-widens the table's blocks on all shards (existing
        rows zero-pad on the right); a narrower batch zero-pads the incoming
        rows — the correct semantics for rank-adapted LoRA factors, whose
        pruned trailing components are zero.
        """
        width = int(rows.shape[1])
        known = self._dims.get(table)
        if known is None:
            self._dims[table] = width
        elif width > known:
            self._dims[table] = width
            for shard in self.shards.values():
                block = shard.block(table)
                if block is not None:
                    block.rewiden(width)
        elif width < known:
            rows = np.pad(rows, ((0, 0), (0, known - width)))
        return rows

    def _apply_mask(
        self, owners: np.ndarray, drops: frozenset[int]
    ) -> np.ndarray | None:
        """Which ``(row, rank)`` writes will land; None means all of them."""
        blocked = self._down | set(drops)
        if not blocked:
            return None
        return ~np.isin(
            owners, np.asarray(sorted(blocked), dtype=np.int64)
        )

    def _scatter_shards(
        self,
        table: str,
        ids: np.ndarray,
        rows: np.ndarray,
        owner_flat: np.ndarray,
        row_idx: np.ndarray,
        version: int,
    ) -> int:
        """One partition pass over the flattened ``(row, rank)`` writes.

        A row's replica owners are distinct shards, so grouping the
        flattened matrix by shard still hands every shard unique ids —
        one ingest per shard instead of one per ``(rank, shard)``, which
        amortizes the slot-table searchsorted cost over R-times-larger
        batches.
        """
        if owner_flat.size == 0:
            return 0
        # Narrow ids sort ~4x faster (radix kicks in for <=16-bit keys).
        sort_key = owner_flat
        if int(owner_flat[owner_flat.argmax()]) <= np.iinfo(np.uint16).max:
            sort_key = owner_flat.astype(np.uint16)
        order = np.argsort(sort_key, kind="stable")
        owner_flat, row_idx = owner_flat[order], row_idx[order]
        bounds = np.flatnonzero(np.r_[True, owner_flat[1:] != owner_flat[:-1]])
        written = 0
        for start, stop in zip(bounds, np.r_[bounds[1:], owner_flat.size]):
            take = row_idx[start:stop]
            written += self.shards[int(owner_flat[start])].publish(
                table, ids[take], rows[take], version
            )
        return written

    def _apply_publish(
        self,
        table: str,
        ids: np.ndarray,
        rows: np.ndarray,
        owners: np.ndarray,
        mask: np.ndarray | None,
        version: int,
    ) -> int:
        rows = self._reconcile_width(table, rows)
        if ids.size == 0:
            return 0
        owner_flat = owners.ravel()
        row_idx = np.repeat(
            np.arange(ids.size, dtype=np.int64), self.replication
        )
        if mask is not None:
            sel = mask.ravel()
            owner_flat, row_idx = owner_flat[sel], row_idx[sel]
        written = self._scatter_shards(
            table, ids, rows, owner_flat, row_idx, version
        )
        if mask is not None and not mask.all():
            for sid in np.unique(owners[~mask]):
                ledger = self._missed.setdefault(int(sid), [])
                if not ledger or ledger[-1] != version:
                    ledger.append(version)
        return written

    def publish_batch(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> int:
        """Write rows under a freshly bumped version.

        Parameters
        ----------
        table : str
            Destination table.
        indices : numpy.ndarray of int64
            Row ids; duplicates resolve to the last occurrence.
        rows : numpy.ndarray
            ``(len(indices), dim)`` row payloads.

        Returns
        -------
        int
            The version this publish landed under.

        Raises
        ------
        QuorumError
            When any row cannot reach its write quorum of live replicas;
            the store (version included) is left untouched.
        """
        return self.publish_many([(table, indices, rows)])

    def publish_many(
        self, batches: list[tuple[str, np.ndarray, np.ndarray]]
    ) -> int:
        """Several tables under ONE version bump (one synchronization event).

        This is the client-side batching primitive: a trainer pushing all
        its embedding tables at a window boundary is one publish event, not
        one per table.  Every batch validates — and, under replication,
        proves its write quorum — before the bump, so a malformed or
        under-quorum batch leaves the version (and every table) untouched.
        """
        prepared = []
        for table, indices, rows in batches:
            indices, rows = self._normalize_batch(indices, rows)
            if indices.size:
                indices, rows = self._dedupe_last(indices, rows)
                owners = self.placement.replica_owners(
                    table, indices, self.replication
                )
            else:
                owners = np.empty((0, self.replication), dtype=np.int64)
            prepared.append((table, indices, rows, owners))
        drops = self._consume_armed_drops()
        version = self.version + 1
        masks: list[np.ndarray | None] = []
        failed: tuple[str, int] | None = None
        for table, indices, _, owners in prepared:
            mask = self._apply_mask(owners, drops) if indices.size else None
            if mask is not None and failed is None:
                got = int(mask.sum(axis=1).min())
                if got < self.quorum:
                    failed = (table, got)
            masks.append(mask)
        if failed is not None:
            table, got = failed
            if _REG.enabled:
                _QUORUM_FAILURES.inc()
                _flight_recorder().record(
                    "shardstore.store",
                    "quorum_failure",
                    f"publish v{version} on {table!r} refused "
                    f"({got}/{self.quorum} replicas)",
                    table=table,
                    got=got,
                    needed=self.quorum,
                )
            raise QuorumError(table, version, self.quorum, got)
        self.version = version
        written = 0
        for (table, indices, rows, owners), mask in zip(prepared, masks):
            written += self._apply_publish(
                table, indices, rows, owners, mask, version
            )
        self._note_publish(written)
        if (
            self.auto_compact_every
            and version % self.auto_compact_every == 0
        ):
            self.compact()
        return version

    def _note_publish(self, written: int) -> None:
        """Fold one publish event into the process metrics registry."""
        if not _REG.enabled:
            return
        _PUBLISHES.inc()
        _ROWS_WRITTEN.add(written)
        _VERSION.set(self.version)
        _RESIDENT_ROWS.set(len(self))
        _NUM_SHARDS.set(self.num_shards)
        _REPLICATION_LAG.set(self.replication_lag)

    # ----------------------------------------------------------------- reads
    @staticmethod
    def _reconcile_parts(
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge per-replica ``(ids, rows, versions)`` slices per-row.

        Each id keeps its highest-versioned copy — the read-side half of
        the quorum protocol: whichever live replica is freshest for a row
        wins, so a dead primary never hides an acknowledged write that
        survives on its peers.
        """
        ids = np.concatenate([p[0] for p in parts])
        rows = np.concatenate([p[1] for p in parts], axis=0)
        versions = np.concatenate([p[2] for p in parts])
        order = np.lexsort((versions, ids))
        ids, rows, versions = ids[order], rows[order], versions[order]
        last = np.r_[ids[1:] != ids[:-1], True]
        return ids[last], rows[last], versions[last]

    def pull_rows(
        self, table: str, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Point lookups across shards, freshest live replica per row.

        Parameters
        ----------
        table : str
            Table to read.
        indices : numpy.ndarray of int64
            Row ids to fetch.

        Returns
        -------
        found_mask : numpy.ndarray of bool
            Which ids were resident on some live replica.
        rows : numpy.ndarray
            ``(len(indices), dim)`` payloads; zeros where missed.
        """
        indices = np.asarray(indices, dtype=np.int64)
        mask = np.zeros(indices.size, dtype=bool)
        out = np.zeros((indices.size, self.dim_of(table)), dtype=self.row_dtype)
        if indices.size == 0:
            return mask, out
        if self.replication == 1 and not self._down:
            owners = self.placement.shard_of(table, indices)
            for sid in np.unique(owners):
                sel = owners == sid
                result = self.shards[int(sid)].pull_rows(table, indices[sel])
                if result is None:
                    continue
                found, rows = result
                sub = np.flatnonzero(sel)[found]
                mask[sub] = True
                out[sub] = rows[found]
            return mask, out
        owners = self.placement.replica_owners(
            table, indices, self.replication
        )
        best = np.zeros(indices.size, dtype=np.int64)
        for k in range(self.replication):
            col = owners[:, k]
            for sid in np.unique(col):
                if int(sid) in self._down:
                    continue
                sel = np.flatnonzero(col == sid)
                result = self.shards[int(sid)].pull_rows_versions(
                    table, indices[sel]
                )
                if result is None:
                    continue
                found, rows, versions = result
                fresher = found & (versions > best[sel])
                sub = sel[fresher]
                mask[sub] = True
                out[sub] = rows[fresher]
                best[sub] = versions[fresher]
        return mask, out

    def pull_delta(
        self, table: str, since_version: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All rows of ``table`` newer than ``since_version``; O(changed).

        Under replication the delta is reconciled across every live
        replica's log (per-row max version), so a killed shard never
        hides an acknowledged publish that reached its quorum — the read
        fails over to whichever surviving copy is freshest, row by row.

        Parameters
        ----------
        table : str
            Table to slice.
        since_version : int
            The caller's sync point; entries at or below it are skipped.
            A value at or beyond the current version (including "in the
            future") yields an empty delta.

        Returns
        -------
        indices : numpy.ndarray of int64
            Changed row ids, ascending.
        rows : numpy.ndarray
            Their current payloads.
        current_version : int
            The store version — the caller's new sync point.
        """
        if self.replication == 1 and not self._down:
            parts = [
                self.shards[sid].pull_delta(table, since_version)
                for sid in self.shard_ids
            ]
            parts = [p for p in parts if p[0].size]
            if not parts:
                return (
                    np.empty(0, dtype=np.int64),
                    np.zeros((0, self.dim_of(table)), dtype=self.row_dtype),
                    self.version,
                )
            ids = np.concatenate([p[0] for p in parts])
            rows = np.concatenate([p[1] for p in parts], axis=0)
            order = np.argsort(ids)  # shards own disjoint key sets
            return ids[order], rows[order], self.version
        parts = [
            self.shards[sid].pull_delta_versions(table, since_version)
            for sid in self.live_shard_ids
        ]
        parts = [p for p in parts if p[0].size]
        if not parts:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros((0, self.dim_of(table)), dtype=self.row_dtype),
                self.version,
            )
        ids, rows, _ = self._reconcile_parts(parts)
        return ids, rows, self.version

    # ------------------------------------------------ resilient-read surface
    def suspect_shard_ids(self, since_version: int) -> list[int]:
        """Live shards that may be stale for a reader synced at ``since``.

        A shard is *suspect* when its missed-version ledger holds any
        acknowledged publish past the reader's sync point: a delta read
        served from that shard's own log alone could silently omit rows.
        Live shards whose misses are all at or below ``since_version``
        are still clean for delta reads — the reader already holds those
        rows from an earlier (quorum-reconciled) sync.
        """
        out: list[int] = []
        for sid in self.live_shard_ids:
            missed = self._missed.get(sid)
            if missed and any(v > since_version for v in missed):
                out.append(sid)
        return out

    def pull_delta_primary(
        self, table: str, since_version: int, shard_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One shard's own delta slice, restricted to rows it is primary for.

        The resilient client's cheap path: a clean primary (live, not
        suspect past ``since_version``) answers for its own key range
        from its local log — one replica's bytes instead of the R-way
        reconciled read.  Exactness for a *suspect* or dead primary is
        the caller's problem (see :meth:`pull_delta_ranges`).

        Returns
        -------
        ids, rows, versions : numpy.ndarray
            The shard's changed rows whose primary owner it is,
            ascending by id, with the store version of each write.
        """
        if shard_id not in self.shards:
            raise KeyError(f"unknown shard {shard_id}")
        if shard_id in self._down:
            raise RuntimeError(f"shard {shard_id} is down")
        ids, rows, versions = self.shards[shard_id].pull_delta_versions(
            table, since_version
        )
        if ids.size == 0:
            return ids, rows, versions
        primary = self.placement.shard_of(table, ids) == shard_id
        return ids[primary], rows[primary], versions[primary]

    def pull_delta_ranges(
        self,
        table: str,
        since_version: int,
        primary_ids: list[int],
        from_shards: list[int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reconciled delta for the key ranges of selected primaries.

        The resilient client's failover path: when some primaries are
        down, partitioned, or suspect, the rows *they* own are read from
        ``from_shards`` (typically every reachable shard) and reconciled
        per-row to the freshest acknowledged copy — the same max-version
        merge :meth:`pull_delta` uses, restricted to the uncovered key
        ranges so healthy primaries' bytes are not re-transferred.

        Returns
        -------
        ids, rows, versions : numpy.ndarray
            Changed rows whose primary owner is in ``primary_ids``,
            ascending by id, with the store version of each write.
        """
        empty = (
            np.empty(0, dtype=np.int64),
            np.zeros((0, self.dim_of(table)), dtype=self.row_dtype),
            np.empty(0, dtype=np.int64),
        )
        if not primary_ids or not from_shards:
            return empty
        parts = []
        for sid in from_shards:
            if sid in self._down:
                continue
            part = self.shards[sid].pull_delta_versions(table, since_version)
            if part[0].size:
                parts.append(part)
        if not parts:
            return empty
        ids, rows, versions = self._reconcile_parts(parts)
        primaries = np.asarray(sorted(set(int(s) for s in primary_ids)), dtype=np.int64)
        keep = np.isin(self.placement.shard_of(table, ids), primaries)
        return ids[keep], rows[keep], versions[keep]

    def delta_volume_bytes(self, table: str, since_version: int) -> int:
        """Bytes a delta pull *would* transfer (no read accounting).

        Under replication this counts every live replica's log slice —
        the same volume the reconciled pull actually reads.
        """
        return self.row_bytes * sum(
            self.shards[sid].changed_count(table, since_version)
            for sid in self.live_shard_ids
        )

    def delta_shard_volumes(
        self, table: str, since_version: int
    ) -> dict[int, int]:
        """Per-shard byte volume of a prospective delta pull."""
        return {
            sid: self.shards[sid].changed_count(table, since_version)
            * self.row_bytes
            for sid in self.live_shard_ids
        }

    # ---------------------------------------------------------- sync points
    def register_sync_point(self, version: int | None = None) -> int:
        """Register a reader's sync point; returns its token.

        The oldest registered sync point is the compaction watermark:
        :meth:`compact` never truncates log entries a registered reader
        still needs.  Readers update via :meth:`update_sync_point` after
        each pull and release with :meth:`unregister_sync_point` — a
        reader that stops pulling without unregistering deliberately pins
        the watermark (that is the guard working, not a leak).
        """
        token = self._next_sync_token
        self._next_sync_token += 1
        self._sync_points[token] = (
            self.version if version is None else int(version)
        )
        return token

    def update_sync_point(self, token: int, version: int) -> None:
        if token not in self._sync_points:
            raise KeyError(f"unknown sync token {token}")
        self._sync_points[token] = int(version)

    def unregister_sync_point(self, token: int) -> None:
        self._sync_points.pop(token, None)

    def oldest_sync_point(self) -> int | None:
        """The furthest-behind registered reader, or None when none."""
        return min(self._sync_points.values()) if self._sync_points else None

    # ----------------------------------------------------------- maintenance
    def compact(self, watermark: int | None = None) -> int:
        """Compact every shard's delta logs; returns entries dropped.

        The keep-latest-per-id squeeze always runs.  Truncation below a
        version requires a watermark: the caller's (e.g. the version
        manager's oldest retained store version), clamped so it never
        exceeds the oldest registered client sync point — the store
        *refuses* to drop log entries a registered reader still needs.
        With no watermark and no registered readers, compaction stays
        fully lossless.
        """
        floor = self.oldest_sync_point()
        if watermark is None:
            watermark = floor
        elif floor is not None:
            watermark = min(int(watermark), floor)
        return sum(s.compact(watermark) for s in self.shards.values())

    def plan_repair(self) -> RepairPlan:
        """What re-replication is needed, without doing it.

        For every *live* shard with missed versions, reconcile its peers'
        delta logs since its oldest miss, keep the rows the shard owns
        (any replica rank), and diff against the shard's own row versions
        — the tasks list exactly the copies it is behind on.  Shards
        still down are reported in ``stale_shards`` only once revived.
        """
        plan = RepairPlan()
        for sid in sorted(self._missed):
            if sid in self._down or not self._missed[sid]:
                continue
            plan.stale_shards.append(sid)
            since = min(self._missed[sid]) - 1
            shard = self.shards[sid]
            peers = [p for p in self.live_shard_ids if p != sid]
            tables = sorted(
                {t for p in peers for t in self.shards[p].tables}
            )
            for table in tables:
                parts = [
                    self.shards[p].pull_delta_versions(
                        table, since, charge=False
                    )
                    for p in peers
                ]
                parts = [p for p in parts if p[0].size]
                if not parts:
                    continue
                ids, rows, versions = self._reconcile_parts(parts)
                owned = (
                    self.placement.replica_owners(
                        table, ids, self.replication
                    )
                    == sid
                ).any(axis=1)
                if not owned.any():
                    continue
                ids, rows, versions = ids[owned], rows[owned], versions[owned]
                mine = shard.pull_rows_versions(table, ids, charge=False)
                have = (
                    np.zeros(ids.size, dtype=np.int64)
                    if mine is None
                    else mine[2]
                )
                behind = versions > have
                if not behind.any():
                    continue
                plan.tasks.append(
                    RepairTask(
                        shard_id=sid,
                        table=table,
                        ids=ids[behind],
                        rows=rows[behind],
                        versions=versions[behind],
                    )
                )
        plan.rows_to_copy = sum(t.num_rows for t in plan.tasks)
        plan.bytes_to_copy = plan.rows_to_copy * self.row_bytes
        return plan

    def repair(self, plan: RepairPlan | None = None, tracer=None) -> RepairReport:
        """Re-replicate stale rows onto every live replica; heal the ledger.

        Best-effort under over-quorum loss: rows with no fresh live
        source cannot be copied (the quorum contract only covers
        schedules that keep a majority of each row's replicas alive).
        Copied rows land with their original versions and delta-log
        entries, so downstream pulls from the healed replica serve them.
        """
        if tracer is not None:
            with tracer.span("shardstore.store.repair") as span:
                report = self._repair(plan)
                span.attrs["rows"] = report.rows_copied
                span.attrs["bytes"] = report.bytes_copied
                span.attrs["shards"] = len(report.shards_healed)
            return report
        return self._repair(plan)

    def _repair(self, plan: RepairPlan | None) -> RepairReport:
        if plan is None:
            plan = self.plan_repair()
        for task in plan.tasks:
            self.shards[task.shard_id].ingest(
                task.table, task.ids, task.rows, task.versions
            )
        for sid in plan.stale_shards:
            self._missed.pop(sid, None)
        report = RepairReport(
            rows_copied=plan.rows_to_copy,
            bytes_copied=plan.bytes_to_copy,
            shards_healed=list(plan.stale_shards),
        )
        if _REG.enabled:
            _ROWS_REPAIRED.add(report.rows_copied)
            _REPLICATION_LAG.set(self.replication_lag)
            if report.shards_healed:
                _flight_recorder().record(
                    "shardstore.store",
                    "repair",
                    f"re-replicated {report.rows_copied} rows onto "
                    f"{len(report.shards_healed)} stale shards",
                    rows=report.rows_copied,
                    bytes=report.bytes_copied,
                    shards=len(report.shards_healed),
                )
        return report

    def _migrate_to(self, new_placement: ShardPlacement) -> RebalanceReport:
        if self._down:
            raise RuntimeError(
                "cannot rebalance with shards down: revive (and repair) "
                f"{sorted(self._down)} first"
            )
        rows_total = len(self)
        # Reconciled world state per table — under replication the copies
        # may be staggered (a revived-but-unrepaired replica), so sources
        # are per-row freshest, which makes rebalancing double as repair
        # for every row it moves.
        tables = sorted({t for s in self.shards.values() for t in s.tables})
        world: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for table in tables:
            parts = []
            for sid in self.shard_ids:
                exported = self.shards[sid].export_table(table)
                if exported is not None and exported[0].size:
                    parts.append(exported)
            if parts:
                world[table] = self._reconcile_parts(parts)
        old_ids = set(self.shards)
        self.placement = new_placement
        new_ids = set(new_placement.shard_ids)
        for sid in sorted(new_ids - old_ids):
            self.shards[sid] = ParameterShard(
                sid, self.row_bytes, row_dtype=self.row_dtype
            )
        rows_moved = 0
        for table, (ids, rows, versions) in world.items():
            owners = new_placement.replica_owners(
                table, ids, self.replication
            )
            for sid in sorted(new_ids):
                shard = self.shards[sid]
                desired_mask = (owners == sid).any(axis=1)
                desired = ids[desired_mask]
                current = shard.resident_ids(table)
                to_drop = current[~np.isin(current, desired)]
                if to_drop.size:
                    shard.drop(table, to_drop)
                add_mask = desired_mask & ~np.isin(ids, current)
                if add_mask.any():
                    shard.ingest(
                        table, ids[add_mask], rows[add_mask],
                        versions[add_mask],
                    )
                    rows_moved += int(add_mask.sum())
        for sid in old_ids - new_ids:
            del self.shards[sid]
        report = RebalanceReport(
            shard_ids=self.shard_ids,
            rows_moved=rows_moved,
            rows_total=rows_total,
            bytes_moved=rows_moved * self.row_bytes,
        )
        if _REG.enabled:
            _NUM_SHARDS.set(self.num_shards)
            _RESIDENT_ROWS.set(len(self))
            _flight_recorder().record(
                "shardstore.store",
                "rebalance",
                f"ring now {self.num_shards} shards",
                rows_moved=report.rows_moved,
                rows_total=report.rows_total,
                moved_fraction=round(report.moved_fraction, 6),
            )
        return report

    def add_shard(self, shard_id: int | None = None) -> RebalanceReport:
        """Grow the ring by one shard, migrating all R copies of the keys
        it now owns (and only those)."""
        if shard_id is None:
            shard_id = max(self.shards) + 1
        return self._migrate_to(self.placement.with_shard_added(shard_id))

    def remove_shard(self, shard_id: int) -> RebalanceReport:
        """Drain one shard; its replica ranges remap, everyone else's stay."""
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id}")
        if len(self.shards) - 1 < self.replication:
            raise ValueError(
                f"removing shard {shard_id} would leave fewer shards than "
                f"replication={self.replication}"
            )
        return self._migrate_to(self.placement.with_shard_removed(shard_id))
