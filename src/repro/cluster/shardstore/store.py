"""The sharded parameter store: the Fig. 2 KV tier, array-native.

``ShardedParameterStore`` partitions ``(table, row_id)`` keys across N
:class:`ParameterShard` instances via the splitmix64 consistent-hash
:class:`ShardPlacement` — byte-identical placement in every process of the
fleet, unlike the seed store's salted ``hash()``.  Publishes partition their
index batch per shard in one vectorized pass (one owner lookup + one
argsort); pulls slice each shard's delta log, so ``pull_delta(since)`` costs
O(changed rows) rather than the seed's O(all rows) dict scan.  Version
batching is preserved: one publish event = one global version bump however
many tables and rows it carries.

Shards can be added or removed live: consistent hashing remaps only the
splitmix64-owned key ranges of the shards that changed (~1/N of keys), and
:meth:`add_shard` / :meth:`remove_shard` migrate exactly those rows, log
entries included, so delta semantics survive rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.dtypes import as_float32_rows, as_float64_rows
from ...obs.metrics import registry as _obs_registry
from ...obs.recorder import flight_recorder as _flight_recorder
from .placement import ShardPlacement
from .shard import ParameterShard, ShardStats

__all__ = ["RebalanceReport", "ShardedParameterStore"]

_REG = _obs_registry()
_PUBLISHES = _REG.counter(
    "shardstore.store.publishes", help="version bumps (publish events)"
)
_ROWS_WRITTEN = _REG.counter(
    "shardstore.store.rows_written", help="rows written across all publishes"
)
_VERSION = _REG.gauge(
    "shardstore.store.version", help="current global store version"
)
_RESIDENT_ROWS = _REG.gauge(
    "shardstore.store.resident_rows", help="rows resident across all shards"
)
_NUM_SHARDS = _REG.gauge(
    "shardstore.store.num_shards", help="live shard count"
)


@dataclass
class RebalanceReport:
    """Outcome of one shard add/remove migration."""

    shard_ids: list[int]
    rows_moved: int
    rows_total: int
    bytes_moved: int

    @property
    def moved_fraction(self) -> float:
        return self.rows_moved / self.rows_total if self.rows_total else 0.0


class ShardedParameterStore:
    """Versioned row store sharded by stable hash of ``(table, row_id)``.

    Parameters
    ----------
    num_shards : int, optional
        Initial shard count (ids ``0..N-1``).
    row_bytes : int or None, optional
        Accounting size per row for transfer-cost models.  ``None``
        computes it lane-aware as ``(row_dim or 16) * itemsize`` of
        ``row_dtype`` — a float32 store then charges half a float64
        store's bytes through every stat and transfer model.
    row_dim : int, optional
        Row width, when known up front; otherwise pinned at each table's
        first publish (no more probing rows to learn the dim).
    row_dtype : numpy dtype, optional
        Row lane of every resident block.  float64 (the default) stores
        rows exactly; float32 downcasts once at publish time through a
        *checked* coercion (:func:`repro.core.dtypes.as_float32_rows`)
        that raises when any value moves past ``downcast_rtol``.
    downcast_rtol : float, optional
        Tolerance of the publish-time float32 downcast; ignored on the
        float64 lane.
    virtual_nodes : int, optional
        Ring points per shard.
    seed : int, optional
        Placement ring seed (must match across the fleet).
    """

    def __init__(
        self,
        num_shards: int = 8,
        row_bytes: int | None = 128,
        row_dim: int | None = None,
        row_dtype=np.float64,
        downcast_rtol: float = 1e-6,
        virtual_nodes: int = 64,
        seed: int = 0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.row_dtype = np.dtype(row_dtype)
        if self.row_dtype.kind != "f":
            raise TypeError(f"row_dtype must be a float lane, got {row_dtype}")
        if row_bytes is None:
            row_bytes = (row_dim or 16) * self.row_dtype.itemsize
        self.row_bytes = row_bytes
        self.row_dim = row_dim
        self.downcast_rtol = downcast_rtol
        self.version = 0
        self.placement = ShardPlacement(
            list(range(num_shards)), virtual_nodes=virtual_nodes, seed=seed
        )
        self.shards: dict[int, ParameterShard] = {
            sid: ParameterShard(sid, row_bytes, row_dtype=self.row_dtype)
            for sid in range(num_shards)
        }
        self._dims: dict[str, int] = {}

    # -------------------------------------------------------------- geometry
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self.shards)

    @property
    def shard_stats(self) -> list[ShardStats]:
        """Per-shard accounting, in ascending shard-id order."""
        return [self.shards[sid].stats for sid in self.shard_ids]

    def __len__(self) -> int:
        return sum(s.num_rows for s in self.shards.values())

    @property
    def total_bytes(self) -> int:
        return len(self) * self.row_bytes

    def dim_of(self, table: str) -> int:
        """Row width of ``table`` (constructor/first-publish pin, else 1)."""
        return self._dims.get(table, self.row_dim if self.row_dim else 1)

    # ---------------------------------------------------------------- writes
    @staticmethod
    def _dedupe_last(
        indices: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unique ids ascending; on duplicates the last occurrence wins."""
        _, first_in_reversed = np.unique(indices[::-1], return_index=True)
        keep = indices.size - 1 - first_in_reversed
        return indices[keep], rows[keep]

    def _normalize_batch(
        self, indices: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shape/dtype validation, BEFORE any version bump or write.

        This is the ONE point where rows cross onto the store's lane: a
        float32 store downcasts float64 training rows here through the
        checked coercer, so corruption (overflow, precision collapse)
        raises before any version bump instead of being served later.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if self.row_dtype == np.dtype(np.float32):
            rows = as_float32_rows(rows, name="rows", rtol=self.downcast_rtol)
        else:
            rows = as_float64_rows(rows, name="rows")
        if rows.ndim != 2 or rows.shape[0] != indices.shape[0]:
            raise ValueError("indices and rows disagree on length")
        return indices, rows

    def _reconcile_width(
        self, table: str, rows: np.ndarray
    ) -> np.ndarray:
        """Keep one row width per table across every shard.

        A wider batch re-widens the table's blocks on all shards (existing
        rows zero-pad on the right); a narrower batch zero-pads the incoming
        rows — the correct semantics for rank-adapted LoRA factors, whose
        pruned trailing components are zero.
        """
        width = int(rows.shape[1])
        known = self._dims.get(table)
        if known is None:
            self._dims[table] = width
        elif width > known:
            self._dims[table] = width
            for shard in self.shards.values():
                block = shard.block(table)
                if block is not None:
                    block.rewiden(width)
        elif width < known:
            rows = np.pad(rows, ((0, 0), (0, known - width)))
        return rows

    def _publish_into(
        self, table: str, indices: np.ndarray, rows: np.ndarray, version: int
    ) -> int:
        rows = self._reconcile_width(table, rows)
        if indices.size == 0:
            return 0
        ids, ids_rows = self._dedupe_last(indices, rows)
        owners = self.placement.shard_of(table, ids)
        # One vectorized partition pass: group-sort ids by owning shard.
        order = np.argsort(owners, kind="stable")
        owners, ids, ids_rows = owners[order], ids[order], ids_rows[order]
        bounds = np.flatnonzero(np.r_[True, owners[1:] != owners[:-1]])
        written = 0
        for start, stop in zip(bounds, np.r_[bounds[1:], owners.size]):
            sid = int(owners[start])
            written += self.shards[sid].publish(
                table, ids[start:stop], ids_rows[start:stop], version
            )
        return written

    def publish_batch(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> int:
        """Write rows under a freshly bumped version.

        Parameters
        ----------
        table : str
            Destination table.
        indices : numpy.ndarray of int64
            Row ids; duplicates resolve to the last occurrence.
        rows : numpy.ndarray
            ``(len(indices), dim)`` row payloads.

        Returns
        -------
        int
            The version this publish landed under.
        """
        indices, rows = self._normalize_batch(indices, rows)
        self.version += 1
        written = self._publish_into(table, indices, rows, self.version)
        self._note_publish(written)
        return self.version

    def publish_many(
        self, batches: list[tuple[str, np.ndarray, np.ndarray]]
    ) -> int:
        """Several tables under ONE version bump (one synchronization event).

        This is the client-side batching primitive: a trainer pushing all
        its embedding tables at a window boundary is one publish event, not
        one per table.  Every batch validates before the bump, so a
        malformed batch leaves the version (and every table) untouched.
        """
        normalized = [
            (table, *self._normalize_batch(indices, rows))
            for table, indices, rows in batches
        ]
        self.version += 1
        written = 0
        for table, indices, rows in normalized:
            written += self._publish_into(table, indices, rows, self.version)
        self._note_publish(written)
        return self.version

    def _note_publish(self, written: int) -> None:
        """Fold one publish event into the process metrics registry."""
        if not _REG.enabled:
            return
        _PUBLISHES.inc()
        _ROWS_WRITTEN.add(written)
        _VERSION.set(self.version)
        _RESIDENT_ROWS.set(len(self))
        _NUM_SHARDS.set(self.num_shards)

    # ----------------------------------------------------------------- reads
    def pull_rows(
        self, table: str, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Point lookups across shards.

        Parameters
        ----------
        table : str
            Table to read.
        indices : numpy.ndarray of int64
            Row ids to fetch.

        Returns
        -------
        found_mask : numpy.ndarray of bool
            Which ids were resident somewhere.
        rows : numpy.ndarray
            ``(len(indices), dim)`` payloads; zeros where missed.
        """
        indices = np.asarray(indices, dtype=np.int64)
        mask = np.zeros(indices.size, dtype=bool)
        out = np.zeros((indices.size, self.dim_of(table)), dtype=self.row_dtype)
        if indices.size == 0:
            return mask, out
        owners = self.placement.shard_of(table, indices)
        for sid in np.unique(owners):
            sel = owners == sid
            result = self.shards[int(sid)].pull_rows(table, indices[sel])
            if result is None:
                continue
            found, rows = result
            sub = np.flatnonzero(sel)[found]
            mask[sub] = True
            out[sub] = rows[found]
        return mask, out

    def pull_delta(
        self, table: str, since_version: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """All rows of ``table`` newer than ``since_version``; O(changed).

        Parameters
        ----------
        table : str
            Table to slice.
        since_version : int
            The caller's sync point; entries at or below it are skipped.
            A value at or beyond the current version (including "in the
            future") yields an empty delta.

        Returns
        -------
        indices : numpy.ndarray of int64
            Changed row ids, ascending.
        rows : numpy.ndarray
            Their current payloads.
        current_version : int
            The store version — the caller's new sync point.
        """
        parts = [
            self.shards[sid].pull_delta(table, since_version)
            for sid in self.shard_ids
        ]
        parts = [p for p in parts if p[0].size]
        if not parts:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros((0, self.dim_of(table)), dtype=self.row_dtype),
                self.version,
            )
        ids = np.concatenate([p[0] for p in parts])
        rows = np.concatenate([p[1] for p in parts], axis=0)
        order = np.argsort(ids)  # shards own disjoint key sets
        return ids[order], rows[order], self.version

    def delta_volume_bytes(self, table: str, since_version: int) -> int:
        """Bytes a delta pull *would* transfer (no read accounting)."""
        return self.row_bytes * sum(
            s.changed_count(table, since_version) for s in self.shards.values()
        )

    def delta_shard_volumes(
        self, table: str, since_version: int
    ) -> dict[int, int]:
        """Per-shard byte volume of a prospective delta pull."""
        return {
            sid: self.shards[sid].changed_count(table, since_version)
            * self.row_bytes
            for sid in self.shard_ids
        }

    # ----------------------------------------------------------- maintenance
    def compact(self) -> int:
        """Compact every shard's delta logs; returns entries dropped."""
        return sum(s.compact() for s in self.shards.values())

    def _migrate_to(self, new_placement: ShardPlacement) -> RebalanceReport:
        rows_total = len(self)
        rows_moved = 0
        staged: list[tuple[int, str, np.ndarray, np.ndarray, np.ndarray]] = []
        for sid in self.shard_ids:
            shard = self.shards[sid]
            for table in shard.tables:
                resident = shard.resident_ids(table)
                if resident.size == 0:
                    continue
                owner = new_placement.shard_of(table, resident)
                moving = resident[owner != sid]
                if moving.size == 0:
                    continue
                ids, rows, versions = shard.drop(table, moving)
                dest = owner[owner != sid]
                for new_sid in np.unique(dest):
                    sel = dest == new_sid
                    staged.append(
                        (int(new_sid), table, ids[sel], rows[sel], versions[sel])
                    )
                rows_moved += int(ids.size)
        old_ids = set(self.shards)
        self.placement = new_placement
        for sid in new_placement.shard_ids:
            if sid not in old_ids:
                self.shards[sid] = ParameterShard(
                    sid, self.row_bytes, row_dtype=self.row_dtype
                )
        for sid in old_ids - set(new_placement.shard_ids):
            del self.shards[sid]
        for sid, table, ids, rows, versions in staged:
            self.shards[sid].ingest(table, ids, rows, versions)
        report = RebalanceReport(
            shard_ids=self.shard_ids,
            rows_moved=rows_moved,
            rows_total=rows_total,
            bytes_moved=rows_moved * self.row_bytes,
        )
        if _REG.enabled:
            _NUM_SHARDS.set(self.num_shards)
            _RESIDENT_ROWS.set(len(self))
            _flight_recorder().record(
                "shardstore.store",
                "rebalance",
                f"ring now {self.num_shards} shards",
                rows_moved=report.rows_moved,
                rows_total=report.rows_total,
                moved_fraction=round(report.moved_fraction, 6),
            )
        return report

    def add_shard(self, shard_id: int | None = None) -> RebalanceReport:
        """Grow the ring by one shard, migrating only the keys it now owns."""
        if shard_id is None:
            shard_id = max(self.shards) + 1
        return self._migrate_to(self.placement.with_shard_added(shard_id))

    def remove_shard(self, shard_id: int) -> RebalanceReport:
        """Drain one shard; its keys remap, everyone else's stay put."""
        if shard_id not in self.shards:
            raise ValueError(f"unknown shard {shard_id}")
        return self._migrate_to(self.placement.with_shard_removed(shard_id))
