"""Sharded parameter-plane subsystem (the Fig. 2 KV tier, array-native).

Four pieces:

* :mod:`placement` — splitmix64 consistent-hash key -> shard mapping,
  byte-identical across processes (never the salted builtin ``hash()``);
* :mod:`shard` — per-shard dense row blocks over
  :class:`repro.core.kernels.IdSlotTable` with append-only delta logs;
* :mod:`store` — :class:`ShardedParameterStore`: vectorized partitioned
  publishes, O(changed) delta pulls, live shard add/remove, and — with
  ``replication > 1`` — quorum publishes (:class:`QuorumError` on a
  refused window), replica-failover reads, missed-version ledgers, and
  :class:`RepairPlan`-driven self-healing;
* :mod:`client` — :class:`ShardClient`: staged version-batched publishes,
  batched multi-table pulls, alpha-beta transfer-cost charging, and
  sync-point registration that pins watermark log compaction.

The legacy :class:`repro.cluster.parameter_server.ParameterServer` is a
thin compatibility facade over this package; fault injection against it
lives in :mod:`repro.cluster.faults`.
"""

from .client import ClientTransferReport, ShardClient
from .placement import ShardPlacement, stable_table_hash
from .shard import ParameterShard, ShardStats
from .store import (
    QuorumError,
    RebalanceReport,
    RepairPlan,
    RepairReport,
    RepairTask,
    ShardedParameterStore,
)

__all__ = [
    "ClientTransferReport",
    "ShardClient",
    "ShardPlacement",
    "stable_table_hash",
    "ParameterShard",
    "ShardStats",
    "QuorumError",
    "RebalanceReport",
    "RepairPlan",
    "RepairReport",
    "RepairTask",
    "ShardedParameterStore",
]
