"""Sharded parameter-plane subsystem (the Fig. 2 KV tier, array-native).

Four pieces:

* :mod:`placement` — splitmix64 consistent-hash key -> shard mapping,
  byte-identical across processes (never the salted builtin ``hash()``);
* :mod:`shard` — per-shard dense row blocks over
  :class:`repro.core.kernels.IdSlotTable` with append-only delta logs;
* :mod:`store` — :class:`ShardedParameterStore`: vectorized partitioned
  publishes, O(changed) delta pulls, live shard add/remove;
* :mod:`client` — :class:`ShardClient`: staged version-batched publishes,
  batched multi-table pulls, alpha-beta transfer-cost charging.

The legacy :class:`repro.cluster.parameter_server.ParameterServer` is a
thin compatibility facade over this package.
"""

from .client import ClientTransferReport, ShardClient
from .placement import ShardPlacement, stable_table_hash
from .shard import ParameterShard, ShardStats
from .store import RebalanceReport, ShardedParameterStore

__all__ = [
    "ClientTransferReport",
    "ShardClient",
    "ShardPlacement",
    "stable_table_hash",
    "ParameterShard",
    "ShardStats",
    "RebalanceReport",
    "ShardedParameterStore",
]
