"""One shard of the parameter plane: array-native rows + delta log.

Each shard stores its tables as dense row blocks — an
:class:`repro.core.kernels.IdSlotTable` maps row ids to slots in a
``(capacity, dim)`` float array with a parallel ``int64`` version vector —
and keeps an append-only *delta log* of ``(version, row_id)`` entries.
Because versions only ever grow, the log stays sorted by construction and
``pull_delta(since)`` is a ``searchsorted`` plus a slice over exactly the
entries newer than ``since``: O(changed rows), never a scan of the world.
The log idiom follows the low-rank delta-update storage of git-theta
(checkpoint-vcs): persist what changed per version, reconstruct any
read-point by slicing, and compact losslessly by keeping the latest entry
per id.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.kernels import IdSlotTable

__all__ = ["ShardStats", "ParameterShard"]


@dataclass
class ShardStats:
    """Write/read accounting for one shard."""

    rows_written: int = 0
    rows_read: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class _TableBlock:
    """Rows of one table resident on one shard.

    ``dtype`` is the row lane: float64 on a training store, float32 on a
    serving store (half the resident and transferred bytes per row).
    """

    def __init__(self, dim: int, capacity: int = 64, dtype=np.float64) -> None:
        self.dim = dim
        self.capacity = capacity
        self.dtype = np.dtype(dtype)
        self.slots = IdSlotTable(capacity)
        self.rows = np.zeros((capacity, dim), dtype=self.dtype)
        self.row_version = np.zeros(capacity, dtype=np.int64)
        # Append-only (version, id) log, sorted by version by construction.
        self._log_versions = np.empty(64, dtype=np.int64)
        self._log_ids = np.empty(64, dtype=np.int64)
        self._log_len = 0
        # Versions at or below the floor have been truncated out of the
        # log (watermark compaction); older sync points fall back to an
        # exact resident-table scan over ``row_version``.
        self.log_floor = 0

    # -------------------------------------------------------------- geometry
    @property
    def num_rows(self) -> int:
        return self.slots.size

    @property
    def resident_ids(self) -> np.ndarray:
        """Ids stored in this block, ascending."""
        return self.slots.keys

    @property
    def log_len(self) -> int:
        return self._log_len

    def rewiden(self, dim: int) -> None:
        """Grow the row width; existing rows zero-pad on the right."""
        if dim <= self.dim:
            return
        wider = np.zeros((self.capacity, dim), dtype=self.dtype)
        wider[:, : self.dim] = self.rows
        self.rows = wider
        self.dim = dim

    def _grow_block(self, need: int) -> None:
        """Double the row block, repacking slots to ``0..n-1`` in key order."""
        keys = self.slots.keys
        old_slots = self.slots.lookup(keys)
        new_capacity = max(self.capacity * 2, self.slots.size + need)
        new_rows = np.zeros((new_capacity, self.dim), dtype=self.dtype)
        new_versions = np.zeros(new_capacity, dtype=np.int64)
        new_rows[: keys.size] = self.rows[old_slots]
        new_versions[: keys.size] = self.row_version[old_slots]
        self.slots.rebuild_sorted(keys, new_capacity)
        self.rows = new_rows
        self.row_version = new_versions
        self.capacity = new_capacity

    def _ensure_slots(self, ids: np.ndarray) -> np.ndarray:
        slots, _ = self.slots.insert(ids)
        if (slots < 0).any():
            self._grow_block(int((slots < 0).sum()))
            slots, _ = self.slots.insert(ids)
        return slots

    def _log_append(self, version: int, ids: np.ndarray) -> None:
        n = ids.size
        if self._log_len + n > self._log_versions.size:
            new_size = max(self._log_versions.size * 2, self._log_len + n)
            self._log_versions = np.resize(self._log_versions, new_size)
            self._log_ids = np.resize(self._log_ids, new_size)
        self._log_versions[self._log_len : self._log_len + n] = version
        self._log_ids[self._log_len : self._log_len + n] = ids
        self._log_len += n

    # ---------------------------------------------------------------- writes
    def publish(self, ids: np.ndarray, rows: np.ndarray, version: int) -> int:
        """Write unique, sorted ``ids`` at ``version``.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Row ids, unique and ascending (the store partitions and
            dedupes before calling).
        rows : numpy.ndarray
            ``(len(ids), dim)`` payloads.
        version : int
            Version stamped on the rows and appended to the delta log.

        Returns
        -------
        int
            Rows written.
        """
        slots = self._ensure_slots(ids)
        self.rows[slots] = rows
        self.row_version[slots] = version
        self._log_append(version, ids)
        return int(ids.size)

    def ingest(
        self, ids: np.ndarray, rows: np.ndarray, versions: np.ndarray
    ) -> None:
        """Adopt rows migrated from another shard, preserving their versions.

        Incoming log entries interleave with resident ones, so the merged
        log is re-sorted by version (stable) to keep the slice invariant.
        """
        slots = self._ensure_slots(ids)
        self.rows[slots] = rows
        self.row_version[slots] = versions
        before = self._log_len
        self._log_append(0, ids)  # placeholder versions, overwritten next
        self._log_versions[before : self._log_len] = versions
        # Exports arrive in id order, so the appended segment (and its seam
        # with resident entries) may be version-unsorted; restore the
        # sorted-by-version invariant the delta slice relies on.
        merged = self._log_versions[: self._log_len]
        if np.any(np.diff(merged) < 0):
            order = np.argsort(merged, kind="stable")
            self._log_versions[: self._log_len] = merged[order]
            self._log_ids[: self._log_len] = self._log_ids[: self._log_len][order]

    def drop(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evict rows for shard rebalancing.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Candidate ids; absent ones are ignored.

        Returns
        -------
        ids, rows, versions : numpy.ndarray
            The evicted ids with their payloads and row versions, ready
            for :meth:`ingest` on the new owner (delta semantics intact).
        """
        ids = np.asarray(ids, dtype=np.int64)
        slots = self.slots.lookup(ids)
        present = slots >= 0
        ids, slots = ids[present], slots[present]
        out_rows = self.rows[slots].copy()
        out_versions = self.row_version[slots].copy()
        self.slots.remove(ids)
        keep = ~np.isin(self._log_ids[: self._log_len], ids)
        kept = int(keep.sum())
        self._log_versions[:kept] = self._log_versions[: self._log_len][keep]
        self._log_ids[:kept] = self._log_ids[: self._log_len][keep]
        self._log_len = kept
        return ids, out_rows, out_versions

    def compact(self, watermark: int | None = None) -> int:
        """Shrink the delta log; returns entries dropped.

        Always keeps at most the latest entry per id — lossless for the
        delta protocol, since ``pull_delta(since)`` returns the ids whose
        *latest* version exceeds ``since``.  When ``watermark`` is given,
        entries whose id's latest version is at or below it are dropped
        entirely (the log *truncates*): every registered reader has a sync
        point at or above the watermark, so nobody needs them from the
        log.  Readers older than the truncation floor are still served
        exactly — :meth:`changed_ids` falls back to a resident-table scan
        over ``row_version``, which never forgets — it just stops being
        O(changed rows) for them.
        """
        n = self._log_len
        if n == 0:
            if watermark is not None:
                self.log_floor = max(self.log_floor, watermark)
            return 0
        ids = self._log_ids[:n]
        # Last occurrence per id == newest entry (log is version-sorted).
        _, last_rev = np.unique(ids[::-1], return_index=True)
        keep = np.sort(n - 1 - last_rev)
        if watermark is not None:
            keep = keep[self._log_versions[:n][keep] > watermark]
            self.log_floor = max(self.log_floor, watermark)
        kept = keep.size
        self._log_versions[:kept] = self._log_versions[:n][keep]
        self._log_ids[:kept] = self._log_ids[:n][keep]
        self._log_len = kept
        return n - kept

    # ----------------------------------------------------------------- reads
    def changed_ids(self, since_version: int) -> np.ndarray:
        """Unique ids with log entries newer than ``since_version``.

        O(changed rows): one ``searchsorted`` into the version-sorted log
        plus a slice — never a scan of the resident table.

        Parameters
        ----------
        since_version : int
            Exclusive lower version bound.

        Returns
        -------
        numpy.ndarray of int64
            Changed ids, unique and ascending.
        """
        if since_version < self.log_floor:
            # The log was truncated past this sync point; answer exactly
            # from the resident version vector instead (O(resident), the
            # price of reading below the compaction watermark).
            ids = self.resident_ids
            slots = self.slots.lookup(ids)
            return ids[self.row_version[slots] > since_version]
        start = int(
            np.searchsorted(
                self._log_versions[: self._log_len], since_version, side="right"
            )
        )
        if start == self._log_len:
            return np.empty(0, dtype=np.int64)
        tail = self._log_ids[start : self._log_len]
        # The common steady-state tail is a single publish segment, already
        # sorted-unique by construction; skip the np.unique sort then.
        if tail.size == 1 or bool(np.all(tail[1:] > tail[:-1])):
            return tail.copy()
        return np.unique(tail)

    def delta_since(self, since_version: int) -> tuple[np.ndarray, np.ndarray]:
        """Payloads for every row changed after ``since_version``.

        Parameters
        ----------
        since_version : int
            Exclusive lower version bound.

        Returns
        -------
        ids : numpy.ndarray of int64
            Changed ids, ascending.
        rows : numpy.ndarray
            Their current ``(len(ids), dim)`` payloads.
        """
        ids = self.changed_ids(since_version)
        if ids.size == 0:
            return ids, np.zeros((0, self.dim), dtype=self.dtype)
        # every logged id is resident by construction
        return ids, self.rows[self.slots.lookup_present(ids)]

    def delta_with_versions(
        self, since_version: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`delta_since`, plus each row's current version.

        The version column is what replicated reads reconcile on: when
        replicas diverge (a publish landed while one owner was down), the
        merge keeps each id's highest-versioned copy.
        """
        ids = self.changed_ids(since_version)
        if ids.size == 0:
            return (
                ids,
                np.zeros((0, self.dim), dtype=self.dtype),
                np.empty(0, dtype=np.int64),
            )
        slots = self.slots.lookup_present(ids)
        return ids, self.rows[slots], self.row_version[slots]

    def lookup_rows(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Point gather; returns ``(found_mask, rows)`` with zeros on miss."""
        slots = self.slots.lookup(ids)
        found = slots >= 0
        out = np.zeros((ids.size, self.dim), dtype=self.dtype)
        out[found] = self.rows[slots[found]]
        return found, out

    def lookup_with_versions(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Point gather with versions; version 0 marks a missed id."""
        slots = self.slots.lookup(ids)
        found = slots >= 0
        out = np.zeros((ids.size, self.dim), dtype=self.dtype)
        versions = np.zeros(ids.size, dtype=np.int64)
        out[found] = self.rows[slots[found]]
        versions[found] = self.row_version[slots[found]]
        return found, out, versions

    def export_all(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ids = self.resident_ids
        slots = self.slots.lookup(ids)
        return ids, self.rows[slots].copy(), self.row_version[slots].copy()


class ParameterShard:
    """One shard: per-table row blocks, delta logs, and I/O accounting.

    ``row_dtype`` selects the row lane of every block this shard creates;
    ``row_bytes`` is the accounting size per row and should agree with the
    lane (the store computes it as ``dim * itemsize`` when lane-aware).
    """

    def __init__(
        self, shard_id: int, row_bytes: int, row_dtype=np.float64
    ) -> None:
        self.shard_id = shard_id
        self.row_bytes = row_bytes
        self.row_dtype = np.dtype(row_dtype)
        self.stats = ShardStats()
        self._blocks: dict[str, _TableBlock] = {}

    # -------------------------------------------------------------- geometry
    @property
    def tables(self) -> list[str]:
        return list(self._blocks)

    @property
    def num_rows(self) -> int:
        return sum(b.num_rows for b in self._blocks.values())

    @property
    def log_entries(self) -> int:
        return sum(b.log_len for b in self._blocks.values())

    def block(self, table: str) -> _TableBlock | None:
        return self._blocks.get(table)

    def resident_ids(self, table: str) -> np.ndarray:
        block = self._blocks.get(table)
        return block.resident_ids if block else np.empty(0, dtype=np.int64)

    # ---------------------------------------------------------------- writes
    def publish(
        self, table: str, ids: np.ndarray, rows: np.ndarray, version: int
    ) -> int:
        """Write unique sorted ids; charges write stats; returns rows written."""
        block = self._blocks.get(table)
        if block is None:
            block = self._blocks[table] = _TableBlock(
                dim=rows.shape[1], dtype=self.row_dtype
            )
        written = block.publish(ids, rows, version)
        self.stats.rows_written += written
        self.stats.bytes_written += written * self.row_bytes
        return written

    def ingest(
        self,
        table: str,
        ids: np.ndarray,
        rows: np.ndarray,
        versions: np.ndarray,
    ) -> None:
        if ids.size == 0:
            return
        block = self._blocks.get(table)
        if block is None:
            block = self._blocks[table] = _TableBlock(
                dim=rows.shape[1], dtype=self.row_dtype
            )
        block.ingest(ids, rows, versions)

    def drop(self, table: str, ids: np.ndarray):
        block = self._blocks.get(table)
        if block is None:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros((0, 1), dtype=self.row_dtype),
                np.empty(0, dtype=np.int64),
            )
        return block.drop(ids)

    def compact(self, watermark: int | None = None) -> int:
        """Compact every table's delta log; returns total entries dropped.

        Without ``watermark`` this is the lossless keep-latest-per-id
        squeeze.  With one, log entries at or below it are truncated
        outright — the shard cannot know who still reads that far back,
        so the *store* computes the watermark from its registered client
        sync points and refuses to pass anything newer than the oldest
        of them (see :meth:`ShardedParameterStore.compact`).
        """
        return sum(b.compact(watermark) for b in self._blocks.values())

    # ----------------------------------------------------------------- reads
    def pull_delta(
        self, table: str, since_version: int, charge: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        block = self._blocks.get(table)
        if block is None:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros((0, 1), dtype=self.row_dtype),
            )
        ids, rows = block.delta_since(since_version)
        if charge and ids.size:
            self.stats.rows_read += int(ids.size)
            self.stats.bytes_read += int(ids.size) * self.row_bytes
        return ids, rows

    def pull_delta_versions(
        self, table: str, since_version: int, charge: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Delta slice with row versions, for replicated-read reconciliation."""
        block = self._blocks.get(table)
        if block is None:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros((0, 1), dtype=self.row_dtype),
                np.empty(0, dtype=np.int64),
            )
        ids, rows, versions = block.delta_with_versions(since_version)
        if charge and ids.size:
            self.stats.rows_read += int(ids.size)
            self.stats.bytes_read += int(ids.size) * self.row_bytes
        return ids, rows, versions

    def pull_rows_versions(
        self, table: str, ids: np.ndarray, charge: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """``(found, rows, versions)`` point gather; None if table unknown."""
        block = self._blocks.get(table)
        if block is None:
            return None
        found, rows, versions = block.lookup_with_versions(ids)
        hits = int(found.sum())
        if charge and hits:
            self.stats.rows_read += hits
            self.stats.bytes_read += hits * self.row_bytes
        return found, rows, versions

    def export_table(
        self, table: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Every resident ``(ids, rows, versions)`` of one table; None if
        the table is unknown here.  Rows and versions are copies, safe to
        keep across subsequent drops (rebalancing exports before moving)."""
        block = self._blocks.get(table)
        return None if block is None else block.export_all()

    def changed_count(self, table: str, since_version: int) -> int:
        block = self._blocks.get(table)
        return 0 if block is None else int(block.changed_ids(since_version).size)

    def pull_rows(
        self, table: str, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(found, rows)`` for ids this shard owns; None if table unknown."""
        block = self._blocks.get(table)
        if block is None:
            return None
        found, rows = block.lookup_rows(ids)
        hits = int(found.sum())
        if hits:
            self.stats.rows_read += hits
            self.stats.bytes_read += hits * self.row_bytes
        return found, rows
