"""Deterministic shard placement for the parameter plane.

A ``(table, row_id)`` key must land on the same shard in every process of
the fleet — trainers publish from one process, inference nodes pull from
dozens of others — so placement can never touch the salted builtin
``hash()``.  Keys are folded to a stable 64-bit routing key with
:func:`repro.core.kernels.splitmix64` / :func:`hash_combine` and placed on
the *same consistent-hash ring implementation the request router uses*
(:class:`repro.serving.router.ConsistentHashRouter` over shard ids), so the
parameter plane inherits the ring's properties for free: smooth key-range
splits via virtual nodes, and minimal remapping when shards are added or
removed (``remap_fraction`` is literally the router's analysis).
"""

from __future__ import annotations

import numpy as np

from ...core.kernels import hash_combine, stable_str_hash
from ...serving.router import ConsistentHashRouter

__all__ = ["stable_table_hash", "ShardPlacement"]

# Salt separating parameter-plane key hashing from request routing: the
# same row id used as a routing key elsewhere must not correlate with its
# shard placement.
_PLACEMENT_SEED = 0x5A17D570

#: Table names hash through the shared kernel-layer string hash.
stable_table_hash = stable_str_hash


class ShardPlacement:
    """Key -> shard mapping over a consistent-hash ring of shard ids.

    Parameters
    ----------
    shard_ids : list of int
        The shards currently in the store.
    virtual_nodes : int, optional
        Ring points per shard (smooths the key-range split).
    seed : int, optional
        Ring seed; every process of a deployment must use the same.
    """

    def __init__(
        self,
        shard_ids: list[int],
        virtual_nodes: int = 64,
        seed: int = 0,
    ) -> None:
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        self._router = ConsistentHashRouter(
            list(shard_ids), virtual_nodes=virtual_nodes, seed=seed
        )
        self.shard_ids = list(self._router.node_ids)
        self._table_hashes: dict[str, int] = {}

    @property
    def num_shards(self) -> int:
        return len(self.shard_ids)

    # ------------------------------------------------------------------ keys
    def _table_hash(self, table: str) -> int:
        cached = self._table_hashes.get(table)
        if cached is None:
            cached = self._table_hashes[table] = stable_table_hash(table)
        return cached

    def key_hashes(self, table: str, row_ids: np.ndarray) -> np.ndarray:
        """Stable 64-bit routing key per ``(table, row_id)``.

        Parameters
        ----------
        table : str
            Table name; folded through the kernel-layer string hash.
        row_ids : numpy.ndarray of int64
            Row ids within the table.

        Returns
        -------
        numpy.ndarray of uint64
            One placement key per row, byte-identical in every process.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        return hash_combine(
            row_ids, np.uint64(self._table_hash(table)), _PLACEMENT_SEED
        )

    def shard_of(self, table: str, row_ids: np.ndarray) -> np.ndarray:
        """Owning shard id per row, in one vectorized ring lookup.

        Parameters
        ----------
        table : str
            Table name.
        row_ids : numpy.ndarray of int64
            Row ids to place.

        Returns
        -------
        numpy.ndarray of int64
            Shard id per row.
        """
        return self._router.assign(self.key_hashes(table, row_ids))

    def replica_owners(
        self, table: str, row_ids: np.ndarray, r: int
    ) -> np.ndarray:
        """The ``r`` distinct shards owning each row, primary first.

        Replication rides the same ring as placement: a key's replica set
        is the next ``r`` distinct shards clockwise from its ring
        position, so column 0 always equals :meth:`shard_of` and adding
        or removing a shard disturbs only the replica sets whose ring
        ranges actually changed hands.  Byte-identical in every process
        (pinned by cross-PYTHONHASHSEED tests, like :meth:`shard_of`).

        Parameters
        ----------
        table : str
            Table name.
        row_ids : numpy.ndarray of int64
            Row ids to place.
        r : int
            Replica count; must not exceed the shard count.

        Returns
        -------
        numpy.ndarray of int64
            ``(len(row_ids), r)`` owning shard ids, primary in column 0.
        """
        if not 1 <= r <= self.num_shards:
            raise ValueError(
                f"replication {r} must be in [1, {self.num_shards}]"
            )
        return self._router.replica_assign(self.key_hashes(table, row_ids), r)

    def coverage_ok(
        self,
        r: int,
        available_ids: list[int],
        clean_primary_ids: list[int] | tuple[int, ...] = (),
    ) -> bool:
        """Whether the available shards can answer an *exact* read.

        With write quorum ``w = r // 2 + 1``, a read provably intersects
        every acknowledged write quorum when at least ``min_live = r - w
        + 1`` of each key's ``r`` owners are reachable.  A ring slot that
        misses that bar is still fine if its *primary* is in
        ``clean_primary_ids`` — a live shard whose missed-version ledger
        has no entries past the reader's sync point holds provably
        current rows for everything it owns.  The check runs over every
        ring slot at once via the router's successor-owner table, so it
        is key-independent: True means *any* read at this moment is
        exact.

        Parameters
        ----------
        r : int
            The store's replication factor.
        available_ids : list of int
            Shards currently reachable (live and not partitioned away).
        clean_primary_ids : sequence of int, optional
            Reachable shards additionally known to be current for the
            reader (empty missed-ledger overlap).

        Returns
        -------
        bool
            True when every ring slot is readable exactly.
        """
        if not 1 <= r <= self.num_shards:
            raise ValueError(
                f"replication {r} must be in [1, {self.num_shards}]"
            )
        owner_table = self._router.replica_owner_table(r)
        avail = np.asarray(sorted(set(int(s) for s in available_ids)), dtype=np.int64)
        min_live = r - (r // 2 + 1) + 1
        counts = np.isin(owner_table, avail).sum(axis=1)
        ok = counts >= min_live
        if len(clean_primary_ids):
            clean = np.asarray(
                sorted(set(int(s) for s in clean_primary_ids)), dtype=np.int64
            )
            ok = ok | np.isin(owner_table[:, 0], clean)
        return bool(ok.all())

    # ----------------------------------------------------------- membership
    def with_shard_added(self, shard_id: int) -> "ShardPlacement":
        if shard_id in self.shard_ids:
            raise ValueError(f"shard {shard_id} already placed")
        return ShardPlacement(
            self.shard_ids + [shard_id], self.virtual_nodes, self.seed
        )

    def with_shard_removed(self, shard_id: int) -> "ShardPlacement":
        if shard_id not in self.shard_ids:
            raise ValueError(f"shard {shard_id} not placed")
        if len(self.shard_ids) == 1:
            raise ValueError("cannot remove the last shard")
        remaining = [s for s in self.shard_ids if s != shard_id]
        return ShardPlacement(remaining, self.virtual_nodes, self.seed)

    # -------------------------------------------------------------- analysis
    def remap_fraction(
        self, other: "ShardPlacement", table: str, row_ids: np.ndarray
    ) -> float:
        """Fraction of the given keys that change shards between layouts.

        Reuses the router's side-effect-free ``remap_fraction`` analysis;
        consistent hashing keeps this near ``1/N`` per shard changed.

        Parameters
        ----------
        other : ShardPlacement
            The layout to compare against.
        table : str
            Table whose keys are sampled.
        row_ids : numpy.ndarray of int64
            Sample of row ids to measure over.

        Returns
        -------
        float
            Fraction of the sampled keys whose owner differs.
        """
        return self._router.remap_fraction(
            other._router, self.key_hashes(table, row_ids)
        )
