"""Batched client sessions against the sharded parameter store.

A :class:`ShardClient` is what a training cluster or inference node holds
instead of a raw store reference: it *stages* publishes so a whole window's
tables flush as one version bump (version batching), issues batched
multi-table delta pulls against a single per-client sync point, and charges
every transfer through the alpha-beta cost model of
:mod:`repro.cluster.collectives` over a :class:`repro.cluster.network`
link — shard fan-out happens in parallel, so a transfer pays the link's
setup latency once plus bandwidth time for the total volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...obs.metrics import registry as _obs_registry
from ..collectives import CollectiveCostModel
from ..network import GBE_100, NetworkLink
from .store import ShardedParameterStore

__all__ = ["ClientTransferReport", "ShardClient"]

_REG = _obs_registry()
_FLUSHES = _REG.counter(
    "shardstore.client.flushes", help="publish flush events (version bumps)"
)
_PULLS = _REG.counter(
    "shardstore.client.pulls", help="batched delta-pull round trips"
)
_ROWS_PUBLISHED = _REG.counter(
    "shardstore.client.rows_published", help="rows pushed through flushes"
)
_BYTES_PUBLISHED = _REG.counter(
    "shardstore.client.bytes_published",
    help="bytes pushed (alpha-beta accounting volume)",
)
_ROWS_PULLED = _REG.counter(
    "shardstore.client.rows_pulled", help="delta rows delivered to pullers"
)
_BYTES_PULLED = _REG.counter(
    "shardstore.client.bytes_pulled",
    help="bytes pulled (alpha-beta accounting volume)",
)
_TRANSFER_S = _REG.histogram(
    "shardstore.client.transfer_seconds",
    help="modelled per-transfer wall time (alpha-beta cost model)",
    lo=1e-6,
    hi=1e4,
)


@dataclass
class ClientTransferReport:
    """Accounting for one batched publish flush or delta pull."""

    version: int
    rows: int
    bytes: int
    seconds: float
    tables: list[str] = field(default_factory=list)


class ShardClient:
    """One producer/consumer session against a :class:`ShardedParameterStore`.

    Parameters
    ----------
    store : ShardedParameterStore
        The shared parameter plane.
    link : repro.cluster.network.NetworkLink, optional
        Network path between this client and the store tier.
    contention : float, optional
        Fraction of the link consumed by competing traffic.
    tracer : repro.obs.trace.Tracer, optional
        When given, every flush/pull runs under a span and the modelled
        transfer seconds advance the tracer's clock (a ``SimClock`` in
        simulations, making traces deterministic; a no-op on wall
        clocks).  Counters in the process registry are fed either way.
    faults : repro.cluster.faults.FaultPlane, optional
        Fault-injection plane (anything with a ``delay_factor`` float
        attribute works).  Active ``delay`` faults multiply the modelled
        transfer seconds of every flush and pull through this client —
        a degraded network, not a dead one.

    Notes
    -----
    A flush that fails its write quorum raises
    :class:`~repro.cluster.shardstore.store.QuorumError` with the staged
    batches *preserved*: the client retries the same :meth:`flush` after
    the fleet heals, and no acknowledged-looking publish is ever lost.

    The first delta pull registers this client's sync point with the
    store, which pins log compaction at or above it; call :meth:`close`
    when the client retires to release the pin.
    """

    def __init__(
        self,
        store: ShardedParameterStore,
        link: NetworkLink = GBE_100,
        contention: float = 0.0,
        tracer=None,
        faults=None,
    ) -> None:
        self.store = store
        self.link = link
        self.contention = contention
        self.tracer = tracer
        self.faults = faults
        self.cost = CollectiveCostModel(link)
        self.synced_version = store.version
        self._staged: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._sync_token: int | None = None
        self.push_log: list[ClientTransferReport] = []
        self.pull_log: list[ClientTransferReport] = []

    # ------------------------------------------------------------------ cost
    def transfer_seconds(self, nbytes: int) -> float:
        """Modelled wall time to move ``nbytes`` between client and store.

        Per-shard streams overlap, so the latency (alpha) term is paid once
        and the bandwidth (beta) term covers the total volume — the same
        closed form as ``link.transfer_seconds`` under the collectives'
        alpha-beta model.
        """
        if nbytes <= 0:
            return 0.0
        seconds = self.link.transfer_seconds(nbytes, contention=self.contention)
        if self.faults is not None:
            seconds *= float(self.faults.delay_factor)
        return seconds

    # --------------------------------------------------------------- publish
    @property
    def staged_rows(self) -> int:
        return sum(
            ids.size for parts in self._staged.values() for ids, _ in parts
        )

    def stage(self, table: str, indices: np.ndarray, rows: np.ndarray) -> None:
        """Queue rows for the next :meth:`flush` (no store interaction yet).

        Parameters
        ----------
        table : str
            Destination table.
        indices : numpy.ndarray of int64
            Row ids to publish.
        rows : numpy.ndarray
            ``(len(indices), dim)`` payloads.  Rows cross onto the
            store's lane here (the client side of publish): against a
            float32 store the checked downcast runs once at stage time
            and the staged copy already holds half the bytes.
        """
        indices, rows = self.store._normalize_batch(indices, rows)
        if indices.size:
            self._staged.setdefault(table, []).append((indices, rows))

    def flush(self) -> ClientTransferReport:
        """Publish everything staged as ONE version bump / sync event.

        Returns
        -------
        ClientTransferReport
            Rows/bytes moved and the alpha-beta modelled transfer time;
            ``version`` is the bump all staged tables landed under.

        Raises
        ------
        repro.cluster.shardstore.store.QuorumError
            When the store cannot reach its write quorum.  The staged
            batches are kept: retry the same flush after repair.
        """
        if self.tracer is None:
            return self._flush()
        with self.tracer.span("shardstore.client.flush") as span:
            report = self._flush()
            span.attrs["version"] = report.version
            span.attrs["rows"] = report.rows
            span.attrs["bytes"] = report.bytes
            self.tracer.advance(report.seconds)
        return report

    def _flush(self) -> ClientTransferReport:
        if not self._staged:
            return ClientTransferReport(
                version=self.store.version, rows=0, bytes=0, seconds=0.0
            )
        batches = []
        total_rows = 0
        for table, parts in self._staged.items():
            ids = np.concatenate([p[0] for p in parts])
            rows = np.concatenate([p[1] for p in parts], axis=0)
            batches.append((table, ids, rows))
            total_rows += int(ids.size)
        version = self.store.publish_many(batches)
        self._staged.clear()
        nbytes = total_rows * self.store.row_bytes
        report = ClientTransferReport(
            version=version,
            rows=total_rows,
            bytes=nbytes,
            seconds=self.transfer_seconds(nbytes),
            tables=[t for t, _, _ in batches],
        )
        self.push_log.append(report)
        if _REG.enabled:
            _FLUSHES.inc()
            _ROWS_PUBLISHED.add(report.rows)
            _BYTES_PUBLISHED.add(report.bytes)
            _TRANSFER_S.observe(report.seconds)
        return report

    def publish(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> ClientTransferReport:
        """Unbatched convenience: stage one table and flush immediately."""
        self.stage(table, indices, rows)
        return self.flush()

    # ------------------------------------------------------------------ pull
    def staleness_versions(self) -> int:
        """Publish events between this client's sync point and the store."""
        return self.store.version - self.synced_version

    def mark_synced(self) -> None:
        """Adopt the store's current version without pulling (full sync)."""
        self.synced_version = self.store.version
        if self._sync_token is not None:
            self.store.update_sync_point(self._sync_token, self.synced_version)

    def close(self) -> None:
        """Retire this client: release its sync point so it stops pinning
        the store's compaction watermark.  Idempotent."""
        if self._sync_token is not None:
            self.store.unregister_sync_point(self._sync_token)
            self._sync_token = None

    def pull_tables(
        self,
        tables: list[str],
        row_filter: np.ndarray | None = None,
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        """Batched delta pull for several tables since this client's sync point.

        Parameters
        ----------
        tables : list of str
            Tables to pull, all against the same sync point.
        row_filter : numpy.ndarray of int64, optional
            Keep only these row ids (an inference node pulls just its
            partition).

        Returns
        -------
        deltas : dict of str to (numpy.ndarray, numpy.ndarray)
            ``deltas[table] = (ids, rows)`` newer than the sync point.
        report : ClientTransferReport
            Transfer accounting; the sync point advances to the store's
            current version — one round-trip covers every table.
        """
        if self.tracer is None:
            return self._pull_tables(tables, row_filter)
        lag = self.staleness_versions()
        with self.tracer.span("shardstore.client.pull", lag=lag) as span:
            deltas, report = self._pull_tables(tables, row_filter)
            span.attrs["version"] = report.version
            span.attrs["rows"] = report.rows
            span.attrs["bytes"] = report.bytes
            self.tracer.advance(report.seconds)
        return deltas, report

    def _pull_tables(
        self,
        tables: list[str],
        row_filter: np.ndarray | None = None,
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        since = self.synced_version
        deltas: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        total_rows = 0
        for table in tables:
            ids, rows, _ = self.store.pull_delta(table, since)
            if row_filter is not None and ids.size:
                keep = np.isin(ids, row_filter)
                ids, rows = ids[keep], rows[keep]
            deltas[table] = (ids, rows)
            total_rows += int(ids.size)
        self.synced_version = self.store.version
        # Pullers pin compaction lazily, on first pull: a publish-only
        # client never registers, so it never holds the watermark back.
        if self._sync_token is None:
            self._sync_token = self.store.register_sync_point(
                self.synced_version
            )
        else:
            self.store.update_sync_point(self._sync_token, self.synced_version)
        nbytes = total_rows * self.store.row_bytes
        report = ClientTransferReport(
            version=self.synced_version,
            rows=total_rows,
            bytes=nbytes,
            seconds=self.transfer_seconds(nbytes),
            tables=list(tables),
        )
        self.pull_log.append(report)
        if _REG.enabled:
            _PULLS.inc()
            _ROWS_PULLED.add(report.rows)
            _BYTES_PULLED.add(report.bytes)
            _TRANSFER_S.observe(report.seconds)
        return deltas, report

    def pull_table(
        self, table: str, row_filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, ClientTransferReport]:
        """Single-table delta pull against the client sync point."""
        deltas, report = self.pull_tables([table], row_filter=row_filter)
        ids, rows = deltas[table]
        return ids, rows, report
