"""Batched client sessions against the sharded parameter store.

A :class:`ShardClient` is what a training cluster or inference node holds
instead of a raw store reference: it *stages* publishes so a whole window's
tables flush as one version bump (version batching), issues batched
multi-table delta pulls against a single per-client sync point, and charges
every transfer through the alpha-beta cost model of
:mod:`repro.cluster.collectives` over a :class:`repro.cluster.network`
link — shard fan-out happens in parallel, so a transfer pays the link's
setup latency once plus bandwidth time for the total volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...obs.metrics import registry as _obs_registry
from ..collectives import CollectiveCostModel
from ..network import GBE_100, NetworkLink
from ..resilience.budget import DeadlineBudget
from ..resilience.degraded import StaleRead
from ..resilience.errors import DegradedReadError
from ..resilience.policy import ResiliencePolicy
from .store import QuorumError, ShardedParameterStore

__all__ = ["ClientTransferReport", "ShardClient"]

_REG = _obs_registry()
_FLUSHES = _REG.counter(
    "shardstore.client.flushes", help="publish flush events (version bumps)"
)
_PULLS = _REG.counter(
    "shardstore.client.pulls", help="batched delta-pull round trips"
)
_ROWS_PUBLISHED = _REG.counter(
    "shardstore.client.rows_published", help="rows pushed through flushes"
)
_BYTES_PUBLISHED = _REG.counter(
    "shardstore.client.bytes_published",
    help="bytes pushed (alpha-beta accounting volume)",
)
_ROWS_PULLED = _REG.counter(
    "shardstore.client.rows_pulled", help="delta rows delivered to pullers"
)
_BYTES_PULLED = _REG.counter(
    "shardstore.client.bytes_pulled",
    help="bytes pulled (alpha-beta accounting volume)",
)
_TRANSFER_S = _REG.histogram(
    "shardstore.client.transfer_seconds",
    help="modelled per-transfer wall time (alpha-beta cost model)",
    lo=1e-6,
    hi=1e4,
)
_HEDGED = _REG.counter(
    "shardstore.client.hedged_reads",
    help="backup reads launched against slow primaries",
)
_RETRY = _REG.counter(
    "shardstore.client.retries",
    help="retry rounds (pull waves and flush re-publishes) after backoff",
)
_DEGRADED_READS = _REG.counter(
    "shardstore.client.degraded_reads",
    help="pulls answered from the bounded-staleness cache",
)
_BREAKERS_OPEN = _REG.gauge(
    "shardstore.client.breakers_open",
    help="per-replica circuit breakers currently open for this process",
)
_ATTEMPT_S = _REG.histogram(
    "shardstore.client.attempt_seconds",
    help="modelled latency of individual per-shard RPC attempts",
    lo=1e-6,
    hi=1e4,
)


@dataclass
class ClientTransferReport:
    """Accounting for one batched publish flush or delta pull.

    The resilience fields stay at their defaults on the legacy
    (non-resilient) path: ``outcome`` is ``"ok"``, ``"hedged"`` when at
    least one backup read fired, or ``"degraded"`` when the pull was
    answered from the bounded-staleness cache instead of the store.
    """

    version: int
    rows: int
    bytes: int
    seconds: float
    tables: list[str] = field(default_factory=list)
    outcome: str = "ok"
    degraded: bool = False
    attempts: int = 1
    hedges: int = 0
    retries: int = 0


class ShardClient:
    """One producer/consumer session against a :class:`ShardedParameterStore`.

    Parameters
    ----------
    store : ShardedParameterStore
        The shared parameter plane.
    link : repro.cluster.network.NetworkLink, optional
        Network path between this client and the store tier.
    contention : float, optional
        Fraction of the link consumed by competing traffic.
    tracer : repro.obs.trace.Tracer, optional
        When given, every flush/pull runs under a span and the modelled
        transfer seconds advance the tracer's clock (a ``SimClock`` in
        simulations, making traces deterministic; a no-op on wall
        clocks).  Counters in the process registry are fed either way.
    faults : repro.cluster.faults.FaultPlane, optional
        Fault-injection plane (anything with a ``delay_factor`` float
        attribute works).  Active ``delay`` faults multiply the modelled
        transfer seconds of every flush and pull through this client —
        a degraded network, not a dead one.  When the plane also exposes
        ``slow_factor``/``is_partitioned`` (a real ``FaultPlane``), the
        resilient pull path models gray failures per shard.
    resilience : repro.cluster.resilience.ResiliencePolicy, optional
        When given, pulls run the resilient read path — per-shard
        modelled RPCs under a deadline budget, circuit breakers, hedged
        backup reads, deterministic retry backoff, and bounded-staleness
        degraded serving when the replica set cannot answer — and
        flushes retry quorum refusals under the same backoff schedule.
        ``None`` keeps the legacy single-shot behaviour byte-for-byte.

    Notes
    -----
    A flush that fails its write quorum raises
    :class:`~repro.cluster.shardstore.store.QuorumError` with the staged
    batches *preserved*: the client retries the same :meth:`flush` after
    the fleet heals, and no acknowledged-looking publish is ever lost.

    The first delta pull registers this client's sync point with the
    store, which pins log compaction at or above it; call :meth:`close`
    when the client retires to release the pin.
    """

    def __init__(
        self,
        store: ShardedParameterStore,
        link: NetworkLink = GBE_100,
        contention: float = 0.0,
        tracer=None,
        faults=None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        self.store = store
        self.link = link
        self.contention = contention
        self.tracer = tracer
        self.faults = faults
        self.resilience = resilience
        self.cost = CollectiveCostModel(link)
        self.synced_version = store.version
        self._staged: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._sync_token: int | None = None
        self._pull_seq = 0
        self.push_log: list[ClientTransferReport] = []
        self.pull_log: list[ClientTransferReport] = []

    # ------------------------------------------------------------------ cost
    def transfer_seconds(self, nbytes: int) -> float:
        """Modelled wall time to move ``nbytes`` between client and store.

        Per-shard streams overlap, so the latency (alpha) term is paid once
        and the bandwidth (beta) term covers the total volume — the same
        closed form as ``link.transfer_seconds`` under the collectives'
        alpha-beta model.
        """
        if nbytes <= 0:
            return 0.0
        seconds = self.link.transfer_seconds(nbytes, contention=self.contention)
        if self.faults is not None:
            seconds *= float(self.faults.delay_factor)
        return seconds

    # --------------------------------------------------------------- publish
    @property
    def staged_rows(self) -> int:
        return sum(
            ids.size for parts in self._staged.values() for ids, _ in parts
        )

    def stage(self, table: str, indices: np.ndarray, rows: np.ndarray) -> None:
        """Queue rows for the next :meth:`flush` (no store interaction yet).

        Parameters
        ----------
        table : str
            Destination table.
        indices : numpy.ndarray of int64
            Row ids to publish.
        rows : numpy.ndarray
            ``(len(indices), dim)`` payloads.  Rows cross onto the
            store's lane here (the client side of publish): against a
            float32 store the checked downcast runs once at stage time
            and the staged copy already holds half the bytes.
        """
        indices, rows = self.store._normalize_batch(indices, rows)
        if indices.size:
            self._staged.setdefault(table, []).append((indices, rows))

    def flush(self) -> ClientTransferReport:
        """Publish everything staged as ONE version bump / sync event.

        Returns
        -------
        ClientTransferReport
            Rows/bytes moved and the alpha-beta modelled transfer time;
            ``version`` is the bump all staged tables landed under.

        Raises
        ------
        repro.cluster.shardstore.store.QuorumError
            When the store cannot reach its write quorum.  The staged
            batches are kept: retry the same flush after repair.  With a
            :attr:`resilience` policy the retry happens here, under the
            policy's deterministic backoff (the ``on_wait`` hook lets a
            fault plane heal mid-flush); the error only escapes once the
            attempt budget is spent.  Publishes are idempotent across
            these retries: a quorum refusal happens *before* any version
            bump or row application, so re-flushing the same staged
            batches can neither lose an acked write nor double-apply one.
        """
        if self.resilience is None:
            return self._flush_traced()
        policy = self.resilience
        attempt = 1
        retries = 0
        while True:
            try:
                report = self._flush_traced()
            except QuorumError:
                if attempt >= policy.retry.max_attempts:
                    raise
                policy.wait(policy.retry.backoff_s(attempt, key=self._pull_seq))
                attempt += 1
                retries += 1
                continue
            report.attempts = attempt
            report.retries = retries
            if _REG.enabled and retries:
                _RETRY.add(retries)
            return report

    def _flush_traced(self) -> ClientTransferReport:
        if self.tracer is None:
            return self._flush()
        with self.tracer.span("shardstore.client.flush") as span:
            report = self._flush()
            span.attrs["version"] = report.version
            span.attrs["rows"] = report.rows
            span.attrs["bytes"] = report.bytes
            self.tracer.advance(report.seconds)
        return report

    def _flush(self) -> ClientTransferReport:
        if not self._staged:
            return ClientTransferReport(
                version=self.store.version, rows=0, bytes=0, seconds=0.0
            )
        batches = []
        total_rows = 0
        for table, parts in self._staged.items():
            ids = np.concatenate([p[0] for p in parts])
            rows = np.concatenate([p[1] for p in parts], axis=0)
            batches.append((table, ids, rows))
            total_rows += int(ids.size)
        version = self.store.publish_many(batches)
        self._staged.clear()
        nbytes = total_rows * self.store.row_bytes
        report = ClientTransferReport(
            version=version,
            rows=total_rows,
            bytes=nbytes,
            seconds=self.transfer_seconds(nbytes),
            tables=[t for t, _, _ in batches],
        )
        self.push_log.append(report)
        if _REG.enabled:
            _FLUSHES.inc()
            _ROWS_PUBLISHED.add(report.rows)
            _BYTES_PUBLISHED.add(report.bytes)
            _TRANSFER_S.observe(report.seconds)
        return report

    def publish(
        self, table: str, indices: np.ndarray, rows: np.ndarray
    ) -> ClientTransferReport:
        """Unbatched convenience: stage one table and flush immediately."""
        self.stage(table, indices, rows)
        return self.flush()

    # ------------------------------------------------------------------ pull
    def staleness_versions(self) -> int:
        """Publish events between this client's sync point and the store."""
        return self.store.version - self.synced_version

    def mark_synced(self) -> None:
        """Adopt the store's current version without pulling (full sync)."""
        self.synced_version = self.store.version
        if self._sync_token is not None:
            self.store.update_sync_point(self._sync_token, self.synced_version)

    def close(self) -> None:
        """Retire this client: release its sync point so it stops pinning
        the store's compaction watermark.  Idempotent."""
        if self._sync_token is not None:
            self.store.unregister_sync_point(self._sync_token)
            self._sync_token = None

    def pull_tables(
        self,
        tables: list[str],
        row_filter: np.ndarray | None = None,
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        """Batched delta pull for several tables since this client's sync point.

        Parameters
        ----------
        tables : list of str
            Tables to pull, all against the same sync point.
        row_filter : numpy.ndarray of int64, optional
            Keep only these row ids (an inference node pulls just its
            partition).

        Returns
        -------
        deltas : dict of str to (numpy.ndarray, numpy.ndarray)
            ``deltas[table] = (ids, rows)`` newer than the sync point.
        report : ClientTransferReport
            Transfer accounting; the sync point advances to the store's
            current version — one round-trip covers every table.
        """
        if self.tracer is None:
            return self._pull_tables(tables, row_filter)
        lag = self.staleness_versions()
        with self.tracer.span("shardstore.client.pull", lag=lag) as span:
            deltas, report = self._pull_tables(tables, row_filter)
            span.attrs["version"] = report.version
            span.attrs["rows"] = report.rows
            span.attrs["bytes"] = report.bytes
            self.tracer.advance(report.seconds)
        return deltas, report

    def _pull_tables(
        self,
        tables: list[str],
        row_filter: np.ndarray | None = None,
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        if self.resilience is not None:
            return self._pull_tables_resilient(tables, row_filter)
        since = self.synced_version
        deltas: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        total_rows = 0
        for table in tables:
            ids, rows, _ = self.store.pull_delta(table, since)
            if row_filter is not None and ids.size:
                keep = np.isin(ids, row_filter)
                ids, rows = ids[keep], rows[keep]
            deltas[table] = (ids, rows)
            total_rows += int(ids.size)
        self.synced_version = self.store.version
        # Pullers pin compaction lazily, on first pull: a publish-only
        # client never registers, so it never holds the watermark back.
        if self._sync_token is None:
            self._sync_token = self.store.register_sync_point(
                self.synced_version
            )
        else:
            self.store.update_sync_point(self._sync_token, self.synced_version)
        nbytes = total_rows * self.store.row_bytes
        report = ClientTransferReport(
            version=self.synced_version,
            rows=total_rows,
            bytes=nbytes,
            seconds=self.transfer_seconds(nbytes),
            tables=list(tables),
        )
        self.pull_log.append(report)
        if _REG.enabled:
            _PULLS.inc()
            _ROWS_PULLED.add(report.rows)
            _BYTES_PULLED.add(report.bytes)
            _TRANSFER_S.observe(report.seconds)
        return deltas, report

    def pull_table(
        self, table: str, row_filter: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, ClientTransferReport]:
        """Single-table delta pull against the client sync point."""
        deltas, report = self.pull_tables([table], row_filter=row_filter)
        ids, rows = deltas[table]
        return ids, rows, report

    # ------------------------------------------------------- resilient reads
    def degraded_read(self, table: str) -> StaleRead:
        """Serve one table from the bounded-staleness cache, explicitly.

        The rows are exact as of this client's last successful sync; the
        returned :class:`~repro.cluster.resilience.degraded.StaleRead`
        carries ``degraded=True``, the sync point, and per-row version
        lag so consumers account for staleness instead of guessing.
        """
        if self.resilience is None or self.resilience.degraded is None:
            raise ValueError("client has no degraded-read cache configured")
        return self.resilience.degraded.serve(
            table, current_version=self.store.version
        )

    def _modelled_rpc_seconds(self, nbytes: int, shard_id: int) -> float:
        """Modelled latency of one per-shard RPC carrying ``nbytes``.

        At least one alpha (link latency) even for an empty delta, then
        scaled by any active ``delay`` fault and the shard's own
        ``slow_node`` factor — a gray failure slows one replica, not the
        whole fabric.
        """
        seconds = self.link.transfer_seconds(
            max(int(nbytes), 1), contention=self.contention
        )
        if self.faults is not None:
            seconds *= float(self.faults.delay_factor)
            slow = getattr(self.faults, "slow_factor", None)
            if slow is not None:
                seconds *= float(slow(shard_id))
        return seconds

    def _shard_delta_bytes(self, tables: list[str], since: int) -> dict[int, int]:
        """Approximate per-shard primary-range delta volume for modelling.

        A shard's log holds every replica copy it owns, so dividing its
        changed-row count by the replication factor approximates the
        primary-range share one resilient RPC actually carries.
        """
        store = self.store
        out: dict[int, int] = {}
        r = max(store.replication, 1)
        for sid in store.shard_ids:
            shard = store.shards[sid]
            count = 0
            for table in tables:
                count += shard.changed_count(table, since)
            out[sid] = (count * store.row_bytes) // r
        return out

    def _pick_backup(self, sid: int, available: list[int], now_abs: float) -> int | None:
        """Healthiest reachable peer whose breaker admits a request."""
        policy = self.resilience
        for peer in policy.health.replica_order(
            [s for s in available if s != sid]
        ):
            if policy.breaker_for(peer).allow(now_abs):
                return peer
        return None

    def _pull_tables_resilient(
        self,
        tables: list[str],
        row_filter: np.ndarray | None = None,
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        """Deadline-budgeted, breaker-guarded, hedged multi-shard pull.

        Each round models one parallel wave of per-shard RPCs on the sim
        clock: reachable primaries answer their own key ranges, slow ones
        get a hedged backup read, failed ones fail over to the healthiest
        peer, and anything still uncovered waits out a deterministic
        backoff (during which the fault plane may heal) and retries.  The
        pull is *exact* only if every range was answered, the available
        shards provably intersect every write quorum (or a clean primary
        vouches for its range), and the whole dance fit the deadline —
        otherwise it degrades: the sync point does NOT advance, and the
        caller is told, loudly, via ``degraded=True``.
        """
        policy = self.resilience
        store = self.store
        since = self.synced_version
        budget = DeadlineBudget(policy.deadline_s)
        start_s = policy.clock.now()
        self._pull_seq += 1
        fail_fast_s = self.link.latency_ms / 1e3
        all_sids = store.shard_ids
        shard_bytes = self._shard_delta_bytes(tables, since)
        covered: dict[int, str] = {}  # sid -> "clean" | "recon"
        attempt_lat: list[float] = []
        attempts = 0
        hedges = 0
        retries = 0
        t_now = 0.0
        available: list[int] = []
        part_of = getattr(self.faults, "is_partitioned", None)
        for round_no in range(1, policy.retry.max_attempts + 1):
            down = set(store.down_shard_ids)
            parted = set()
            if part_of is not None:
                parted = {sid for sid in all_sids if part_of(sid)}
            suspects = set(store.suspect_shard_ids(since))
            available = [
                sid for sid in all_sids
                if sid not in down and sid not in parted
            ]
            wave_end = t_now
            hedge_delay = policy.hedge.hedge_delay_s(policy.health)
            for sid in all_sids:
                if sid in covered:
                    continue
                brk = policy.breaker_for(sid)
                t0 = t_now
                nbytes = shard_bytes.get(sid, 0)
                fail_at: float | None = None
                if not brk.allow(start_s + t0):
                    fail_at = t0  # refused locally: no wire time spent
                elif sid in down:
                    fail_at = t0 + fail_fast_s
                    attempts += 1
                    attempt_lat.append(fail_fast_s)
                    policy.health.record(sid, fail_fast_s, False)
                    brk.record_failure(start_s + fail_at)
                elif sid in parted:
                    timeout = min(
                        policy.attempt_timeout_s,
                        max(budget.total_s - t0, fail_fast_s),
                    )
                    fail_at = t0 + timeout
                    attempts += 1
                    attempt_lat.append(timeout)
                    policy.health.record(sid, timeout, False)
                    brk.record_failure(start_s + fail_at)
                else:
                    cost = self._modelled_rpc_seconds(nbytes, sid)
                    if cost > policy.attempt_timeout_s:
                        fail_at = t0 + policy.attempt_timeout_s
                        attempts += 1
                        attempt_lat.append(policy.attempt_timeout_s)
                        policy.health.record(sid, policy.attempt_timeout_s, False)
                        brk.record_failure(start_s + fail_at)
                    else:
                        attempts += 1
                        attempt_lat.append(cost)
                        policy.health.record(
                            sid, cost, True, hedged=cost > hedge_delay
                        )
                        brk.record_success(start_s + t0 + cost)
                        done = t0 + cost
                        if cost > hedge_delay:
                            backup = self._pick_backup(
                                sid, available, start_s + t0 + hedge_delay
                            )
                            if backup is not None:
                                bcost = self._modelled_rpc_seconds(
                                    nbytes, backup
                                )
                                hedges += 1
                                attempts += 1
                                attempt_lat.append(bcost)
                                policy.health.record(backup, bcost, True)
                                policy.breaker_for(backup).record_success(
                                    start_s + t0 + hedge_delay + bcost
                                )
                                done = min(done, t0 + hedge_delay + bcost)
                        covered[sid] = (
                            "recon" if sid in suspects else "clean"
                        )
                        wave_end = max(wave_end, done)
                        continue
                # Failure path (breaker-refused, down, partitioned, or
                # timed out): fail over to the healthiest reachable peer,
                # which serves the failed primary's range reconciled.
                backup = self._pick_backup(sid, available, start_s + fail_at)
                if backup is not None:
                    bcost = self._modelled_rpc_seconds(nbytes, backup)
                    attempts += 1
                    attempt_lat.append(bcost)
                    policy.health.record(backup, bcost, True)
                    policy.breaker_for(backup).record_success(
                        start_s + fail_at + bcost
                    )
                    covered[sid] = "recon"
                    wave_end = max(wave_end, fail_at + bcost)
                else:
                    wave_end = max(wave_end, fail_at)
            t_now = wave_end
            if all(sid in covered for sid in all_sids):
                break
            if round_no >= policy.retry.max_attempts:
                break
            backoff = policy.retry.backoff_s(round_no, key=self._pull_seq)
            if t_now + backoff >= budget.total_s:
                break
            t_now += backoff
            retries += 1
            self._advance_policy_clock(start_s + t_now)
            if policy.on_wait is not None:
                policy.on_wait(policy.clock.now())
        clean_ids = [sid for sid in all_sids if covered.get(sid) == "clean"]
        exact = (
            all(sid in covered for sid in all_sids)
            and t_now <= budget.total_s
            and store.placement.coverage_ok(
                store.replication, available, clean_ids
            )
        )
        if not exact:
            return self._degraded_result(
                tables, since, budget, start_s, attempts, hedges, retries,
                attempt_lat,
            )
        recon_ids = [sid for sid in all_sids if covered.get(sid) == "recon"]
        deltas: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        total_rows = 0
        for table in tables:
            parts = [
                store.pull_delta_primary(table, since, sid)
                for sid in clean_ids
            ]
            parts = [p for p in parts if p[0].size]
            recon_part = store.pull_delta_ranges(
                table, since, recon_ids, available
            )
            if recon_part[0].size:
                parts.append(recon_part)
            if parts:
                ids = np.concatenate([p[0] for p in parts])
                rows = np.concatenate([p[1] for p in parts], axis=0)
                versions = np.concatenate([p[2] for p in parts])
                order = np.argsort(ids)  # primaries own disjoint key sets
                ids, rows, versions = ids[order], rows[order], versions[order]
            else:
                ids = np.empty(0, dtype=np.int64)
                rows = np.zeros(
                    (0, store.dim_of(table)), dtype=store.row_dtype
                )
                versions = np.empty(0, dtype=np.int64)
            if row_filter is not None and ids.size:
                keep = np.isin(ids, row_filter)
                ids, rows, versions = ids[keep], rows[keep], versions[keep]
            deltas[table] = (ids, rows)
            total_rows += int(ids.size)
            if policy.degraded is not None:
                policy.degraded.update(
                    table, ids, rows, versions, store.version
                )
        self.synced_version = store.version
        if self._sync_token is None:
            self._sync_token = self.store.register_sync_point(
                self.synced_version
            )
        else:
            self.store.update_sync_point(self._sync_token, self.synced_version)
        nbytes = total_rows * store.row_bytes
        report = ClientTransferReport(
            version=self.synced_version,
            rows=total_rows,
            bytes=nbytes,
            seconds=t_now,
            tables=list(tables),
            outcome="hedged" if hedges else "ok",
            attempts=attempts,
            hedges=hedges,
            retries=retries,
        )
        self.pull_log.append(report)
        self._advance_policy_clock(start_s + t_now)
        self._record_pull_metrics(report, attempt_lat)
        return deltas, report

    def _degraded_result(
        self,
        tables: list[str],
        since: int,
        budget: DeadlineBudget,
        start_s: float,
        attempts: int,
        hedges: int,
        retries: int,
        attempt_lat: list[float],
    ) -> tuple[dict[str, tuple[np.ndarray, np.ndarray]], ClientTransferReport]:
        """Close out a pull the replica set could not answer exactly.

        The sync point does NOT advance (nothing was read exactly, so
        claiming progress would silently skip acked publishes on the next
        pull), the full deadline is charged, and the caller either gets
        empty deltas flagged ``degraded=True`` (serve staleness via
        :meth:`degraded_read`) or — with no degraded cache configured — a
        typed :class:`DegradedReadError`.
        """
        policy = self.resilience
        store = self.store
        self._advance_policy_clock(start_s + budget.total_s)
        if policy.degraded is None:
            report = ClientTransferReport(
                version=since,
                rows=0,
                bytes=0,
                seconds=budget.total_s,
                tables=list(tables),
                outcome="degraded",
                degraded=True,
                attempts=attempts,
                hedges=hedges,
                retries=retries,
            )
            self.pull_log.append(report)
            self._record_pull_metrics(report, attempt_lat)
            raise DegradedReadError(list(tables), since, store.version)
        deltas = {
            table: (
                np.empty(0, dtype=np.int64),
                np.zeros((0, store.dim_of(table)), dtype=store.row_dtype),
            )
            for table in tables
        }
        report = ClientTransferReport(
            version=since,
            rows=0,
            bytes=0,
            seconds=budget.total_s,
            tables=list(tables),
            outcome="degraded",
            degraded=True,
            attempts=attempts,
            hedges=hedges,
            retries=retries,
        )
        self.pull_log.append(report)
        self._record_pull_metrics(report, attempt_lat)
        return deltas, report

    def _advance_policy_clock(self, target_s: float) -> None:
        """Move the policy's shared sim clock forward, never backward."""
        clock = self.resilience.clock
        if target_s > clock.now():
            clock.set(target_s)

    def _record_pull_metrics(
        self, report: ClientTransferReport, attempt_lat: list[float]
    ) -> None:
        """Batched obs-plane accounting for one resilient pull."""
        if not _REG.enabled:
            return
        policy = self.resilience
        _PULLS.inc()
        _ROWS_PULLED.add(report.rows)
        _BYTES_PULLED.add(report.bytes)
        _TRANSFER_S.observe(report.seconds)
        _HEDGED.add(report.hedges)
        _RETRY.add(report.retries)
        if report.degraded:
            _DEGRADED_READS.inc()
        _ATTEMPT_S.observe_many(np.asarray(attempt_lat, dtype=np.float64))
        _BREAKERS_OPEN.set(policy.open_breakers(policy.clock.now()))
