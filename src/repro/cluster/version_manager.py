"""Model version management: batching, promotion gates, and rollback.

The parameter-server tier "manages version control" (Section II-B).  In
production that means more than a counter: updates are batched into
promotable versions, each version passes a quality gate (canary AUC) before
fleet-wide promotion, and a bad version can be rolled back.  LiveUpdate's
hourly full sync rides this machinery; its local LoRA updates deliberately
bypass it (that's the freshness win), which makes the gate on the full-sync
path the fleet's safety net.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dlrm.checkpoint import Checkpoint
from ..dlrm.model import DLRM
from ..obs.metrics import registry as _obs_registry
from ..obs.recorder import flight_recorder as _flight_recorder

__all__ = ["VersionRecord", "GateResult", "ModelVersionManager"]

_REG = _obs_registry()
_REGISTERED = _REG.counter(
    "cluster.versions.registered", help="candidate versions snapshotted"
)
_PROMOTED = _REG.counter(
    "cluster.versions.promoted", help="fleet-wide promotions"
)
_ROLLED_BACK = _REG.counter(
    "cluster.versions.rolled_back", help="fleet rollbacks to earlier versions"
)
_GATE_FAILURES = _REG.counter(
    "cluster.versions.gate_failures", help="canary gates that refused a candidate"
)
_SERVING = _REG.gauge(
    "cluster.versions.serving", help="currently promoted model version (0 = none)"
)


@dataclass
class VersionRecord:
    """One promotable model version.

    ``store_version`` ties the model version to the parameter-store
    version it was trained against: the oldest retained one is the
    store's compaction watermark (delta-log entries older than every
    retained model version can never be needed for a rollback resync).
    """

    version: int
    checkpoint: Checkpoint
    created_s: float
    canary_auc: float | None = None
    promoted: bool = False
    rolled_back: bool = False
    store_version: int | None = None


@dataclass
class GateResult:
    """Outcome of a canary evaluation."""

    version: int
    canary_auc: float
    reference_auc: float
    passed: bool

    @property
    def auc_delta(self) -> float:
        return self.canary_auc - self.reference_auc


class ModelVersionManager:
    """Versioned checkpoint store with promotion gating and rollback.

    Args:
        max_versions: retention window (older checkpoints are dropped,
            except the currently promoted one).
        gate_tolerance: max allowed AUC regression vs the serving version
            for a candidate to pass the canary gate.
    """

    def __init__(
        self, max_versions: int = 5, gate_tolerance: float = 0.005
    ) -> None:
        if max_versions < 2:
            raise ValueError("need to retain at least two versions")
        self.max_versions = max_versions
        self.gate_tolerance = gate_tolerance
        self._records: dict[int, VersionRecord] = {}
        self._next_version = 1
        self.serving_version: int | None = None
        self.gate_log: list[GateResult] = []

    # ---------------------------------------------------------------- stash
    def register(
        self, model: DLRM, now: float, store_version: int | None = None
    ) -> VersionRecord:
        """Snapshot a trained model as a candidate version.

        Pass ``store_version`` (the parameter store's version at snapshot
        time) to let :meth:`compaction_watermark` drive background
        delta-log compaction: the store may truncate everything older
        than the oldest retained snapshot.
        """
        version = self._next_version
        self._next_version += 1
        record = VersionRecord(
            version=version,
            checkpoint=Checkpoint.capture(model, version),
            created_s=now,
            store_version=store_version,
        )
        self._records[version] = record
        self._evict()
        if _REG.enabled:
            _REGISTERED.inc()
        return record

    def compaction_watermark(self) -> int | None:
        """Oldest retained snapshot's parameter-store version, or None.

        Feed this to
        :meth:`repro.cluster.shardstore.store.ShardedParameterStore.compact`:
        log entries at or below it predate every version the manager could
        still roll back to, so truncating them is safe from the version
        manager's point of view (the store additionally clamps to its own
        registered client sync points).
        """
        marks = [
            r.store_version
            for r in self._records.values()
            if r.store_version is not None
        ]
        return min(marks) if marks else None

    def _evict(self) -> None:
        while len(self._records) > self.max_versions:
            oldest = min(
                v for v in self._records if v != self.serving_version
            )
            del self._records[oldest]

    def get(self, version: int) -> VersionRecord:
        if version not in self._records:
            raise KeyError(f"version {version} not retained")
        return self._records[version]

    @property
    def versions(self) -> list[int]:
        return sorted(self._records)

    # ----------------------------------------------------------------- gate
    def canary_gate(
        self,
        candidate: int,
        canary_auc: float,
        reference_auc: float,
    ) -> GateResult:
        """Record a canary evaluation and decide promotability.

        The candidate passes unless it regresses more than
        ``gate_tolerance`` below the currently serving version's AUC.
        """
        record = self.get(candidate)
        record.canary_auc = canary_auc
        passed = canary_auc >= reference_auc - self.gate_tolerance
        result = GateResult(
            version=candidate,
            canary_auc=canary_auc,
            reference_auc=reference_auc,
            passed=passed,
        )
        self.gate_log.append(result)
        if _REG.enabled and not passed:
            _GATE_FAILURES.inc()
            _flight_recorder().record(
                "cluster.versions",
                "gate_failure",
                f"version {candidate} refused by canary gate",
                canary_auc=canary_auc,
                reference_auc=reference_auc,
            )
        return result

    # ------------------------------------------------------------ promotion
    def promote(self, version: int, fleet: list[DLRM]) -> int:
        """Restore ``version`` onto every replica; returns replicas updated."""
        record = self.get(version)
        for model in fleet:
            record.checkpoint.restore(model)
        record.promoted = True
        self.serving_version = version
        if _REG.enabled:
            _PROMOTED.inc()
            _SERVING.set(version)
        return len(fleet)

    def rollback(self, fleet: list[DLRM]) -> int:
        """Revert the fleet to the last promoted version before the current.

        Returns the version rolled back to.
        """
        if self.serving_version is None:
            raise RuntimeError("nothing has been promoted yet")
        current = self.serving_version
        candidates = [
            v
            for v, r in self._records.items()
            if r.promoted and v < current and not r.rolled_back
        ]
        if not candidates:
            raise RuntimeError("no earlier promoted version retained")
        target = max(candidates)
        self._records[current].rolled_back = True
        self.promote(target, fleet)
        if _REG.enabled:
            _ROLLED_BACK.inc()
            _flight_recorder().record(
                "cluster.versions",
                "rollback",
                f"fleet rolled back {current} -> {target}",
                from_version=current,
                to_version=target,
            )
        return target

    # ------------------------------------------------------------ utilities
    def promote_if_healthy(
        self,
        candidate: int,
        fleet: list[DLRM],
        eval_batch,
        metric=None,
    ) -> GateResult:
        """Canary-evaluate against the serving fleet, promote on pass.

        Args:
            candidate: version to consider.
            fleet: serving replicas (replica 0 is the canary reference).
            eval_batch: a labelled :class:`~repro.data.synthetic.Batch`.
            metric: callable ``(labels, scores) -> float``; defaults to AUC.
        """
        from ..dlrm.metrics import auc_roc

        metric = metric or auc_roc
        reference_auc = float(
            metric(
                eval_batch.labels,
                fleet[0].predict(eval_batch.dense, eval_batch.sparse_ids),
            )
        )
        probe = fleet[0].copy()
        self.get(candidate).checkpoint.restore(probe)
        canary_auc = float(
            metric(
                eval_batch.labels,
                probe.predict(eval_batch.dense, eval_batch.sparse_ids),
            )
        )
        result = self.canary_gate(candidate, canary_auc, reference_auc)
        if result.passed:
            self.promote(candidate, fleet)
        return result
