"""Training-cluster and inference-node actors.

These wrap the DLRM substrate into the deployment roles of Fig. 2:

* :class:`TrainingCluster` continuously trains its own replica on the
  streaming data and pushes changed embedding rows to the parameter server.
* :class:`InferenceNode` serves predictions from a (possibly stale) replica
  and can pull deltas from the parameter server to catch up.

Both operate on real parameters so accuracy timelines are measured, not
modelled; transfer *times* come from the network cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import Batch
from ..dlrm.model import DLRM
from ..dlrm.optim import RowwiseAdagrad
from .network import NetworkLink, GBE_100
from .parameter_server import ParameterServer

__all__ = ["PushReport", "PullReport", "TrainingCluster", "InferenceNode"]


@dataclass
class PushReport:
    """Result of one training-cluster publish event."""

    version: int
    rows_pushed: int
    bytes_pushed: int
    transfer_seconds: float


@dataclass
class PullReport:
    """Result of one inference-node delta pull."""

    version: int
    rows_pulled: int
    bytes_pulled: int
    transfer_seconds: float


class TrainingCluster:
    """The GPU training tier: trains a replica, publishes deltas.

    Args:
        model: the training replica (owned and mutated).
        server: destination parameter server.
        link: training-cluster -> parameter-server network path.
        lr: learning rate of the row-wise Adagrad optimizer.
    """

    def __init__(
        self,
        model: DLRM,
        server: ParameterServer,
        link: NetworkLink = GBE_100,
        lr: float = 0.05,
    ) -> None:
        self.model = model
        self.server = server
        self.link = link
        self.optimizer = RowwiseAdagrad(lr=lr)
        self.steps_trained = 0

    def train_on(self, batch: Batch, update_dense: bool = True) -> float:
        """One mini-batch step; returns the loss."""
        result = self.model.train_step(
            batch.dense, batch.sparse_ids, batch.labels, self.optimizer,
            update_dense=update_dense,
        )
        self.steps_trained += 1
        return result.loss

    def publish_changed_rows(self) -> PushReport:
        """Push every row touched since the last publish (delta push)."""
        rows_pushed = 0
        version = self.server.version
        for f, table in enumerate(self.model.embeddings):
            touched = table.touched_rows()
            if touched.size == 0:
                continue
            version = self.server.publish_batch(
                f"table_{f}", touched, table.weight[touched]
            )
            rows_pushed += int(touched.size)
            table.reset_touched()
        nbytes = rows_pushed * self.server.row_bytes
        return PushReport(
            version=version,
            rows_pushed=rows_pushed,
            bytes_pushed=nbytes,
            transfer_seconds=self.link.transfer_seconds(nbytes) if nbytes else 0.0,
        )


class InferenceNode:
    """One serving replica that pulls updates from the parameter server."""

    def __init__(
        self,
        model: DLRM,
        server: ParameterServer,
        link: NetworkLink = GBE_100,
        node_id: int = 0,
    ) -> None:
        self.model = model
        self.server = server
        self.link = link
        self.node_id = node_id
        self.synced_version = server.version
        self.pull_log: list[PullReport] = []

    def predict(self, batch: Batch, overlay=None) -> np.ndarray:
        return self.model.predict(batch.dense, batch.sparse_ids, overlay=overlay)

    def staleness_versions(self) -> int:
        """How many publish events behind the server this node is."""
        return self.server.version - self.synced_version

    def pull_updates(
        self, row_filter: np.ndarray | None = None
    ) -> PullReport:
        """Apply every delta newer than our synced version.

        Args:
            row_filter: optional id whitelist per pull (QuickUpdate-style
                priority subsetting happens upstream at publish time; this
                filter exists for partial-pull experiments).
        """
        total_rows = 0
        for f, table in enumerate(self.model.embeddings):
            indices, rows, version = self.server.pull_delta(
                f"table_{f}", self.synced_version
            )
            if indices.size == 0:
                continue
            if row_filter is not None:
                keep = np.isin(indices, row_filter)
                indices, rows = indices[keep], rows[keep]
            if indices.size:
                valid = indices < table.num_rows
                table.assign_rows(indices[valid], rows[valid])
                total_rows += int(valid.sum())
        self.synced_version = self.server.version
        nbytes = total_rows * self.server.row_bytes
        report = PullReport(
            version=self.synced_version,
            rows_pulled=total_rows,
            bytes_pulled=nbytes,
            transfer_seconds=self.link.transfer_seconds(nbytes) if nbytes else 0.0,
        )
        self.pull_log.append(report)
        return report

    def adopt_model(self, source: DLRM) -> None:
        """Full-parameter refresh from a source replica (hourly full sync)."""
        self.model.load_state_dict(source.state_dict())
        self.synced_version = self.server.version
