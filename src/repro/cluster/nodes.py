"""Training-cluster and inference-node actors.

These wrap the DLRM substrate into the deployment roles of Fig. 2:

* :class:`TrainingCluster` continuously trains its own replica on the
  streaming data and pushes changed embedding rows to the parameter plane.
* :class:`InferenceNode` serves predictions from a (possibly stale) replica
  and can pull deltas from the parameter plane to catch up.

Both operate on real parameters so accuracy timelines are measured, not
modelled, and both speak to the store through a
:class:`repro.cluster.shardstore.ShardClient` session: the trainer stages
every touched table and flushes the window as ONE version bump (version
batching across tables), and the node pulls all tables' deltas in one
batched round against its client sync point.  Transfer *times* come from
the client's network cost model.  Either a raw
:class:`ShardedParameterStore` or the legacy :class:`ParameterServer`
facade is accepted as the ``server``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import Batch
from ..dlrm.model import DLRM
from ..dlrm.optim import RowwiseAdagrad
from ..obs.metrics import registry as _obs_registry
from ..obs.trace import Tracer
from ..obs.recorder import flight_recorder as _flight_recorder
from .network import NetworkLink, GBE_100
from .parameter_server import ParameterServer
from .shardstore import QuorumError, ShardClient, ShardedParameterStore

__all__ = ["PushReport", "PullReport", "TrainingCluster", "InferenceNode"]

_REG = _obs_registry()
_TRAIN_STEPS = _REG.counter(
    "cluster.train.steps", help="mini-batch steps across all TrainingClusters"
)
_TRAIN_SAMPLES = _REG.counter(
    "cluster.train.samples", help="labelled samples consumed by training"
)
_STEP_SECONDS = _REG.histogram(
    "cluster.train.step_seconds",
    help="wall time per TrainingCluster.train_on step",
    lo=1e-6,
    hi=1e3,
)
_NODE_ROWS_APPLIED = _REG.counter(
    "cluster.node.rows_applied", help="delta rows adopted by inference nodes"
)
_NODE_FULL_SYNCS = _REG.counter(
    "cluster.node.full_syncs", help="whole-model adoptions (hourly full sync)"
)
_PUBLISH_QUORUM_FAILURES = _REG.counter(
    "cluster.train.publish_quorum_failures",
    help="window publishes refused by the store's write quorum",
)


def _store_of(
    server: ParameterServer | ShardedParameterStore,
) -> ShardedParameterStore:
    return server.store if isinstance(server, ParameterServer) else server


@dataclass
class PushReport:
    """Result of one training-cluster publish event."""

    version: int
    rows_pushed: int
    bytes_pushed: int
    transfer_seconds: float


@dataclass
class PullReport:
    """Result of one inference-node delta pull.

    ``degraded`` is True when a resilient client could not answer the
    pull exactly within its deadline: nothing was applied, the node's
    sync point did not advance, and it keeps serving its current
    (explicitly stale) replica.
    """

    version: int
    rows_pulled: int
    bytes_pulled: int
    transfer_seconds: float
    degraded: bool = False


class TrainingCluster:
    """The GPU training tier: trains a replica, publishes deltas.

    Args:
        model: the training replica (owned and mutated).
        server: destination parameter plane (sharded store or facade).
        link: training-cluster -> parameter-plane network path.
        lr: learning rate of the row-wise Adagrad optimizer.
        tracer: optional shared :class:`repro.obs.trace.Tracer`; when
            given, publish flushes also run under spans on its clock.
            Step timing always goes through a tracer span (a private
            wall-clock one by default) so span durations and step
            metrics cannot drift apart.
        faults: optional fault plane handed to the client (delay /
            slow-node / partition modelling on its transfers).
        resilience: optional
            :class:`repro.cluster.resilience.ResiliencePolicy`; flushes
            then retry quorum refusals under deterministic backoff
            before surfacing them.
    """

    def __init__(
        self,
        model: DLRM,
        server: ParameterServer | ShardedParameterStore,
        link: NetworkLink = GBE_100,
        lr: float = 0.05,
        tracer: Tracer | None = None,
        faults=None,
        resilience=None,
    ) -> None:
        self.model = model
        self.server = server
        self.link = link
        self.tracer = tracer if tracer is not None else Tracer()
        self.client = ShardClient(
            _store_of(server),
            link=link,
            tracer=tracer,
            faults=faults,
            resilience=resilience,
        )
        self.optimizer = RowwiseAdagrad(lr=lr)
        self.steps_trained = 0

    def train_on(self, batch: Batch, update_dense: bool = True) -> float:
        """One mini-batch step; returns the loss."""
        with self.tracer.span("cluster.train.step") as span:
            result = self.model.train_step(
                batch.dense, batch.sparse_ids, batch.labels, self.optimizer,
                update_dense=update_dense,
            )
        self.steps_trained += 1
        if _REG.enabled:
            _TRAIN_STEPS.inc()
            _TRAIN_SAMPLES.add(int(batch.labels.shape[0]))
            _STEP_SECONDS.observe(span.duration)
        return result.loss

    def publish_changed_rows(self) -> PushReport:
        """Push every row touched since the last publish (delta push).

        All tables are staged on the client and flushed as one publish
        event: one version bump per window however many tables changed.
        The touched set drains straight from each table's epoch-stamp lane
        (:class:`repro.core.kernels.TouchedRows`) — one vectorized scan per
        table, no per-id bookkeeping.

        Raises
        ------
        repro.cluster.shardstore.store.QuorumError
            When the store (replicated) cannot reach its write quorum
            mid-window.  The window's rows stay staged on the client, so
            calling this again after the fleet heals retries the same
            publish — a refused window is loud and retryable, never a
            silent row loss.
        """
        for f, table in enumerate(self.model.embeddings):
            touched = table.drain_touched()
            if touched.size == 0:
                continue
            self.client.stage(f"table_{f}", touched, table.weight[touched])
        try:
            report = self.client.flush()
        except QuorumError as err:
            if _REG.enabled:
                _PUBLISH_QUORUM_FAILURES.inc()
                _flight_recorder().record(
                    "cluster.train",
                    "publish_refused",
                    f"window publish refused: {err}",
                    table=err.table,
                    got=err.got,
                    needed=err.needed,
                )
            raise
        return PushReport(
            version=report.version,
            rows_pushed=report.rows,
            bytes_pushed=report.bytes,
            transfer_seconds=report.seconds,
        )


class InferenceNode:
    """One serving replica that pulls updates from the parameter plane.

    With a ``resilience`` policy the node's pulls ride the resilient
    client path: a pull the replica set cannot answer exactly comes back
    ``degraded`` — the node applies nothing, keeps its sync point, and
    serves its current replica with staleness on the record instead of
    crashing or silently skipping updates.
    """

    def __init__(
        self,
        model: DLRM,
        server: ParameterServer | ShardedParameterStore,
        link: NetworkLink = GBE_100,
        node_id: int = 0,
        tracer: Tracer | None = None,
        faults=None,
        resilience=None,
    ) -> None:
        self.model = model
        self.server = server
        self.link = link
        self.node_id = node_id
        self.client = ShardClient(
            _store_of(server),
            link=link,
            tracer=tracer,
            faults=faults,
            resilience=resilience,
        )
        self.pull_log: list[PullReport] = []

    @property
    def synced_version(self) -> int:
        return self.client.synced_version

    def predict(self, batch: Batch, overlay=None) -> np.ndarray:
        return self.model.predict(batch.dense, batch.sparse_ids, overlay=overlay)

    def staleness_versions(self) -> int:
        """How many publish events behind the store this node is."""
        return self.client.staleness_versions()

    def pull_updates(
        self, row_filter: np.ndarray | None = None
    ) -> PullReport:
        """Apply every delta newer than our synced version, one batched round.

        Args:
            row_filter: optional id whitelist per pull (QuickUpdate-style
                priority subsetting happens upstream at publish time; this
                filter exists for partial-pull experiments).
        """
        tables = [f"table_{f}" for f in range(len(self.model.embeddings))]
        deltas, transfer = self.client.pull_tables(tables, row_filter=row_filter)
        if transfer.degraded:
            # Nothing exact came back: apply nothing, keep the sync
            # point, surface the degradation instead of faking progress.
            report = PullReport(
                version=self.synced_version,
                rows_pulled=0,
                bytes_pulled=0,
                transfer_seconds=transfer.seconds,
                degraded=True,
            )
            self.pull_log.append(report)
            return report
        total_rows = 0
        for f, table in enumerate(self.model.embeddings):
            indices, rows = deltas[tables[f]]
            if indices.size == 0:
                continue
            valid = indices < table.num_rows
            table.assign_rows(indices[valid], rows[valid])
            total_rows += int(valid.sum())
        nbytes = total_rows * self.client.store.row_bytes
        report = PullReport(
            version=self.synced_version,
            rows_pulled=total_rows,
            bytes_pulled=nbytes,
            transfer_seconds=self.client.transfer_seconds(nbytes),
        )
        self.pull_log.append(report)
        if _REG.enabled:
            _NODE_ROWS_APPLIED.add(total_rows)
        return report

    def adopt_model(self, source: DLRM) -> None:
        """Full-parameter refresh from a source replica (hourly full sync)."""
        self.model.load_state_dict(source.state_dict())
        self.client.mark_synced()
        if _REG.enabled:
            _NODE_FULL_SYNCS.inc()
