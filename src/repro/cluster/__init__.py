"""Deployment substrate: networks, parameter server, collectives, cluster
actors, and the discrete-event update-timeline simulator."""

from .collectives import (
    CollectiveCostModel,
    allgather_naive_seconds,
    allgather_ring_seconds,
    allgather_tree_seconds,
    fit_log_trend,
)
from .consistency import (
    ConsistencyReport,
    check_prediction_consistency,
    parameter_divergence,
)
from .network import GBE_100, INFINIBAND_EDR, NetworkLink, transfer_seconds
from .nodes import InferenceNode, PullReport, PushReport, TrainingCluster
from .parameter_server import ParameterServer, ShardStats
from .shardstore import (
    ClientTransferReport,
    RebalanceReport,
    ShardClient,
    ShardPlacement,
    ShardedParameterStore,
)
from .timeline import UpdateEvent, UpdateTimeline, simulate_periodic_updates
from .version_manager import GateResult, ModelVersionManager, VersionRecord

__all__ = [
    "NetworkLink",
    "GBE_100",
    "INFINIBAND_EDR",
    "transfer_seconds",
    "ConsistencyReport",
    "check_prediction_consistency",
    "parameter_divergence",
    "ParameterServer",
    "ShardStats",
    "ShardedParameterStore",
    "ShardClient",
    "ShardPlacement",
    "ClientTransferReport",
    "RebalanceReport",
    "CollectiveCostModel",
    "allgather_tree_seconds",
    "allgather_ring_seconds",
    "allgather_naive_seconds",
    "fit_log_trend",
    "TrainingCluster",
    "InferenceNode",
    "PushReport",
    "PullReport",
    "UpdateEvent",
    "ModelVersionManager",
    "VersionRecord",
    "GateResult",
    "UpdateTimeline",
    "simulate_periodic_updates",
]
