"""Deployment substrate: networks, parameter server, collectives, cluster
actors, and the discrete-event update-timeline simulator."""

from .collectives import (
    CollectiveCostModel,
    allgather_naive_seconds,
    allgather_ring_seconds,
    allgather_tree_seconds,
    fit_log_trend,
)
from .consistency import (
    ConsistencyReport,
    ReplicaConvergenceReport,
    check_prediction_consistency,
    check_replica_convergence,
    parameter_divergence,
)
from .faults import FaultEvent, FaultPlane, FaultSchedule
from .network import GBE_100, INFINIBAND_EDR, NetworkLink, transfer_seconds
from .nodes import InferenceNode, PullReport, PushReport, TrainingCluster
from .parameter_server import ParameterServer, PublishRefusedError, ShardStats
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    DeadlineBudget,
    DeadlineExceeded,
    DegradedReadError,
    DegradedReadMode,
    HealthTracker,
    HedgedRead,
    ResiliencePolicy,
    RetryPolicy,
    StaleRead,
)
from .shardstore import (
    ClientTransferReport,
    QuorumError,
    RebalanceReport,
    RepairPlan,
    RepairReport,
    RepairTask,
    ShardClient,
    ShardPlacement,
    ShardedParameterStore,
)
from .timeline import UpdateEvent, UpdateTimeline, simulate_periodic_updates
from .version_manager import GateResult, ModelVersionManager, VersionRecord

__all__ = [
    "NetworkLink",
    "GBE_100",
    "INFINIBAND_EDR",
    "transfer_seconds",
    "ConsistencyReport",
    "ReplicaConvergenceReport",
    "check_prediction_consistency",
    "check_replica_convergence",
    "parameter_divergence",
    "FaultEvent",
    "FaultPlane",
    "FaultSchedule",
    "ParameterServer",
    "PublishRefusedError",
    "ShardStats",
    "BreakerConfig",
    "CircuitBreaker",
    "DeadlineBudget",
    "DeadlineExceeded",
    "DegradedReadError",
    "DegradedReadMode",
    "HealthTracker",
    "HedgedRead",
    "ResiliencePolicy",
    "RetryPolicy",
    "StaleRead",
    "ShardedParameterStore",
    "ShardClient",
    "ShardPlacement",
    "ClientTransferReport",
    "QuorumError",
    "RebalanceReport",
    "RepairPlan",
    "RepairReport",
    "RepairTask",
    "CollectiveCostModel",
    "allgather_tree_seconds",
    "allgather_ring_seconds",
    "allgather_naive_seconds",
    "fit_log_trend",
    "TrainingCluster",
    "InferenceNode",
    "PushReport",
    "PullReport",
    "UpdateEvent",
    "ModelVersionManager",
    "VersionRecord",
    "GateResult",
    "UpdateTimeline",
    "simulate_periodic_updates",
]
