"""Deterministic fault injection for the parameter plane.

Chaos testing only earns its keep when a failing run can be replayed
bit-for-bit, so everything here is driven by explicit state, never wall
time or unseeded randomness: a :class:`FaultSchedule` is a sorted list of
:class:`FaultEvent` timestamps on the *simulated* clock, generated — when
randomized — from a seeded ``numpy`` generator, and a :class:`FaultPlane`
binds one schedule to one :class:`~repro.cluster.shardstore.store.\
ShardedParameterStore`, dispatching each event exactly once as simulated
time passes its timestamp.

Seven event kinds cover the failure modes the replication protocol
promises to survive (and the ones it promises to *refuse* loudly):

``kill``
    The shard stops answering: publishes skip it (quorum accounting
    notices), reads fail over to its replica peers.
``revive``
    The shard returns with whatever (stale) rows it held at kill time;
    :meth:`~repro.cluster.shardstore.store.ShardedParameterStore.repair`
    reconverges it.
``drop_publish``
    The shard silently fails to apply its next publish — a lost message
    rather than a dead node.  Same ledger, same quorum math.
``delay``
    Multiplies modelled client transfer times (degraded network); a
    factor of 1.0 clears it.
``slow_node``
    One shard answers, but slowly: its modelled RPC latencies are
    multiplied by ``factor`` until a later ``slow_node`` with factor
    1.0 clears it.  The gray-failure mode hedged reads exist for.
``partition``
    One shard is unreachable (requests time out rather than fast-fail)
    for ``duration_s`` simulated seconds, then heals on its own.
``flap``
    The shard bounces: expanded at schedule-build time into alternating
    kill/revive pairs every ``period_s`` over ``duration_s``, always
    ending revived.  Stresses breaker half-open behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.recorder import flight_recorder as _flight_recorder
from ..obs.metrics import registry as _obs_registry

__all__ = ["FaultEvent", "FaultSchedule", "FaultPlane"]

_KINDS = (
    "kill",
    "revive",
    "drop_publish",
    "delay",
    "slow_node",
    "partition",
    "flap",
)

_REG = _obs_registry()
_INJECTED = _REG.counter(
    "cluster.faults.injected", help="fault events dispatched onto the store"
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Parameters
    ----------
    at_s : float
        Simulated time the fault fires.
    kind : str
        One of ``kill``, ``revive``, ``drop_publish``, ``delay``,
        ``slow_node``, ``partition``, ``flap``.
    shard_id : int, optional
        Target shard; required for every kind except ``delay``.
    factor : float, optional
        ``delay``/``slow_node`` only: multiplier on modelled transfer
        seconds (>= 1.0; exactly 1.0 restores healthy speed).
    duration_s : float, optional
        ``partition``/``flap`` only: how long the condition lasts
        (must be positive for those kinds).
    period_s : float, optional
        ``flap`` only: length of one kill+revive bounce cycle.
    """

    at_s: float
    kind: str
    shard_id: int | None = None
    factor: float = 1.0
    duration_s: float = 0.0
    period_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind != "delay" and self.shard_id is None:
            raise ValueError(f"{self.kind} fault needs a shard_id")
        if self.kind in ("delay", "slow_node") and self.factor < 1.0:
            raise ValueError(f"{self.kind} factor must be >= 1.0")
        if self.kind in ("partition", "flap") and self.duration_s <= 0.0:
            raise ValueError(f"{self.kind} fault needs duration_s > 0")
        if self.kind == "flap" and self.period_s <= 0.0:
            raise ValueError("flap fault needs period_s > 0")


def _expand_flap(event: FaultEvent) -> list[FaultEvent]:
    """Expand one ``flap`` into its alternating kill/revive bounces.

    Each ``period_s`` cycle is half down, half up; the expansion always
    ends with a revive, so a flapping shard is healthy once the fault
    window closes (the half-open breaker probes are what get stressed,
    not the final state).
    """
    out: list[FaultEvent] = []
    start = float(event.at_s)
    end = start + float(event.duration_s)
    t = start
    while t < end:
        out.append(FaultEvent(t, "kill", event.shard_id))
        out.append(
            FaultEvent(min(t + event.period_s / 2.0, end), "revive", event.shard_id)
        )
        t += float(event.period_s)
    return out


@dataclass
class FaultSchedule:
    """A time-sorted list of faults, replayable bit-for-bit.

    Build one by hand for targeted regression tests, or with
    :meth:`random` for seeded chaos sweeps.  Iterating via :meth:`due`
    consumes events as simulated time passes them.
    """

    events: list[FaultEvent] = field(default_factory=list)
    _cursor: int = 0

    def __post_init__(self) -> None:
        expanded: list[FaultEvent] = []
        for event in self.events:
            if event.kind == "flap":
                expanded.extend(_expand_flap(event))
            else:
                expanded.append(event)
        # Stable sort: identical-timestamp events keep insertion order,
        # which the chaos suites pin as part of replay determinism.
        self.events = sorted(expanded, key=lambda e: e.at_s)

    @property
    def remaining(self) -> int:
        """Events not yet consumed by :meth:`due`."""
        return len(self.events) - self._cursor

    def due(self, now_s: float) -> list[FaultEvent]:
        """Consume and return every event with ``at_s <= now_s``.

        Monotone: each event is returned exactly once however often the
        caller polls, so a :class:`FaultPlane` can poll after every
        window without double-killing a shard.
        """
        start = self._cursor
        while (
            self._cursor < len(self.events)
            and self.events[self._cursor].at_s <= now_s
        ):
            self._cursor += 1
        return self.events[start : self._cursor]

    @classmethod
    def random(
        cls,
        seed: int,
        shard_ids: list[int],
        horizon_s: float = 60.0,
        kills: int = 2,
        drops: int = 2,
        delays: int = 1,
        max_concurrent_down: int = 1,
        outage_s: float = 5.0,
    ) -> "FaultSchedule":
        """Seeded random schedule: same seed, same faults, every run.

        Each kill is paired with a revive ``outage_s`` later, and kills
        are spread so at most ``max_concurrent_down`` shards are ever
        down at once — chaos suites pick ``max_concurrent_down`` below
        the store's quorum slack so every publish must still succeed,
        turning "no acked loss" into an assertable invariant.

        Parameters
        ----------
        seed : int
            Generator seed; the only source of randomness.
        shard_ids : list of int
            Shards eligible for faults.
        horizon_s : float, optional
            Events land in ``[0, horizon_s)``.
        kills : int, optional
            Kill/revive pairs to schedule.
        drops : int, optional
            ``drop_publish`` events to schedule.
        delays : int, optional
            ``delay`` events (each paired with a reset to 1.0).
        max_concurrent_down : int, optional
            Upper bound on simultaneously-down shards.
        outage_s : float, optional
            Kill-to-revive gap.
        """
        if not shard_ids:
            raise ValueError("need at least one shard id")
        if max_concurrent_down < 1:
            raise ValueError("max_concurrent_down must be >= 1")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        # Kills start on a per-lane cadence: lane k's outages are disjoint
        # in time, and with `max_concurrent_down` lanes no more than that
        # many shards are down together.
        lane_span = outage_s * 2.0
        for i in range(kills):
            cycle = i // max_concurrent_down
            base = cycle * lane_span
            if base + outage_s >= horizon_s:
                break
            start = base + float(rng.uniform(0.0, outage_s))
            sid = int(shard_ids[int(rng.integers(len(shard_ids)))])
            events.append(FaultEvent(start, "kill", sid))
            events.append(
                FaultEvent(min(start + outage_s, horizon_s), "revive", sid)
            )
        for _ in range(drops):
            at = float(rng.uniform(0.0, horizon_s))
            sid = int(shard_ids[int(rng.integers(len(shard_ids)))])
            events.append(FaultEvent(at, "drop_publish", sid))
        for _ in range(delays):
            at = float(rng.uniform(0.0, horizon_s * 0.8))
            factor = float(rng.uniform(1.5, 4.0))
            events.append(FaultEvent(at, "delay", factor=factor))
            events.append(
                FaultEvent(
                    min(at + outage_s, horizon_s), "delay", factor=1.0
                )
            )
        schedule = cls(events)
        schedule._enforce_lanes(max_concurrent_down)
        return schedule

    def _enforce_lanes(self, max_concurrent_down: int) -> None:
        """Drop kill/revive pairs that would exceed the concurrency bound
        or double-kill an already-down shard (random draws can collide)."""
        down: set[int] = set()
        dropped: set[int] = set()
        kept: list[FaultEvent] = []
        for i, event in enumerate(self.events):
            if event.kind == "kill":
                sid = event.shard_id
                if sid in down or len(down) >= max_concurrent_down:
                    dropped.add(i)
                    # also drop this kill's paired revive (the next revive
                    # of the same shard while it isn't actually down)
                    for j in range(i + 1, len(self.events)):
                        later = self.events[j]
                        if (
                            later.kind == "revive"
                            and later.shard_id == sid
                            and j not in dropped
                        ):
                            dropped.add(j)
                            break
                    continue
                down.add(sid)
                kept.append(event)
            elif event.kind == "revive":
                if i in dropped:
                    continue
                if event.shard_id not in down:
                    dropped.add(i)
                    continue
                down.discard(event.shard_id)
                kept.append(event)
            else:
                kept.append(event)
        self.events = kept
        self._cursor = 0


class FaultPlane:
    """Binds a :class:`FaultSchedule` to one store and one clock.

    Parameters
    ----------
    store : repro.cluster.shardstore.store.ShardedParameterStore
        The store faults act on.
    schedule : FaultSchedule
        What to inject, and when (simulated seconds).
    clock : repro.obs.clock.SimClock, optional
        When given, :meth:`poll` reads the current time from it;
        otherwise drive time explicitly via :meth:`advance_to`.
    """

    def __init__(self, store, schedule: FaultSchedule, clock=None) -> None:
        self.store = store
        self.schedule = schedule
        self.clock = clock
        self.delay_factor = 1.0
        self.now_s = 0.0
        self.injected: list[FaultEvent] = []
        self.skipped: list[FaultEvent] = []
        self._slow: dict[int, float] = {}
        self._partitioned_until: dict[int, float] = {}

    def slow_factor(self, shard_id: int) -> float:
        """Per-shard latency multiplier from active ``slow_node`` faults."""
        return self._slow.get(int(shard_id), 1.0)

    def is_partitioned(self, shard_id: int) -> bool:
        """Whether a ``partition`` fault is still active for this shard."""
        return self.now_s < self._partitioned_until.get(int(shard_id), 0.0)

    def poll(self) -> list[FaultEvent]:
        """Inject everything due at the bound clock's current time."""
        if self.clock is None:
            raise ValueError("no clock bound: use advance_to(now_s)")
        return self.advance_to(self.clock.now())

    def advance_to(self, now_s: float) -> list[FaultEvent]:
        """Inject every event with ``at_s <= now_s``; returns them.

        Events apply in timestamp order, so a kill/revive pair inside one
        poll interval still round-trips through the store (the publishes
        in between were in the past either way).
        """
        self.now_s = max(self.now_s, float(now_s))
        fired = self.schedule.due(now_s)
        for event in fired:
            self._inject(event)
        return fired

    def _inject(self, event: FaultEvent) -> None:
        if event.kind == "kill":
            # Tolerant dispatch: overlapping schedules (e.g. a flap over
            # an already-killed shard) skip rather than raise, and the
            # skip is recorded so tests can assert on it.
            if event.shard_id in self.store.down_shard_ids:
                self.skipped.append(event)
                return
            self.store.kill_shard(event.shard_id)
        elif event.kind == "revive":
            if event.shard_id not in self.store.down_shard_ids:
                self.skipped.append(event)
                return
            self.store.revive_shard(event.shard_id)
        elif event.kind == "drop_publish":
            self.store.arm_publish_drop(event.shard_id)
        elif event.kind == "slow_node":
            if event.factor == 1.0:
                self._slow.pop(int(event.shard_id), None)
            else:
                self._slow[int(event.shard_id)] = float(event.factor)
        elif event.kind == "partition":
            until = float(event.at_s) + float(event.duration_s)
            sid = int(event.shard_id)
            self._partitioned_until[sid] = max(
                self._partitioned_until.get(sid, 0.0), until
            )
        else:
            self.delay_factor = float(event.factor)
        self.injected.append(event)
        if _REG.enabled:
            _INJECTED.inc()
            _flight_recorder().record(
                "cluster.faults",
                event.kind,
                f"{event.kind} at t={event.at_s:.3f}s"
                + (
                    f" shard={event.shard_id}"
                    if event.shard_id is not None
                    else f" factor={event.factor:.2f}"
                ),
                at_s=event.at_s,
            )
