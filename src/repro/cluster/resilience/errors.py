"""Typed failures of the resilient client plane.

Every failure a consumer can see is a named class with structured
attributes — never a leaked internal (`KeyError`, raw `RuntimeError`) and
never a silent empty result.  :class:`DeadlineExceeded` ends a request
whose latency budget ran out mid-protocol; :class:`DegradedReadError`
reports a read that could not be served *provably fresh* (not enough
live replica owners to intersect every write quorum) when degraded
serving is disabled, carrying enough context to decide whether a stale
answer is acceptable.
"""

from __future__ import annotations

__all__ = ["ResilienceError", "DeadlineExceeded", "DegradedReadError"]


class ResilienceError(RuntimeError):
    """Base class for resilient-client-plane failures."""


class DeadlineExceeded(ResilienceError):
    """A request's latency budget ran out before the protocol finished.

    Attributes
    ----------
    label : str
        Which hop/stage exhausted the budget.
    total_s : float
        The full per-request budget.
    spent_s : float
        Seconds already consumed when the budget expired.
    """

    def __init__(self, label: str, total_s: float, spent_s: float) -> None:
        super().__init__(
            f"deadline of {total_s:.6f}s exceeded at {label!r} "
            f"({spent_s:.6f}s spent)"
        )
        self.label = label
        self.total_s = total_s
        self.spent_s = spent_s


class DegradedReadError(ResilienceError):
    """A read could not be served provably fresh inside its deadline.

    Raised when too many replica owners are unreachable for the answered
    set to intersect every write quorum (so an acknowledged publish could
    be missing), and the caller did not opt into degraded serving.

    Attributes
    ----------
    tables : list of str
        Tables the failed read covered.
    synced_version : int
        The caller's sync point — rows served from a degraded cache are
        never staler than this.
    current_version : int
        The store version at failure time; ``current_version -
        synced_version`` bounds the staleness in publish events.
    reason : str
        Machine-readable cause (``"coverage"``, ``"deadline"``, ...).
    """

    def __init__(
        self,
        tables: list[str],
        synced_version: int,
        current_version: int,
        reason: str = "coverage",
    ) -> None:
        lag = current_version - synced_version
        super().__init__(
            f"read of {tables!r} cannot be served fresh ({reason}); "
            f"client sync point v{synced_version} is {lag} publish(es) "
            f"behind v{current_version}"
        )
        self.tables = list(tables)
        self.synced_version = synced_version
        self.current_version = current_version
        self.reason = reason

    @property
    def staleness_versions(self) -> int:
        """Publish events between the sync point and the store version."""
        return self.current_version - self.synced_version
