"""Hedged reads: a backup pull when the primary exceeds a latency quantile.

The tail-latency killer from "The Tail at Scale": instead of waiting out
a slow primary, launch one backup read against the next replica owner
once the primary has been in flight longer than a learned quantile of
healthy latencies, and take whichever answer lands first.  The quantile
comes from the client's :class:`~repro.cluster.resilience.health.\
HealthTracker`, so hedging is self-calibrating — it never fires on a
cold client (the quantile is ``inf`` until real traffic is observed) and
adapts as the fleet's latency distribution moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from .health import HealthTracker

__all__ = ["HedgedRead"]


@dataclass(frozen=True)
class HedgedRead:
    """Policy for when to launch a backup read.

    Parameters
    ----------
    quantile : float, optional
        Healthy-latency quantile the primary must exceed before the
        hedge fires (0.95 hedges ~5% of requests in steady state).
    min_delay_s : float, optional
        Floor under the hedge delay, so a very tight latency
        distribution cannot make every request hedge instantly.
    """

    quantile: float = 0.95
    min_delay_s: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.min_delay_s < 0.0:
            raise ValueError("min_delay_s cannot be negative")

    def hedge_delay_s(self, health: HealthTracker) -> float:
        """How long to wait on the primary before hedging.

        ``inf`` while the tracker has no successful-latency history —
        hedging only starts once there is a distribution to be an
        outlier of.
        """
        return max(self.min_delay_s, health.latency_quantile(self.quantile))

    def should_hedge(self, health: HealthTracker, in_flight_s: float) -> bool:
        """Whether a primary already ``in_flight_s`` deep warrants a hedge."""
        return in_flight_s > self.hedge_delay_s(health)
