"""Per-replica circuit breakers on the simulated clock.

A :class:`CircuitBreaker` guards one shard replica with the classic
three-state machine::

        failure rate over the last `window`
        outcomes >= `failure_rate`
    CLOSED ----------------------------> OPEN
      ^                                   |
      | `close_after` probe               | `cooldown_s` elapses on the
      | successes                         | sim clock (lazy transition,
      |                                   v timestamped at the boundary)
      +------------- probe ---------- HALF_OPEN
                     failure  ----------> OPEN (cooldown restarts)

Everything is driven by explicit ``now_s`` arguments (simulated seconds,
never wall time), and every transition is recorded as ``(at_s, from,
to)`` in :attr:`CircuitBreaker.transitions` — the chaos suites replay a
schedule in two processes and require the transition logs to be
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for one :class:`CircuitBreaker`.

    Parameters
    ----------
    window : int, optional
        Recent outcomes considered for the failure rate.
    min_samples : int, optional
        Outcomes required before the rate can trip the breaker.
    failure_rate : float, optional
        Failure fraction at or above which the breaker opens.
    cooldown_s : float, optional
        Simulated seconds an open breaker waits before probing.
    half_open_probes : int, optional
        Concurrent trial requests admitted while half-open.
    close_after : int, optional
        Probe successes required to close again.
    """

    window: int = 8
    min_samples: int = 3
    failure_rate: float = 0.5
    cooldown_s: float = 1.0
    half_open_probes: int = 1
    close_after: int = 1

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if self.cooldown_s <= 0.0:
            raise ValueError("cooldown_s must be positive")
        if self.half_open_probes < 1 or self.close_after < 1:
            raise ValueError("half_open_probes and close_after must be >= 1")


class CircuitBreaker:
    """Closed/open/half-open breaker for one shard replica.

    Parameters
    ----------
    config : BreakerConfig, optional
        Thresholds; defaults are deliberately twitchy (small window)
        because one modelled RPC stands for a whole batched round trip.

    Notes
    -----
    The open -> half-open transition is *lazy*: it materializes when any
    method first observes a ``now_s`` past the cooldown boundary, but it
    is timestamped at the boundary itself (``opened_at + cooldown_s``),
    so the transition log is independent of the caller's polling times.
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._state = CLOSED
        self._outcomes: list[bool] = []
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        self.transitions: list[tuple[float, str, str]] = []

    # ----------------------------------------------------------------- state
    def state(self, now_s: float) -> str:
        """Current state at simulated time ``now_s``."""
        self._tick(now_s)
        return self._state

    def _tick(self, now_s: float) -> None:
        boundary = self._opened_at + self.config.cooldown_s
        if self._state == OPEN and now_s >= boundary:
            self._transition(boundary, HALF_OPEN)
            self._probes_in_flight = 0
            self._probe_successes = 0

    def _transition(self, at_s: float, new_state: str) -> None:
        self.transitions.append((float(at_s), self._state, new_state))
        self._state = new_state

    # ------------------------------------------------------------- decisions
    def allow(self, now_s: float) -> bool:
        """Whether a request may be sent to this replica at ``now_s``.

        Closed admits everything; open admits nothing; half-open admits
        up to ``half_open_probes`` trial requests (each ``allow`` that
        returns True claims a probe slot until its outcome is recorded).
        """
        self._tick(now_s)
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            return False
        if self._probes_in_flight < self.config.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self, now_s: float) -> None:
        """Fold a successful attempt outcome in at time ``now_s``."""
        self._tick(now_s)
        if self._state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.close_after:
                self._transition(now_s, CLOSED)
                self._outcomes = []
            return
        if self._state == CLOSED:
            self._push(True, now_s)

    def record_failure(self, now_s: float) -> None:
        """Fold a failed attempt outcome in at time ``now_s``."""
        self._tick(now_s)
        if self._state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._transition(now_s, OPEN)
            self._opened_at = now_s
            return
        if self._state == CLOSED:
            self._push(False, now_s)

    def _push(self, ok: bool, now_s: float) -> None:
        self._outcomes.append(ok)
        if len(self._outcomes) > self.config.window:
            del self._outcomes[0]
        n = len(self._outcomes)
        failures = n - sum(self._outcomes)
        if n >= self.config.min_samples and (
            failures / n >= self.config.failure_rate
        ):
            self._transition(now_s, OPEN)
            self._opened_at = now_s
            self._outcomes = []
