"""Capped exponential backoff with seeded, deterministic jitter.

Retry storms synchronize without jitter, but unseeded jitter would make
chaos replays irreproducible (and trip the ``no-unseeded-rng`` lint
rule).  :class:`RetryPolicy` squares the circle by deriving its jitter
from :func:`repro.core.kernels.hash_combine` over ``(key, attempt,
seed)`` — every (client, attempt) pair gets a different backoff, yet the
same seed replays the same schedule bit-for-bit in every process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.kernels import hash_combine

__all__ = ["RetryPolicy"]

_TWO64 = float(2**64)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped-exponential-backoff retry schedule.

    Parameters
    ----------
    max_attempts : int, optional
        Attempts per operation, first try included.
    base_backoff_s : float, optional
        Backoff before the second attempt (simulated seconds).
    multiplier : float, optional
        Exponential growth factor per further attempt.
    max_backoff_s : float, optional
        Cap on any single backoff.
    jitter_frac : float, optional
        Fraction of the backoff randomized away: the wait lands in
        ``[backoff * (1 - jitter_frac), backoff]``.
    seed : int, optional
        Jitter stream selector; same seed, same waits, every process.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter_frac: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ValueError("backoff seconds cannot be negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def jitter_unit(self, attempt: int, key: int = 0) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for ``(key, attempt)``."""
        mixed = hash_combine(
            np.asarray([key], dtype=np.int64), np.uint64(attempt), self.seed
        )
        return float(mixed[0]) / _TWO64

    def backoff_s(self, attempt: int, key: int = 0) -> float:
        """Wait before retry number ``attempt`` (1 = after the first try).

        Capped exponential with deterministic jitter: ``base *
        multiplier**(attempt-1)``, clamped to ``max_backoff_s``, then
        shrunk by up to ``jitter_frac`` using the seeded draw — never an
        unseeded RNG.
        """
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        raw = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return raw * (1.0 - self.jitter_frac * self.jitter_unit(attempt, key))
