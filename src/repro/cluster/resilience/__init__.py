"""Client-plane resilience: deadlines, retries, hedging, breakers, degraded reads.

The shard store's server plane already survives faults (replication,
quorums, repair); this package makes the *client* survive them without
surfacing every hiccup to the caller:

* :class:`DeadlineBudget` — per-request latency budget, decremented
  across hops on the simulated clock;
* :class:`RetryPolicy` — capped exponential backoff with seeded,
  replayable jitter;
* :class:`CircuitBreaker` — per-replica closed/open/half-open machine
  with byte-identical transition logs across processes;
* :class:`HealthTracker` — EWMA latency and error rate per replica,
  feeding breaker decisions and replica-selection order;
* :class:`HedgedRead` — backup pull against the next replica owner when
  the primary exceeds a learned latency quantile;
* :class:`DegradedReadMode` — bounded-staleness serving from the
  client's last-synced rows when no replica answers in time, with
  explicit per-row staleness accounting instead of a silent lie.

:class:`ResiliencePolicy` bundles them behind one optional argument on
:class:`~repro.cluster.shardstore.client.ShardClient`.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerConfig, CircuitBreaker
from .budget import DeadlineBudget
from .degraded import DegradedReadMode, StaleRead
from .errors import DeadlineExceeded, DegradedReadError, ResilienceError
from .health import HealthTracker
from .hedge import HedgedRead
from .policy import ResiliencePolicy
from .retry import RetryPolicy

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "DeadlineBudget",
    "DeadlineExceeded",
    "DegradedReadError",
    "DegradedReadMode",
    "HealthTracker",
    "HedgedRead",
    "ResilienceError",
    "ResiliencePolicy",
    "RetryPolicy",
    "StaleRead",
]
