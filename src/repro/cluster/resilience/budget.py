"""Per-request deadline budgets on the simulated clock.

A :class:`DeadlineBudget` is created once per client operation and
decremented across hops: every modelled RPC, backoff wait, or hedge delay
:meth:`spends <DeadlineBudget.spend>` its simulated seconds, and any hop
can ask what is :meth:`remaining` (to cap an attempt timeout) or
:meth:`require` headroom (raising :class:`~repro.cluster.resilience.\
errors.DeadlineExceeded` when the budget is gone).  All arithmetic is on
modelled time, so the same schedule produces the same deadline decisions
in every process.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import DeadlineExceeded

__all__ = ["DeadlineBudget"]


@dataclass
class DeadlineBudget:
    """Latency budget for one request, decremented across hops.

    Parameters
    ----------
    total_s : float
        The full budget in (simulated) seconds; must be positive.
    spent_s : float, optional
        Seconds already consumed (resuming a partially-spent budget).
    """

    total_s: float
    spent_s: float = 0.0

    def __post_init__(self) -> None:
        if self.total_s <= 0.0:
            raise ValueError("deadline budget must be positive")
        if self.spent_s < 0.0:
            raise ValueError("spent_s cannot be negative")

    def remaining(self) -> float:
        """Seconds left before the deadline (never negative)."""
        return max(0.0, self.total_s - self.spent_s)

    @property
    def expired(self) -> bool:
        return self.spent_s >= self.total_s

    def spend(self, seconds: float) -> float:
        """Consume ``seconds`` of budget; returns what was actually spent.

        Spending is clamped at the deadline: a hop that would overrun
        spends only the remaining headroom, and the budget reads as
        :attr:`expired` afterwards — the caller decides whether that
        means fail, degrade, or return partial results.
        """
        if seconds < 0.0:
            raise ValueError("cannot spend negative seconds")
        charged = min(seconds, self.remaining())
        self.spent_s += charged
        return charged

    def require(self, label: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is exhausted."""
        if self.expired:
            raise DeadlineExceeded(label, self.total_s, self.spent_s)
