"""One knob object wiring the whole resilience plane together.

:class:`ResiliencePolicy` bundles the pieces a resilient client needs —
deadline, retry schedule, hedging trigger, per-replica breakers, health
tracker, degraded-read cache, and the simulated clock they all share —
so call sites take a single optional argument instead of seven.  The
policy owns per-shard :class:`~repro.cluster.resilience.breaker.\
CircuitBreaker` instances (created on first contact, so breaker state
survives across pulls) and exposes the aggregate signals the obs plane
gauges: how many breakers are currently open, how many transitions the
fleet has logged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...obs.clock import SimClock
from .breaker import OPEN, BreakerConfig, CircuitBreaker
from .degraded import DegradedReadMode
from .health import HealthTracker
from .hedge import HedgedRead
from .retry import RetryPolicy

__all__ = ["ResiliencePolicy"]


@dataclass
class ResiliencePolicy:
    """Client-side resilience configuration and shared runtime state.

    Parameters
    ----------
    deadline_s : float, optional
        Total simulated-latency budget per pull, all attempts included.
    attempt_timeout_s : float, optional
        Cap on any single modelled RPC attempt.
    retry : RetryPolicy, optional
        Backoff schedule between pull rounds.
    hedge : HedgedRead, optional
        Backup-read trigger policy.
    breaker : BreakerConfig, optional
        Thresholds applied to every per-shard breaker.
    health : HealthTracker, optional
        Shared latency/error signals; created fresh when omitted.
    degraded : DegradedReadMode or None, optional
        Last-synced row cache for degraded serving.  ``None`` disables
        degraded mode: exhausting the replicas raises instead.
    clock : SimClock, optional
        The simulated timeline everything is stamped against.
    on_wait : callable, optional
        ``on_wait(now_s)`` hook invoked after each retry backoff — wire
        it to ``FaultPlane.advance_to`` so scheduled faults heal (or
        land) while the client is waiting, exactly as they would in
        wall-clock time.
    """

    deadline_s: float = 10.0
    attempt_timeout_s: float = 2.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgedRead = field(default_factory=HedgedRead)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    health: HealthTracker = field(default_factory=HealthTracker)
    degraded: DegradedReadMode | None = field(default_factory=DegradedReadMode)
    clock: SimClock = field(default_factory=SimClock)
    on_wait: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")
        if self.attempt_timeout_s <= 0.0:
            raise ValueError("attempt_timeout_s must be positive")
        self._breakers: dict[int, CircuitBreaker] = {}

    def breaker_for(self, shard_id: int) -> CircuitBreaker:
        """The (lazily created) breaker guarding one shard replica."""
        shard_id = int(shard_id)
        got = self._breakers.get(shard_id)
        if got is None:
            got = CircuitBreaker(self.breaker)
            self._breakers[shard_id] = got
        return got

    def open_breakers(self, now_s: float) -> int:
        """How many per-shard breakers are open at simulated ``now_s``."""
        return sum(
            1 for b in self._breakers.values() if b.state(now_s) == OPEN
        )

    def breaker_transitions(self) -> list[tuple[int, float, str, str]]:
        """All transitions fleet-wide as ``(shard, at_s, from, to)``, sorted.

        Sorted by ``(at_s, shard)`` — a stable, process-independent order
        the chaos suites compare byte-for-byte across replays.
        """
        rows = [
            (sid, at, frm, to)
            for sid, brk in self._breakers.items()
            for (at, frm, to) in brk.transitions
        ]
        return sorted(rows, key=lambda r: (r[1], r[0]))

    def wait(self, seconds: float) -> float:
        """Advance the shared clock and fire :attr:`on_wait`; returns now."""
        now = self.clock.advance(seconds)
        if self.on_wait is not None:
            self.on_wait(now)
        return now
