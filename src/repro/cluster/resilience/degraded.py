"""Bounded-staleness degraded serving from the client's last-synced rows.

When no replica set can answer a pull inside its deadline, failing the
request is not the only option: the client has every row it ever synced,
exact as of its own sync point.  :class:`DegradedReadMode` maintains that
cache — per table, ids + payloads + the store version each row was last
written at — and serves it as a :class:`StaleRead` that is *explicit*
about its staleness: a ``degraded=True`` flag, the sync point the rows
are exact as of, and per-row version lag.  The staleness bound is the
contract: a degraded read never serves a row staler than the client's
last successful sync, and never pretends to be fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["StaleRead", "DegradedReadMode"]


@dataclass
class StaleRead:
    """One table's rows served from the degraded cache.

    Attributes
    ----------
    table : str
        Table the rows belong to.
    ids : numpy.ndarray of int64
        Cached row ids, ascending.
    rows : numpy.ndarray
        Their payloads as of :attr:`as_of_version`.
    row_versions : numpy.ndarray of int64
        Store version each row was last written at (all at or below
        :attr:`as_of_version` — the staleness bound).
    as_of_version : int
        The client sync point the cache is exact as of.
    current_version : int
        Store version at serve time, when known (else equals
        ``as_of_version``).
    degraded : bool
        Always True; consumers must branch on it explicitly.
    """

    table: str
    ids: np.ndarray
    rows: np.ndarray
    row_versions: np.ndarray
    as_of_version: int
    current_version: int
    degraded: bool = True

    @property
    def staleness_versions(self) -> int:
        """Publish events this read may be behind (the staleness bound)."""
        return max(0, self.current_version - self.as_of_version)

    @property
    def row_staleness(self) -> np.ndarray:
        """Per-row publish lag: ``current_version - row_versions``."""
        return self.current_version - self.row_versions


@dataclass
class DegradedReadMode:
    """Client-side last-synced row cache behind degraded serving.

    Updated on every *successful* pull (and only then — a degraded pull
    must not advance the cache, or the staleness accounting would lie),
    and served when the replica set cannot answer inside the deadline.
    """

    _tables: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )
    as_of_version: int = 0

    @property
    def tables(self) -> list[str]:
        return sorted(self._tables)

    def rows_cached(self, table: str) -> int:
        entry = self._tables.get(table)
        return 0 if entry is None else int(entry[0].size)

    def update(
        self,
        table: str,
        ids: np.ndarray,
        rows: np.ndarray,
        versions: np.ndarray,
        synced_version: int,
    ) -> None:
        """Fold one successful pull's delta into the cache.

        Parameters
        ----------
        table : str
            Table the delta belongs to.
        ids, rows, versions : numpy.ndarray
            The delta rows and the store version each was written at.
        synced_version : int
            The client's new sync point after this pull.
        """
        self.as_of_version = max(self.as_of_version, int(synced_version))
        ids = np.asarray(ids, dtype=np.int64)
        versions = np.asarray(versions, dtype=np.int64)
        if ids.size == 0:
            if table not in self._tables:
                self._tables[table] = (
                    ids,
                    np.asarray(rows)[:0],
                    versions,
                )
            return
        held = self._tables.get(table)
        if held is None:
            order = np.argsort(ids)
            self._tables[table] = (
                ids[order], np.asarray(rows)[order], versions[order]
            )
            return
        # Merge keep-freshest-per-id: same reconcile idiom as the store's
        # replica merge, so repeated application of a delta is idempotent.
        all_ids = np.concatenate((held[0], ids))
        all_rows = np.concatenate((held[1], np.asarray(rows)), axis=0)
        all_versions = np.concatenate((held[2], versions))
        order = np.lexsort((all_versions, all_ids))
        all_ids = all_ids[order]
        last = np.r_[all_ids[1:] != all_ids[:-1], True]
        self._tables[table] = (
            all_ids[last], all_rows[order][last], all_versions[order][last]
        )

    def serve(self, table: str, current_version: int | None = None) -> StaleRead:
        """Serve one table's cached rows with explicit staleness accounting.

        Parameters
        ----------
        table : str
            Table to serve; an unseen table serves an empty (but still
            explicitly degraded) result.
        current_version : int, optional
            The store version at serve time, for the staleness bound;
            defaults to the cache's own sync point.
        """
        entry = self._tables.get(table)
        if entry is None:
            entry = (
                np.empty(0, dtype=np.int64),
                np.zeros((0, 1), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        current = (
            self.as_of_version if current_version is None else int(current_version)
        )
        return StaleRead(
            table=table,
            ids=entry[0],
            rows=entry[1],
            row_versions=entry[2],
            as_of_version=self.as_of_version,
            current_version=current,
        )
