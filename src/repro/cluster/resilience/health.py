"""Per-replica health tracking: EWMA latency, error rate, quantiles.

One :class:`HealthTracker` per client observes every modelled RPC attempt
(shard, latency, outcome) and distills three signals the rest of the
plane consumes:

* **EWMA latency** and **EWMA error rate** per shard — replica selection
  orders backup candidates by them (:meth:`HealthTracker.replica_order`);
* a **global success-latency quantile** over a bounded window of recent
  attempts — the hedging trigger (:class:`~repro.cluster.resilience.\
hedge.HedgedRead` fires a backup read when the primary exceeds it).

All state is plain floats updated in a fixed order, so two processes
feeding the same observations read byte-identical signals back.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HealthTracker"]


class HealthTracker:
    """EWMA latency + error rate per shard replica, plus a global quantile.

    Parameters
    ----------
    alpha : float, optional
        EWMA smoothing factor in ``(0, 1]``; higher reacts faster.
    window : int, optional
        Recent successful attempt latencies kept for quantile queries.
    """

    def __init__(self, alpha: float = 0.25, window: int = 256) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.alpha = alpha
        self.window = window
        self._latency: dict[int, float] = {}
        self._error: dict[int, float] = {}
        self._observations: dict[int, int] = {}
        self._recent: list[float] = []

    def record(
        self,
        shard_id: int,
        latency_s: float,
        ok: bool,
        hedged: bool = False,
    ) -> None:
        """Fold one RPC attempt into the shard's health signals.

        Failed attempts update the error rate and latency both — a
        timeout *is* a latency datapoint — but only successes feed the
        global quantile window (hedging triggers off the healthy
        distribution, not off the failures it exists to route around).
        Attempts that crossed the hedge threshold (``hedged=True``) also
        stay out of the window: they still sharpen the shard's own EWMA,
        but letting a persistently slow replica's latencies into the
        trigger window would ratchet the hedge delay up to the very
        slowness hedging exists to mask, eroding the trigger.
        """
        shard_id = int(shard_id)
        a = self.alpha
        prev = self._latency.get(shard_id)
        self._latency[shard_id] = (
            latency_s if prev is None else (1.0 - a) * prev + a * latency_s
        )
        err = self._error.get(shard_id, 0.0)
        self._error[shard_id] = (1.0 - a) * err + (a if not ok else 0.0)
        self._observations[shard_id] = self._observations.get(shard_id, 0) + 1
        if ok and not hedged:
            self._recent.append(float(latency_s))
            if len(self._recent) > self.window:
                del self._recent[: len(self._recent) - self.window]

    def ewma_latency_s(self, shard_id: int) -> float:
        """Smoothed attempt latency for one shard (0.0 when unobserved)."""
        return self._latency.get(int(shard_id), 0.0)

    def error_rate(self, shard_id: int) -> float:
        """Smoothed failure fraction for one shard (0.0 when unobserved)."""
        return self._error.get(int(shard_id), 0.0)

    def observations(self, shard_id: int) -> int:
        """Attempts observed against one shard."""
        return self._observations.get(int(shard_id), 0)

    def latency_quantile(self, q: float) -> float:
        """Quantile of recent *successful* attempt latencies.

        Returns ``inf`` while the window is empty, which disables
        hedging until the tracker has seen real traffic — a cold client
        has no baseline to call a primary "slow" against.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._recent:
            return float("inf")
        samples = np.asarray(self._recent, dtype=np.float64)
        return float(np.quantile(samples, q))

    def replica_order(self, shard_ids: list[int]) -> list[int]:
        """Candidates ordered healthiest-first, deterministically.

        Sorts by (EWMA error rate, EWMA latency, shard id): the id
        tie-break pins the order bit-for-bit across processes even when
        two replicas are statistically identical (e.g. both unobserved).
        """
        return sorted(
            (int(s) for s in shard_ids),
            key=lambda s: (self.error_rate(s), self.ewma_latency_s(s), s),
        )
