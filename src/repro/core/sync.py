"""Sparse data-parallel LoRA synchronization (Algorithm 3, Section IV-E).

Each inference node (rank) trains its own LoRA replica on local traffic and
tracks the *support* of its updates — the set of (field, row) indices it
modified.  Every ``T_sync`` steps the ranks exchange supports, resolve write
conflicts with the deterministic rank-priority rule (highest rank id wins),
and broadcast the merged adapter state.  Between syncs replicas diverge —
that is the eventual-consistency trade-off Fig. 9 quantifies.

Supports are accumulated as per-step id arrays and consolidated with one
``np.unique`` at sync time; the gather / merge / apply pipeline runs on
whole (ids, rows) arrays via :meth:`LoRAAdapter.gather_rows` and
:meth:`LoRAAdapter.scatter_rows` — no per-support-id Python loop.  The
dict-based :func:`priority_merge` / :func:`average_merge` remain as the
reference (and public) formulation of the merge rule.

Communication cost is modelled with the tree-AllGather collective from
:mod:`repro.cluster.collectives`, which is what gives Fig. 19 its O(log N)
scaling.

When a :class:`repro.cluster.shardstore.ShardedParameterStore` is attached,
every sync round also publishes the merged adapter rows through a batched
:class:`ShardClient` — one version bump per round covering every field —
so replicas that join late (or external observers) can catch up with an
O(changed) ``pull_delta`` instead of a fresh all-to-all exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.collectives import CollectiveCostModel
from ..cluster.network import INFINIBAND_EDR, NetworkLink
from ..cluster.shardstore import ClientTransferReport, ShardClient, ShardedParameterStore
from .trainer import LoRATrainer

__all__ = [
    "SyncReport",
    "priority_merge",
    "average_merge",
    "priority_merge_rows",
    "average_merge_rows",
    "SparseLoRASynchronizer",
]


@dataclass
class SyncReport:
    """Outcome of one synchronization round."""

    round_id: int
    merged_rows: int
    bytes_exchanged: float
    allgather_seconds: float
    broadcast_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.allgather_seconds + self.broadcast_seconds


def priority_merge(
    per_rank_values: list[dict[int, np.ndarray]],
) -> dict[int, np.ndarray]:
    """Resolve index-level write conflicts by the max-rank rule.

    Args:
        per_rank_values: ``per_rank_values[r]`` maps a modified index to the
            value rank ``r`` holds for it.

    Returns:
        the merged index -> value map where index ``i`` takes the value from
        ``max{r | i in S_r}`` (Algorithm 3, line 11).
    """
    merged: dict[int, np.ndarray] = {}
    for values in per_rank_values:  # ascending rank order; later overwrites
        for idx, val in values.items():
            merged[idx] = val
    return merged


def average_merge(
    per_rank_values: list[dict[int, np.ndarray]],
) -> dict[int, np.ndarray]:
    """Ablation alternative: average conflicting writes instead of picking a
    winner.  Requires same-shaped values across ranks for a given index."""
    sums: dict[int, np.ndarray] = {}
    counts: dict[int, int] = {}
    for values in per_rank_values:
        for idx, val in values.items():
            if idx in sums and sums[idx].shape == val.shape:
                sums[idx] = sums[idx] + val
                counts[idx] += 1
            else:
                sums[idx] = val.copy()
                counts[idx] = 1
    return {idx: sums[idx] / counts[idx] for idx in sums}


def priority_merge_rows(
    per_rank: list[tuple[np.ndarray, np.ndarray]], width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`priority_merge`.

    Args:
        per_rank: ``(ids, rows)`` per rank in ascending rank order; all
            ``rows`` must already share ``width`` columns.
        width: row width (needed to shape the empty result).

    Returns:
        ``(merged_ids, merged_rows)`` with ids sorted ascending and each
        id's row taken from the highest rank that modified it.
    """
    if not per_rank or all(ids.size == 0 for ids, _ in per_rank):
        return np.empty(0, dtype=np.int64), np.empty((0, width))
    ids = np.concatenate([p[0] for p in per_rank])
    rows = np.concatenate([p[1] for p in per_rank], axis=0)
    ranks = np.concatenate(
        [np.full(p[0].size, r, dtype=np.int64) for r, p in enumerate(per_rank)]
    )
    order = np.lexsort((ranks, ids))
    sorted_ids = ids[order]
    # last entry of each id group = highest rank (ids unique within a rank)
    winner = np.r_[sorted_ids[1:] != sorted_ids[:-1], True]
    return sorted_ids[winner], rows[order][winner]


def average_merge_rows(
    per_rank: list[tuple[np.ndarray, np.ndarray]], width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Array form of :func:`average_merge` over width-aligned rows."""
    if not per_rank or all(ids.size == 0 for ids, _ in per_rank):
        return np.empty(0, dtype=np.int64), np.empty((0, width))
    ids = np.concatenate([p[0] for p in per_rank])
    rows = np.concatenate([p[1] for p in per_rank], axis=0)
    merged_ids, inverse, counts = np.unique(
        ids, return_inverse=True, return_counts=True
    )
    sums = np.zeros((merged_ids.size, width))
    np.add.at(sums, inverse, rows)
    return merged_ids, sums / counts[:, None]


class SparseLoRASynchronizer:
    """Coordinates LoRA replicas across inference nodes.

    Args:
        trainers: one :class:`LoRATrainer` per rank, *in rank order* (rank id
            = list position, which drives merge priority).
        sync_interval: steps between synchronization rounds (``T_sync``).
        link: intra-cluster fabric for the cost model.
        store: optional sharded parameter store; when given, each round's
            merged adapter rows are published through a batched client
            (tables ``lora_a/<field>``, one version per round).
    """

    def __init__(
        self,
        trainers: list[LoRATrainer],
        sync_interval: int = 64,
        link: NetworkLink = INFINIBAND_EDR,
        merge_policy: str = "priority",
        store: ShardedParameterStore | None = None,
    ) -> None:
        if not trainers:
            raise ValueError("need at least one rank")
        if sync_interval <= 0:
            raise ValueError("sync interval must be positive")
        if merge_policy not in ("priority", "average"):
            raise ValueError("merge_policy must be 'priority' or 'average'")
        self.merge_policy = merge_policy
        self.trainers = trainers
        self.sync_interval = sync_interval
        self.cost = CollectiveCostModel(link)
        self.num_fields = len(trainers[0].lora)
        # S_r per field: id-array chunks modified since the last sync,
        # consolidated with one np.unique at sync time.
        self._supports: list[list[list[np.ndarray]]] = [
            [[] for _ in range(self.num_fields)] for _ in trainers
        ]
        self.steps = 0
        self.rounds = 0
        self.reports: list[SyncReport] = []
        self.store_client = (
            ShardClient(store, link=link) if store is not None else None
        )
        self.publish_reports: list[ClientTransferReport] = []

    @property
    def num_ranks(self) -> int:
        return len(self.trainers)

    # -------------------------------------------------------------- training
    def local_step(self, rank: int, dense, sparse_ids, labels) -> float:
        """One local update on rank ``r``, tracking its support set."""
        trainer = self.trainers[rank]
        loss = trainer.train_on(dense, sparse_ids, labels)
        sparse_ids = np.asarray(sparse_ids)
        for f in range(self.num_fields):
            self._supports[rank][f].append(
                np.unique(sparse_ids[:, f]).astype(np.int64)
            )
        return loss

    def step_all(self, batches) -> list[float]:
        """Feed one batch per rank, then sync if the interval elapsed.

        Args:
            batches: sequence of (dense, sparse_ids, labels) per rank.
        """
        losses = [
            self.local_step(r, *batch) for r, batch in enumerate(batches)
        ]
        self.steps += 1
        if self.steps % self.sync_interval == 0:
            self.sync()
        return losses

    # ------------------------------------------------------------------ sync
    def _support_ids(self, rank: int, field: int) -> np.ndarray:
        """Consolidated support set S_r for one field (sorted, unique)."""
        chunks = self._supports[rank][field]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))

    def _gather_rank_rows(
        self, field: int, target_rank: int, support: list[list[np.ndarray]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Each rank's modified A rows for one field, padded to ``target_rank``."""
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for r, trainer in enumerate(self.trainers):
            adapter = trainer.lora[field]
            ids, rows = adapter.gather_rows(support[r][field])
            if rows.shape[1] != target_rank:
                padded = np.zeros((rows.shape[0], target_rank))
                width = min(rows.shape[1], target_rank)
                padded[:, :width] = rows[:, :width]
                rows = padded
            out.append((ids, rows))
        return out

    def sync(self) -> SyncReport:
        """One full Algorithm-3 round: gather, merge, broadcast."""
        self.rounds += 1
        merged_rows = 0
        bytes_per_rank = 0.0
        # Consolidate every rank's support chunks exactly once per round.
        support = [
            [self._support_ids(r, f) for f in range(self.num_fields)]
            for r in range(self.num_ranks)
        ]
        # Highest rank that performed any update wins the dense B factors
        # (B's "indices" are in every updating rank's support, so the
        # max-rank rule selects the top updater).
        top_rank = max(
            (
                r
                for r in range(self.num_ranks)
                if any(support[r][f].size for f in range(self.num_fields))
            ),
            default=None,
        )
        merge_fn = (
            priority_merge_rows
            if self.merge_policy == "priority"
            else average_merge_rows
        )
        for f in range(self.num_fields):
            target_rank = max(
                (t.lora[f].rank for t in self.trainers), default=1
            )
            per_rank = self._gather_rank_rows(f, target_rank, support)
            merged_ids, merged = merge_fn(per_rank, target_rank)
            merged_rows += merged_ids.size
            if self.store_client is not None and merged_ids.size:
                self.store_client.stage(f"lora_a/{f}", merged_ids, merged)
            row_bytes = target_rank * 8
            bytes_per_rank += sum(
                ids.size for ids, _ in per_rank
            ) * row_bytes / max(self.num_ranks, 1)
            for trainer in self.trainers:
                adapter = trainer.lora[f]
                if adapter.rank != target_rank:
                    adapter.resize_rank(target_rank)
                if top_rank is not None:
                    adapter.b = self.trainers[top_rank].lora[f].b.copy()
                adapter.scatter_rows(merged_ids, merged)
                trainer.hot_filter.mark(f, merged_ids)
        # The exchange is an aggregating tree: payload stays near the merged
        # size at every level because replicas touch overlapping hot ids.
        merged_bytes = bytes_per_rank * self.num_ranks
        allgather_s = self.cost.tree_merge(self.num_ranks, merged_bytes)
        broadcast_s = self.cost.broadcast_tree(self.num_ranks, merged_bytes)
        if self.store_client is not None:
            # One version bump covers every field's merged rows this round.
            self.publish_reports.append(self.store_client.flush())
        for r in range(self.num_ranks):
            for f in range(self.num_fields):
                self._supports[r][f].clear()
        report = SyncReport(
            round_id=self.rounds,
            merged_rows=merged_rows,
            bytes_exchanged=bytes_per_rank * self.num_ranks,
            allgather_seconds=allgather_s,
            broadcast_seconds=broadcast_s,
        )
        self.reports.append(report)
        return report

    # -------------------------------------------------------------- analysis
    def replica_divergence(self, field: int = 0) -> float:
        """Max pairwise Frobenius gap between replicas' applied updates.

        Zero right after a sync for the ids in the merged set; grows between
        syncs — the consistency metric behind Fig. 9.
        """
        if self.num_ranks < 2:
            return 0.0
        ids_arr = np.unique(
            np.concatenate(
                [t.lora[field].active_ids for t in self.trainers]
            )
        )
        if ids_arr.size == 0:
            return 0.0
        deltas = [t.lora[field].delta_rows(ids_arr) for t in self.trainers]
        worst = 0.0
        for i in range(len(deltas)):
            for j in range(i + 1, len(deltas)):
                worst = max(worst, float(np.linalg.norm(deltas[i] - deltas[j])))
        return worst
