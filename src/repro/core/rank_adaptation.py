"""Variance-aware dynamic rank adaptation (Section IV-C, and the Fig. 6
low-rank analysis).

The intrinsic dimensionality of embedding updates evolves during training, so
LiveUpdate periodically snapshots recent gradients, runs PCA/SVD, and picks
the smallest rank whose leading components capture an ``alpha`` fraction of
total variance (Eq. 2).  The per-interval ranks are then averaged (ceiling)
to smooth transient fluctuations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "cumulative_variance",
    "rank_for_variance",
    "lowrank_approximation",
    "approximation_error",
    "RankMonitor",
]


def _singular_values(grad_matrix: np.ndarray) -> np.ndarray:
    grad_matrix = np.asarray(grad_matrix, dtype=np.float64)
    if grad_matrix.ndim != 2:
        raise ValueError("gradient snapshot must be a 2-D matrix")
    if grad_matrix.shape[0] == 0:
        return np.zeros(0)
    return np.linalg.svd(grad_matrix, compute_uv=False)


def cumulative_variance(grad_matrix: np.ndarray) -> np.ndarray:
    """Cumulative fraction of variance captured by the top-k components.

    ``out[k-1] = sum_{i<=k} sigma_i^2 / sum_j sigma_j^2`` — exactly the
    curves plotted in Fig. 6.
    """
    s = _singular_values(grad_matrix)
    power = s ** 2
    total = power.sum()
    if total == 0:
        return np.ones_like(power)
    return np.cumsum(power) / total


def rank_for_variance(grad_matrix: np.ndarray, alpha: float = 0.8) -> int:
    """Smallest k whose top-k singular values hold >= alpha of the variance."""
    if not 0 < alpha <= 1:
        raise ValueError("alpha must be in (0, 1]")
    cum = cumulative_variance(grad_matrix)
    if cum.size == 0:
        return 1
    k = int(np.searchsorted(cum, alpha - 1e-12) + 1)
    return min(k, cum.size)


def lowrank_approximation(
    grad_matrix: np.ndarray, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """Best rank-k factors (Eckart-Young): returns (A, B) with G ~= A @ B."""
    grad_matrix = np.asarray(grad_matrix, dtype=np.float64)
    if rank <= 0:
        raise ValueError("rank must be positive")
    u, s, vt = np.linalg.svd(grad_matrix, full_matrices=False)
    k = min(rank, s.shape[0])
    return u[:, :k] * s[:k], vt[:k]


def approximation_error(grad_matrix: np.ndarray, rank: int) -> float:
    """Relative Frobenius error of the best rank-k approximation.

    By Eckart-Young this equals ``sqrt(sum_{i>k} sigma_i^2 / sum_i sigma_i^2)``
    — the theoretically-bounded accuracy loss the paper cites.
    """
    s = _singular_values(grad_matrix)
    power = s ** 2
    total = power.sum()
    if total == 0:
        return 0.0
    tail = power[rank:].sum()
    return float(np.sqrt(tail / total))


@dataclass
class RankMonitor:
    """Tracks per-interval optimal ranks and emits the smoothed global rank.

    Implements ``r = ceil(mean(r_t))`` over the observation window
    (Section IV-C), clamped to ``[min_rank, max_rank]``.

    Attributes:
        alpha: variance threshold (paper default 0.8; evaluated up to 0.95).
        window: number of recent observations to average.
        min_rank / max_rank: clamp bounds for the emitted rank.
    """

    alpha: float = 0.8
    window: int = 8
    min_rank: int = 1
    max_rank: int = 64
    _observed: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.min_rank < 1 or self.max_rank < self.min_rank:
            raise ValueError("invalid rank bounds")

    def observe(self, grad_matrix: np.ndarray) -> int:
        """Record one gradient snapshot; returns its instantaneous rank."""
        r_t = rank_for_variance(grad_matrix, self.alpha)
        self._observed.append(r_t)
        if len(self._observed) > self.window:
            del self._observed[: len(self._observed) - self.window]
        return r_t

    @property
    def num_observations(self) -> int:
        return len(self._observed)

    def recommended_rank(self, fallback: int = 8) -> int:
        """Smoothed rank ``ceil(mean(r_t))`` over the window."""
        if not self._observed:
            return int(np.clip(fallback, self.min_rank, self.max_rank))
        r = math.ceil(sum(self._observed) / len(self._observed))
        return int(np.clip(r, self.min_rank, self.max_rank))

    def reset(self) -> None:
        self._observed.clear()
