"""Hot Index Filter (Fig. 7, inference path step 2).

On every serving request, LiveUpdate must decide per sparse id whether the
LoRA adjustment applies: "hot" ids (recently updated by the online trainer)
are served ``W_base[i] + A[i] B``; cold ids take the plain base-table path.
The filter is a per-field membership table with optional time-based expiry
so entries fade once the trainer stops touching them.

Storage is array-native either way; the layout depends on whether the id
universe is known:

* *dense* (``num_rows`` given, the production serving configuration): one
  ``float64`` last-mark timestamp per table row, so ``mark`` is a scatter
  and ``is_hot`` is a gather + compare — O(batch) with no search;
* *sparse* (unbounded ids): a sorted ``int64`` id array plus parallel
  timestamps, with batched sorted-merge upserts and one
  ``np.searchsorted`` per membership batch.

Neither path runs a per-id Python loop on the serving path.  The dense
layout costs 8 bytes per table row at the default ``float64`` stamp
dtype — small next to the embedding rows it annotates (a d=32 float64
row is 256 bytes).  The serving lane halves that with
``stamp_dtype=np.float32`` (4 bytes/row), which together with the int32
``IdSlotTable`` slot lane keeps the serving metadata under the paper's
<2% row-memory budget; float32 stamps resolve ~1e-5 relative to the
clock value, plenty for the sim clock's seconds-from-zero timeline (do
not feed epoch seconds through a float32 stamp lane).
"""

from __future__ import annotations

import numpy as np

from .kernels import sorted_find

__all__ = ["HotIndexFilter"]


class _FieldTable:
    """Sorted ids + last-mark timestamps for one sparse field."""

    __slots__ = ("ids", "stamps", "stamp_dtype")

    def __init__(self, stamp_dtype=np.float64) -> None:
        self.stamp_dtype = np.dtype(stamp_dtype)
        self.ids = np.empty(0, dtype=np.int64)
        self.stamps = np.empty(0, dtype=self.stamp_dtype)

    def __len__(self) -> int:
        return int(self.ids.size)

    @property
    def nbytes(self) -> int:
        return int(self.ids.nbytes + self.stamps.nbytes)

    def upsert(self, ids: np.ndarray, stamp: float) -> None:
        """Set the timestamp of every id in ``ids`` to ``stamp``."""
        ids = np.unique(ids)
        if ids.size == 0:
            return
        if self.ids.size == 0:
            self.ids = ids.copy()
            self.stamps = np.full(ids.size, stamp, dtype=self.stamp_dtype)
            return
        present, pos = sorted_find(self.ids, ids)
        self.stamps[pos[present]] = stamp
        fresh = ids[~present]
        if fresh.size:
            insert_at = np.searchsorted(self.ids, fresh)
            self.ids = np.insert(self.ids, insert_at, fresh)
            self.stamps = np.insert(self.stamps, insert_at, stamp)

    def membership(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(found mask, timestamps)`` per query id (-inf where absent)."""
        stamps = np.full(ids.shape, -np.inf, dtype=self.stamp_dtype)
        found, pos = sorted_find(self.ids, ids)
        stamps[found] = self.stamps[pos[found]]
        return found, stamps

    def drop_older_than(self, horizon: float) -> int:
        keep = self.stamps >= horizon
        dropped = int(keep.size - keep.sum())
        if dropped:
            self.ids = self.ids[keep]
            self.stamps = self.stamps[keep]
        return dropped

    def clear(self) -> None:
        self.ids = np.empty(0, dtype=np.int64)
        self.stamps = np.empty(0, dtype=self.stamp_dtype)


class _DenseFieldTable:
    """Timestamp per table row; for fields with a known id universe."""

    __slots__ = ("stamps",)

    def __init__(self, num_rows: int, stamp_dtype=np.float64) -> None:
        self.stamps = np.full(num_rows, -np.inf, dtype=np.dtype(stamp_dtype))

    def __len__(self) -> int:
        return int((self.stamps > -np.inf).sum())

    @property
    def nbytes(self) -> int:
        return int(self.stamps.nbytes)

    def upsert(self, ids: np.ndarray, stamp: float) -> None:
        ids = ids[(ids >= 0) & (ids < self.stamps.size)]
        self.stamps[ids] = stamp

    def membership(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        stamps = np.full(ids.shape, -np.inf, dtype=self.stamps.dtype)
        valid = (ids >= 0) & (ids < self.stamps.size)
        stamps[valid] = self.stamps[ids[valid]]
        return stamps > -np.inf, stamps

    def drop_older_than(self, horizon: float) -> int:
        stale = (self.stamps > -np.inf) & (self.stamps < horizon)
        dropped = int(stale.sum())
        if dropped:
            self.stamps[stale] = -np.inf
        return dropped

    def clear(self) -> None:
        self.stamps[:] = -np.inf


class HotIndexFilter:
    """Per-field recently-updated-id membership filter.

    Args:
        num_fields: number of sparse feature fields.
        expiry_s: optional age limit; entries older than this (relative to
            the most recent :meth:`mark` time) stop matching.  ``None``
            disables expiry (entries persist until :meth:`clear`).
        num_rows: optional id-universe size per field (or one size for
            all).  When given, that field uses the dense O(1)-per-id
            layout; ids outside ``[0, num_rows)`` are treated as cold.
        stamp_dtype: dtype of the last-mark timestamps; ``np.float64``
            (default) or ``np.float32`` (the serving lane's 4-bytes/row
            configuration — sim-clock seconds only, not epoch seconds).
    """

    def __init__(
        self,
        num_fields: int,
        expiry_s: float | None = None,
        num_rows: int | list[int] | None = None,
        stamp_dtype=np.float64,
    ) -> None:
        if num_fields <= 0:
            raise ValueError("need at least one field")
        if expiry_s is not None and expiry_s <= 0:
            raise ValueError("expiry must be positive when set")
        stamp_dtype = np.dtype(stamp_dtype)
        if stamp_dtype.kind != "f":
            raise TypeError("stamp_dtype must be a float dtype")
        self.num_fields = num_fields
        self.expiry_s = expiry_s
        self.stamp_dtype = stamp_dtype
        if num_rows is None:
            sizes: list[int | None] = [None] * num_fields
        elif isinstance(num_rows, int):
            sizes = [num_rows] * num_fields
        else:
            if len(num_rows) != num_fields:
                raise ValueError("num_rows must align with num_fields")
            sizes = list(num_rows)
        self._marked: list[_FieldTable | _DenseFieldTable] = [
            _FieldTable(stamp_dtype)
            if n is None
            else _DenseFieldTable(n, stamp_dtype)
            for n in sizes
        ]
        self._now = 0.0

    @property
    def nbytes(self) -> int:
        """Filter footprint across all fields (the metadata budget line)."""
        return sum(table.nbytes for table in self._marked)

    def mark(self, field: int, ids: np.ndarray, now: float | None = None) -> None:
        """Record ids as hot at time ``now`` (trainer update callback)."""
        if now is not None:
            self._now = max(self._now, now)
        self._marked[field].upsert(np.asarray(ids, dtype=np.int64), self._now)

    def advance(self, now: float) -> None:
        """Move the filter's clock forward (expiry reference)."""
        self._now = max(self._now, now)

    def is_hot(self, field: int, ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``ids`` are currently hot."""
        ids = np.asarray(ids, dtype=np.int64)
        found, stamps = self._marked[field].membership(ids)
        if self.expiry_s is None:
            return found
        return stamps >= self._now - self.expiry_s

    def __call__(self, field: int, ids: np.ndarray) -> np.ndarray:
        """Alias so the filter plugs into :meth:`LoRACollection.overlay`."""
        return self.is_hot(field, ids)

    def hot_count(self, field: int) -> int:
        """Number of currently-hot ids in one field (after expiry)."""
        table = self._marked[field]
        if self.expiry_s is None:
            return len(table)
        return int((table.stamps >= self._now - self.expiry_s).sum())

    def sweep(self) -> int:
        """Physically remove expired entries; returns how many were dropped."""
        if self.expiry_s is None:
            return 0
        horizon = self._now - self.expiry_s
        return sum(table.drop_older_than(horizon) for table in self._marked)

    def clear(self, field: int | None = None) -> None:
        if field is None:
            for table in self._marked:
                table.clear()
        else:
            self._marked[field].clear()
