"""Hot Index Filter (Fig. 7, inference path step 2).

On every serving request, LiveUpdate must decide per sparse id whether the
LoRA adjustment applies: "hot" ids (recently updated by the online trainer)
are served ``W_base[i] + A[i] B``; cold ids take the plain base-table path.
The filter is a per-field set with optional time-based expiry so entries
fade once the trainer stops touching them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HotIndexFilter"]


class HotIndexFilter:
    """Per-field recently-updated-id membership filter.

    Args:
        num_fields: number of sparse feature fields.
        expiry_s: optional age limit; entries older than this (relative to
            the most recent :meth:`mark` time) stop matching.  ``None``
            disables expiry (entries persist until :meth:`clear`).
    """

    def __init__(self, num_fields: int, expiry_s: float | None = None) -> None:
        if num_fields <= 0:
            raise ValueError("need at least one field")
        if expiry_s is not None and expiry_s <= 0:
            raise ValueError("expiry must be positive when set")
        self.num_fields = num_fields
        self.expiry_s = expiry_s
        self._marked: list[dict[int, float]] = [{} for _ in range(num_fields)]
        self._now = 0.0

    def mark(self, field: int, ids: np.ndarray, now: float | None = None) -> None:
        """Record ids as hot at time ``now`` (trainer update callback)."""
        if now is not None:
            self._now = max(self._now, now)
        stamp = self._now
        table = self._marked[field]
        for i in np.asarray(ids, dtype=np.int64):
            table[int(i)] = stamp

    def advance(self, now: float) -> None:
        """Move the filter's clock forward (expiry reference)."""
        self._now = max(self._now, now)

    def is_hot(self, field: int, ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``ids`` are currently hot."""
        table = self._marked[field]
        ids = np.asarray(ids, dtype=np.int64)
        if self.expiry_s is None:
            return np.array([int(i) in table for i in ids], dtype=bool)
        horizon = self._now - self.expiry_s
        return np.array(
            [table.get(int(i), -np.inf) >= horizon for i in ids], dtype=bool
        )

    def __call__(self, field: int, ids: np.ndarray) -> np.ndarray:
        """Alias so the filter plugs into :meth:`LoRACollection.overlay`."""
        return self.is_hot(field, ids)

    def hot_count(self, field: int) -> int:
        """Number of currently-hot ids in one field (after expiry)."""
        table = self._marked[field]
        if self.expiry_s is None:
            return len(table)
        horizon = self._now - self.expiry_s
        return sum(1 for ts in table.values() if ts >= horizon)

    def sweep(self) -> int:
        """Physically remove expired entries; returns how many were dropped."""
        if self.expiry_s is None:
            return 0
        horizon = self._now - self.expiry_s
        dropped = 0
        for table in self._marked:
            stale = [i for i, ts in table.items() if ts < horizon]
            for i in stale:
                del table[i]
            dropped += len(stale)
        return dropped

    def clear(self, field: int | None = None) -> None:
        if field is None:
            for table in self._marked:
                table.clear()
        else:
            self._marked[field].clear()
