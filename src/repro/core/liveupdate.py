"""The LiveUpdate strategy: tiered inference-side updates (Section IV-B).

* **Short-term** (every update window): train LoRA adapters locally from the
  inference-log ring buffer — no inter-cluster traffic at all.
* **Mid-term** (hourly): full-parameter synchronization from the training
  cluster to stop model-drift accumulation; local adapters reset because the
  fresh base already embodies recent data.
* **Long-term** (days): full retraining — out of scope here, as in the paper.

Update cost is the *local training time*, measured directly from the
trainer, optionally augmented by the production-scale cost model used in the
Fig. 14 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.nodes import InferenceNode, TrainingCluster
from ..data.stream import InferenceLogBuffer
from ..data.synthetic import Batch
from ..strategies.base import UpdateCost, UpdateStrategy
from .trainer import LoRATrainer, TrainerConfig

__all__ = ["LiveUpdateConfig", "LiveUpdate"]


@dataclass
class LiveUpdateConfig:
    """Strategy-level knobs (trainer hyper-params live in TrainerConfig).

    Attributes:
        steps_per_slot: LoRA mini-batches per fine-grained time slot (the
            trainer thread's cadence; it runs continuously, not only at
            window boundaries).
        steps_per_window: extra LoRA mini-batches at each window boundary.
        retention_s: ring-buffer retention (paper: 10 minutes).
        merge_before_full_sync: fold adapters into the base before adopting
            the training-cluster model (keeps serving continuous while the
            full state lands).
    """

    steps_per_slot: int = 2
    steps_per_window: int = 4
    retention_s: float = 600.0
    merge_before_full_sync: bool = True


class LiveUpdate(UpdateStrategy):
    """Co-located LoRA training on the serving replica.

    Args:
        node: the inference node whose model we adapt in place.
        trainer_cluster: source of the hourly full sync (may be ``None`` for
            purely-local operation; hourly sync then becomes a no-op).
        trainer_config: LoRA trainer hyper-parameters.
        config: strategy-level settings.
    """

    name = "LiveUpdate"

    def __init__(
        self,
        node: InferenceNode,
        trainer_cluster: TrainingCluster | None = None,
        trainer_config: TrainerConfig | None = None,
        config: LiveUpdateConfig | None = None,
    ) -> None:
        super().__init__()
        self.node = node
        self.trainer_cluster = trainer_cluster
        self.config = config or LiveUpdateConfig()
        self.buffer = InferenceLogBuffer(retention_s=self.config.retention_s)
        self.trainer = LoRATrainer(
            node.model, self.buffer, trainer_config or TrainerConfig()
        )
        tc = self.trainer.config
        if not tc.dynamic_rank:
            self.name = f"LiveUpdate-{tc.rank}"

    # -------------------------------------------------------------- protocol
    def on_serving_batch(self, batch: Batch) -> None:
        """Log served traffic into the training ring buffer (Fig. 7 step 4)."""
        self.buffer.append(batch)

    def overlay(self):
        return self.trainer.overlay()

    def _train_burst(self, steps: int) -> tuple[int, float]:
        before = self.trainer.report.train_seconds
        done = 0
        for _ in range(steps):
            if self.trainer.train_step() is None:
                break
            done += 1
        return done, self.trainer.report.train_seconds - before

    def on_slot(self, now: float) -> None:
        """Continuous background training between windows."""
        done, elapsed = self._train_burst(self.config.steps_per_slot)
        if done:
            self._slot_cost = getattr(self, "_slot_cost", 0.0) + elapsed

    def on_update_window(self, now: float) -> UpdateCost:
        """Window-boundary training burst; cost = measured compute seconds.

        Includes the compute accumulated by :meth:`on_slot` since the last
        window so Fig. 14-style accounting sees the full training cost.
        """
        steps_done, elapsed = self._train_burst(self.config.steps_per_window)
        slot_cost = getattr(self, "_slot_cost", 0.0)
        self._slot_cost = 0.0
        cost = UpdateCost(
            kind="lora-local",
            seconds=elapsed + slot_cost,
            bytes_moved=0.0,  # the headline: zero inter-cluster traffic
            rows=steps_done * self.trainer.config.batch_size,
        )
        return self.record(cost)

    def on_full_sync(self, now: float) -> UpdateCost:
        """Hourly full-parameter re-anchor from the training cluster."""
        if self.trainer_cluster is None:
            return self.record(UpdateCost.zero("full-sync-skipped"))
        if self.config.merge_before_full_sync:
            self.trainer.merge_and_reset()
        else:
            self.trainer.lora.reset()
            self.trainer.hot_filter.clear()
        self.node.adopt_model(self.trainer_cluster.model)
        for table in self.trainer_cluster.model.embeddings:
            table.reset_touched()
        nbytes = self.trainer_cluster.model.embedding_bytes
        cost = UpdateCost(
            kind="full-sync",
            seconds=self.node.link.transfer_seconds(nbytes),
            bytes_moved=nbytes,
            rows=sum(t.num_rows for t in self.node.model.embeddings),
        )
        return self.record(cost)

    # ------------------------------------------------------------ accounting
    def adapter_memory_bytes(self) -> int:
        return self.trainer.memory_bytes()

    def adapter_memory_fraction(self) -> float:
        """Adapter footprint over base EMT footprint (paper target: <2%)."""
        return self.trainer.memory_bytes() / self.node.model.embedding_bytes
