"""Vectorized hot-path kernels shared across the serving/training stack.

LiveUpdate's steady-state work is dominated by three id-granular
operations: mapping sparse ids to LoRA slots (every adapted lookup and
every gradient step), hot-index membership checks (every served batch),
and fleet routing (every request).  Expressed per id in Python these cap
throughput at a few hundred thousand ids/sec; expressed as whole-array
kernels they run at memory bandwidth.  This module holds the two
primitives everything else builds on:

* :func:`splitmix64` — a process-stable avalanche hash (the builtin
  ``hash()`` is salted per process via ``PYTHONHASHSEED`` and must never
  decide ring placement or slot assignment);
* :class:`IdSlotTable` — an array-native id -> slot map (sorted key
  array + ``np.searchsorted``) with batch lookup/insert/remove, the
  replacement for the former dict-based ``_SlotMap``;
* :func:`pool_rows` / :func:`segment_pool` — offset-based segment
  reductions (EmbeddingBag pooling) bucketed by bag size so cost scales
  with the id stream, not the bag count;
* :func:`group_rows_sum` — duplicate-sparse scatter-add: per-occurrence
  rows accumulated into unique-id rows, the backward of pooling;
* :class:`TouchedRows` — an epoch-stamped touched-row tracker (O(batch)
  to stamp, one vectorized scan to drain, one byte per row) replacing
  the per-id Python ``set`` used for delta accounting.

All are deliberately dependency-free (NumPy only) so every layer —
``core``, ``serving``, ``dlrm`` — can import them without cycles.
"""

from __future__ import annotations

import numpy as np

from .dtypes import as_float_rows, as_uint64_keys

__all__ = [
    "splitmix64",
    "hash_combine",
    "stable_str_hash",
    "sorted_find",
    "IdSlotTable",
    "pool_rows",
    "segment_pool",
    "group_rows_sum",
    "TouchedRows",
]

# Multiplicative avalanche constants (splitmix64 finaliser).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised splitmix64 avalanche hash over integer arrays.

    Deterministic across processes, platforms and ``PYTHONHASHSEED`` —
    the property the consistent-hash ring and feature hashing rely on.

    Parameters
    ----------
    values : numpy.ndarray of int
        Input ids; any integer dtype, any shape.
    seed : int, optional
        Stream selector; mixed in via the golden-ratio increment so
        different seeds give independent hash families.

    Returns
    -------
    numpy.ndarray of uint64
        Avalanched hashes, same shape as ``values``.
    """
    offset = (seed * _GOLDEN + 1) % (1 << 64)
    with np.errstate(over="ignore"):
        x = as_uint64_keys(values) + np.uint64(offset)
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


def hash_combine(a: np.ndarray, b: np.ndarray, seed: int = 0) -> np.ndarray:
    """Stable hash of an ``(a, b)`` pair of integer arrays.

    Parameters
    ----------
    a, b : numpy.ndarray of int
        Pair components; broadcast against each other.
    seed : int, optional
        Hash-family selector, as in :func:`splitmix64`.

    Returns
    -------
    numpy.ndarray of uint64
        One stable hash per broadcast pair; permuting the pair or shifting
        either component yields unrelated values.
    """
    with np.errstate(over="ignore"):
        mixed = splitmix64(a, seed) ^ (
            as_uint64_keys(b) * np.uint64(_GOLDEN)
        )
    return splitmix64(mixed, seed + 1)


def stable_str_hash(text: str, seed: int = 0) -> int:
    """Process-stable 64-bit hash of a string (table names, route labels).

    UTF-8 bytes are packed little-endian into ``uint64`` words, each word is
    mixed with its position (so permutations don't collide), and the words
    are XOR-folded through one final avalanche.  Deterministic across
    processes, platforms and ``PYTHONHASHSEED`` — use this, never the salted
    builtin ``hash()``, wherever a string key decides placement.
    """
    data = text.encode("utf-8")
    padded = data + b"\x00" * (-len(data) % 8)
    if padded:
        words = np.frombuffer(padded, dtype="<u8")
    else:
        words = np.zeros(1, dtype=np.uint64)
    positions = np.arange(words.size, dtype=np.uint64)
    mixed = hash_combine(words, positions, seed)
    folded = np.bitwise_xor.reduce(mixed) ^ np.uint64(len(data))
    return int(splitmix64(folded.reshape(1), seed + 1)[0])


def sorted_find(keys: np.ndarray, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batch membership in a sorted key array.

    Parameters
    ----------
    keys : numpy.ndarray
        Sorted, unique key array to probe.
    queries : numpy.ndarray
        Values to look up; any shape.

    Returns
    -------
    found : numpy.ndarray of bool
        Whether each query is present in ``keys``.
    pos : numpy.ndarray of int64
        Index of each found query in ``keys``; an arbitrary *safe* index
        (0) where not found, so gathers never fault.
    """
    if keys.size == 0 or queries.size == 0:
        return (
            np.zeros(queries.shape, dtype=bool),
            np.zeros(queries.shape, dtype=np.int64),
        )
    pos = np.searchsorted(keys, queries)
    in_range = pos < keys.size
    pos_c = np.where(in_range, pos, 0)
    found = in_range & (keys[pos_c] == queries)
    return found, pos_c


class IdSlotTable:
    """Array-native id -> slot map with a bounded slot budget.

    Keys are kept in one sorted ``int64`` array with a parallel slot
    array, so membership and translation are a single
    ``np.searchsorted`` per batch.  When the id universe is known
    (``universe`` given — embedding tables have a fixed row count), a
    flat direct-address array shadows the sorted pair and translation
    becomes a single gather with no search at all; ids outside
    ``[0, universe)`` simply miss.  Free slots live in a LIFO stack that
    reproduces the allocation order of the former dict/free-list
    implementation: a fresh table hands out slots ``0, 1, 2, ...`` and
    released slots are reused most-recently-freed first.

    Parameters
    ----------
    Keys (the ids themselves) are always int64; the *slot* side — the
    parallel value array, the free stack and the dense direct-address
    lane — is ``slot_dtype``-typed.  With ``slot_dtype=np.int32`` the
    dense lane costs 4 bytes per universe row instead of 8, which is the
    serving-lane configuration: slots index a bounded table, so int32
    loses nothing as long as ``capacity`` fits (checked at construction).

    Parameters
    ----------
    capacity : int
        Maximum simultaneous id -> slot mappings (the slot budget).
    universe : int, optional
        Id space bound enabling the dense direct-address lane; ``None``
        keeps the purely sorted representation for unbounded ids.
    slot_dtype : numpy dtype, optional
        Dtype of the slot lane; int64 (train default) or int32 (the
        serving lane's halved-metadata configuration).
    """

    def __init__(
        self,
        capacity: int,
        universe: int | None = None,
        slot_dtype=np.int64,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if universe is not None and universe <= 0:
            raise ValueError("universe must be positive when set")
        slot_dtype = np.dtype(slot_dtype)
        if slot_dtype.kind != "i":
            raise TypeError("slot_dtype must be a signed integer dtype")
        if capacity > np.iinfo(slot_dtype).max:
            raise OverflowError(
                f"capacity {capacity} does not fit slot_dtype {slot_dtype}"
            )
        self.capacity = capacity
        self.universe = universe
        self.slot_dtype = slot_dtype
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=slot_dtype)
        self._dense = (
            None if universe is None else np.full(universe, -1, dtype=slot_dtype)
        )
        self._free = np.arange(capacity - 1, -1, -1, dtype=slot_dtype)
        self._n_free = capacity

    # ----------------------------------------------------------------- state
    @property
    def size(self) -> int:
        return int(self._keys.size)

    @property
    def keys(self) -> np.ndarray:
        """Active ids, ascending."""
        return self._keys.copy()

    @property
    def slots(self) -> np.ndarray:
        """Slot per active id, aligned with :attr:`keys`."""
        return self._vals.copy()

    @property
    def nbytes(self) -> int:
        """Map footprint: keys + slots + free stack + dense lane."""
        total = self._keys.nbytes + self._vals.nbytes + self._free.nbytes
        if self._dense is not None:
            total += self._dense.nbytes
        return int(total)

    def clear(self) -> None:
        if self._dense is not None:
            self._dense[self._keys] = -1  # O(active), not O(universe)
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=self.slot_dtype)
        self._free = np.arange(self.capacity - 1, -1, -1, dtype=self.slot_dtype)
        self._n_free = self.capacity

    def rebuild_sorted(self, keys: np.ndarray, capacity: int) -> None:
        """Repack in place: ``keys`` (sorted, unique) take slots ``0..n-1``.

        Reuses the dense lane instead of reallocating a universe-sized
        array on every capacity resize.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.size
        if n > capacity:
            raise ValueError("more keys than capacity")
        if capacity > np.iinfo(self.slot_dtype).max:
            raise OverflowError(
                f"capacity {capacity} does not fit slot_dtype {self.slot_dtype}"
            )
        if self._dense is not None:
            self._dense[self._keys] = -1
        self.capacity = capacity
        self._keys = keys.copy()
        self._vals = np.arange(n, dtype=self.slot_dtype)
        if self._dense is not None:
            self._dense[self._keys] = self._vals
        self._free = np.empty(capacity, dtype=self.slot_dtype)
        self._free[: capacity - n] = np.arange(
            capacity - 1, n - 1, -1, dtype=self.slot_dtype
        )
        self._n_free = capacity - n

    @classmethod
    def from_sorted_keys(
        cls,
        keys: np.ndarray,
        capacity: int,
        universe: int | None = None,
        slot_dtype=np.int64,
    ) -> "IdSlotTable":
        """Table where ``keys`` (sorted, unique) occupy slots ``0..n-1``."""
        table = cls(capacity, universe=universe, slot_dtype=slot_dtype)
        table.rebuild_sorted(keys, capacity)
        return table

    # ----------------------------------------------------------- free stack
    def _pop(self, k: int) -> np.ndarray:
        out = self._free[self._n_free - k : self._n_free][::-1].copy()
        self._n_free -= k
        return out

    def _push(self, slots: np.ndarray) -> None:
        k = slots.size
        self._free[self._n_free : self._n_free + k] = slots
        self._n_free += k

    # --------------------------------------------------------------- lookup
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Translate ids to slots.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to translate; any shape.

        Returns
        -------
        numpy.ndarray of :attr:`slot_dtype`
            Slot per id, ``-1`` where the id is not in the table (or
            outside the dense lane's universe).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._dense is not None:
            out = np.full(ids.shape, -1, dtype=self.slot_dtype)
            valid = (ids >= 0) & (ids < self._dense.size)
            out[valid] = self._dense[ids[valid]]
            return out
        out = np.full(ids.shape, -1, dtype=self.slot_dtype)
        found, pos = sorted_find(self._keys, ids)
        out[found] = self._vals[pos[found]]
        return out

    def lookup_present(self, ids: np.ndarray) -> np.ndarray:
        """Slot per id for ids the caller KNOWS are in the table.

        Skips the miss handling of :meth:`lookup` (one searchsorted + one
        take); results are undefined for absent ids.  Hot-path primitive
        for delta-log slices, where every logged id is resident by
        construction.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._dense is not None:
            return self._dense[ids]
        return self._vals[np.searchsorted(self._keys, ids)]

    def get(self, idx: int) -> int | None:
        """Scalar lookup (compat shim for slow paths and tests)."""
        slot = int(self.lookup(np.array([idx]))[0])
        return None if slot < 0 else slot

    # --------------------------------------------------------------- update
    def insert(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch activate: give every id a slot, first come first served.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to activate; duplicates resolve to one slot, granted at
            the first occurrence.

        Returns
        -------
        slots : numpy.ndarray of :attr:`slot_dtype`
            Slot per id, aligned with ``ids``; ``-1`` when the table ran
            out of capacity.
        new_slots : numpy.ndarray of :attr:`slot_dtype`
            Slots granted to previously-absent ids, in grant order —
            callers typically need to zero the backing rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        slots = self.lookup(ids)
        missing = slots < 0
        if self._dense is not None:
            # Out-of-universe ids can never be granted a slot.
            missing &= (ids >= 0) & (ids < self._dense.size)
        if not missing.any():
            return slots, np.empty(0, dtype=self.slot_dtype)
        new_ids, first_pos = np.unique(ids[missing], return_index=True)
        order = np.argsort(first_pos, kind="stable")  # first-occurrence order
        granted = new_ids[order][: self._n_free]
        if granted.size == 0:
            return slots, np.empty(0, dtype=self.slot_dtype)
        new_slots = self._pop(granted.size)
        merged_keys = np.concatenate([self._keys, granted])
        merged_vals = np.concatenate([self._vals, new_slots])
        srt = np.argsort(merged_keys, kind="stable")
        self._keys = merged_keys[srt]
        self._vals = merged_vals[srt]
        if self._dense is not None:
            self._dense[granted] = new_slots
        return self.lookup(ids), new_slots

    def remove(self, ids: np.ndarray) -> np.ndarray:
        """Batch deactivate ids.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to drop; absent ids are ignored.

        Returns
        -------
        numpy.ndarray of :attr:`slot_dtype`
            The released slots (pushed back onto the free stack,
            most-recently-freed reused first).
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if ids.size == 0 or self._keys.size == 0:
            return np.empty(0, dtype=self.slot_dtype)
        found, pos = sorted_find(self._keys, ids)
        hit = pos[found]
        if hit.size == 0:
            return np.empty(0, dtype=self.slot_dtype)
        released = self._vals[hit].copy()
        if self._dense is not None:
            self._dense[self._keys[hit]] = -1
        keep = np.ones(self._keys.size, dtype=bool)
        keep[hit] = False
        self._keys = self._keys[keep]
        self._vals = self._vals[keep]
        self._push(released)
        return released


# --------------------------------------------------------------- segment ops
def _size_classes(sizes: np.ndarray):
    """Group bag indices by exact bag size.

    Yields ``(size, bag_positions)`` pairs where ``bag_positions`` indexes
    the original bag order.  Empty bags (size 0) are skipped — callers
    pre-fill their output with zeros.
    """
    order = np.argsort(sizes, kind="stable")
    ssz = sizes[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(ssz)) + 1))
    ends = np.concatenate((starts[1:], [sizes.size]))
    for lo, hi in zip(starts, ends):
        size = int(ssz[lo])
        if size == 0:
            continue
        yield size, order[lo:hi]


def pool_rows(
    source: np.ndarray,
    ids: np.ndarray,
    offsets: np.ndarray,
    mode: str = "mean",
) -> np.ndarray:
    """Offset-based segment reduction: EmbeddingBag pooling in one pass.

    Sample ``b`` owns the id slice ``ids[offsets[b]:offsets[b + 1]]``; its
    output is the sum (or mean) of the corresponding ``source`` rows.
    Bags are bucketed by exact size so each bucket reduces one dense
    ``(bags, size, d)`` block — cost scales with ``len(ids)``, not with
    the number of bags, and no per-bag Python loop survives.

    Parameters
    ----------
    source : numpy.ndarray
        ``(num_rows, d)`` table to gather from.
    ids : numpy.ndarray of int64
        Flat id stream for the whole batch (indices into ``source``).
    offsets : numpy.ndarray of int64
        ``(batch + 1,)`` bag boundaries; empty bags pool to zero.
    mode : {"mean", "sum"}
        Pooling reduction.

    Returns
    -------
    numpy.ndarray
        ``(batch, d)`` pooled rows, on the same float lane as ``source``
        (float32 sources pool to float32; integer sources upcast to
        float64, the training lane's default).
    """
    if mode not in ("mean", "sum"):
        raise ValueError("mode must be 'mean' or 'sum'")
    source = as_float_rows(source, name="source")
    lane = source.dtype
    ids = np.asarray(ids, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    batch = offsets.shape[0] - 1
    if ids.size == 0 or batch == 0:
        return np.zeros(
            (batch if batch > 0 else 0, source.shape[1]), dtype=lane
        )
    sizes = np.diff(offsets)
    starts = offsets[:-1]
    min_size = sizes.min()
    if min_size < 0:
        raise ValueError("offsets must be non-decreasing")
    if min_size > 0:  # every bag written below: skip the zero fill
        out = np.empty((batch, source.shape[1]), dtype=lane)
    else:
        out = np.zeros((batch, source.shape[1]), dtype=lane)
    for size, bags in _size_classes(sizes):
        bag_starts = starts[bags]
        if size == 1:  # singleton bags: the pool is the row itself
            out[bags] = source[ids[bag_starts]]
            continue
        if size <= 32:
            # Short bags (the common DLRM shape): accumulate the k-th
            # member of every bag per pass — flat 2-D gathers (fancy
            # indexing already yields fresh arrays) recycle small buffers
            # instead of materialising one (bags, size, d) block.
            acc = source[ids[bag_starts]]
            for k in range(1, size):
                acc += source[ids[bag_starts + k]]
        else:
            # Long bags arrive in few, large classes: one dense
            # (bags, size, d) block reduction keeps the member loop out
            # of Python (the block is no bigger than the class's slice
            # of the id stream).
            idx = bag_starts[:, None] + np.arange(size, dtype=np.int64)
            acc = source[ids[idx]].sum(axis=1)
        if mode == "mean":
            acc /= size
        out[bags] = acc
    return out


def segment_pool(
    values: np.ndarray, offsets: np.ndarray, mode: str = "mean"
) -> np.ndarray:
    """Pool per-occurrence rows into per-bag rows (no gather step).

    Like :func:`pool_rows` but ``values`` already holds one row per id
    occurrence (``values[i]`` belongs to the bag owning position ``i``),
    e.g. LoRA delta rows produced for a flat id stream.

    Parameters
    ----------
    values : numpy.ndarray
        ``(len(ids), d)`` per-occurrence rows.
    offsets : numpy.ndarray of int64
        ``(batch + 1,)`` bag boundaries.
    mode : {"mean", "sum"}
        Pooling reduction.

    Returns
    -------
    numpy.ndarray
        ``(batch, d)`` pooled rows, on ``values``' float lane.
    """
    vals = as_float_rows(values, name="values")
    positions = np.arange(vals.shape[0], dtype=np.int64)
    return pool_rows(vals, positions, offsets, mode)


def group_rows_sum(
    ids: np.ndarray, rows: np.ndarray, num_rows: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate per-occurrence rows into unique-id rows (scatter-add).

    The backward of pooling: every occurrence of id ``u`` contributes its
    row to ``u``'s gradient.  With a known universe (embedding tables know
    their row count) the unique set, the id -> slot map and the per-slot
    accumulation are all counting passes — one ``bincount`` per dimension
    over compact slots, no sort at all.  Without one, ids that occur once
    are copied with one vectorized scatter and only duplicated ids pay a
    sort + segment reduction.

    Parameters
    ----------
    ids : numpy.ndarray of int64
        Flat id stream; duplicates allowed, any order.
    rows : numpy.ndarray
        ``(len(ids), d)`` per-occurrence rows.
    num_rows : int, optional
        Id-universe bound enabling the counting lane.

    Returns
    -------
    uniq : numpy.ndarray of int64
        Sorted unique ids.
    summed : numpy.ndarray
        ``(len(uniq), d)`` accumulated rows, on ``rows``' float lane
        (the counting lane accumulates in float64 regardless, then
        rounds once back onto the input lane).
    """
    ids = np.asarray(ids, dtype=np.int64)
    rows = as_float_rows(rows, name="rows")
    lane = rows.dtype
    if ids.size == 0:
        return ids.copy(), np.zeros(
            (0, rows.shape[1] if rows.ndim == 2 else 0), dtype=lane
        )
    dim = rows.shape[1]
    # Counting lane: bincount beats sorting unless the table is
    # gigantically larger than the batch.
    if num_rows is not None and num_rows <= 64 * ids.size:
        counts = np.bincount(ids, minlength=num_rows)
        uniq = np.flatnonzero(counts)
        slots = np.cumsum(counts > 0, dtype=np.int64)
        slots -= 1  # id -> compact slot, valid where counts > 0
        # One flat bincount over (slot, dim) keys accumulates every
        # element of every occurrence in a single counting pass.
        keys = slots[ids][:, None] * dim + np.arange(dim, dtype=np.int64)
        summed = np.bincount(
            keys.ravel(), weights=rows.ravel(), minlength=uniq.size * dim
        )
        # bincount always counts in float64; one rounding back onto the
        # input lane keeps the output dtype contract.
        return uniq, summed.reshape(uniq.size, dim).astype(lane, copy=False)
    uniq, inv, occ_counts = np.unique(
        ids, return_inverse=True, return_counts=True
    )
    dup_occ = occ_counts[inv] > 1
    summed = np.zeros((uniq.size, dim), dtype=lane)
    single = ~dup_occ
    summed[inv[single]] = rows[single]
    if dup_occ.any():
        sub = inv[dup_occ]
        order = np.argsort(sub, kind="stable")
        ssub = sub[order]
        seg_starts = np.concatenate(([0], np.flatnonzero(np.diff(ssub)) + 1))
        summed[ssub[seg_starts]] = np.add.reduceat(
            rows[dup_occ][order], seg_starts, axis=0
        )
    return uniq, summed


class TouchedRows:
    """Epoch-stamped touched-row tracker for delta accounting.

    One ``uint8`` stamp per row: a row is "touched" when its stamp equals
    the current epoch.  Stamping a batch is a single vectorized scatter
    (duplicates free), draining is one compare + ``flatnonzero`` scan, and
    :meth:`clear` just bumps the epoch — O(1) until the 8-bit epoch space
    wraps, when the lane is memset once every 255 clears.

    Memory cost is 1 byte/row — under 1% of a float64 row at ``dim >= 16``
    (1.6% at ``dim = 8``), inside the paper's <2% metadata budget; the
    :meth:`bitmap` export packs the current epoch's stamps to 1 bit/row
    for transport or archival.

    Parameters
    ----------
    num_rows : int
        Id universe (embedding-table row count).
    """

    def __init__(self, num_rows: int) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self._lane = np.zeros(num_rows, dtype=np.uint8)
        self._epoch = 1

    # ----------------------------------------------------------------- state
    @property
    def num_rows(self) -> int:
        return int(self._lane.size)

    @property
    def nbytes(self) -> int:
        """Tracker footprint (the memory-policy overhead)."""
        return int(self._lane.nbytes)

    def stamp(self, ids: np.ndarray) -> None:
        """Mark rows as touched; duplicate ids cost nothing extra."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size:
            self._lane[ids] = self._epoch

    def ids(self) -> np.ndarray:
        """Sorted ids touched since the last :meth:`clear`."""
        return np.flatnonzero(self._lane == self._epoch)

    def mask(self) -> np.ndarray:
        """Dense boolean touched mask, ``(num_rows,)``."""
        return self._lane == self._epoch

    def bitmap(self) -> np.ndarray:
        """Packed little-endian bitmap of the touched mask (1 bit/row)."""
        return np.packbits(self.mask(), bitorder="little")

    def count(self) -> int:
        return int(np.count_nonzero(self._lane == self._epoch))

    def fraction(self) -> float:
        return self.count() / self.num_rows

    # ---------------------------------------------------------------- update
    def clear(self) -> None:
        """Forget all stamps.  O(1) except one memset per 255 clears."""
        if self._epoch == 255:
            self._lane[:] = 0
            self._epoch = 1
        else:
            self._epoch += 1

    def drain(self) -> np.ndarray:
        """Return the touched ids and clear in one call."""
        out = self.ids()
        self.clear()
        return out

    def resize(self, num_rows: int) -> None:
        """Grow the universe; existing stamps survive, new rows start clean."""
        if num_rows < self.num_rows:
            raise ValueError("TouchedRows only grows; rebuild to shrink")
        if num_rows > self.num_rows:
            grown = np.zeros(num_rows, dtype=np.uint8)
            grown[: self._lane.size] = self._lane
            self._lane = grown
