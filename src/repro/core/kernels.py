"""Vectorized hot-path kernels shared across the serving/training stack.

LiveUpdate's steady-state work is dominated by three id-granular
operations: mapping sparse ids to LoRA slots (every adapted lookup and
every gradient step), hot-index membership checks (every served batch),
and fleet routing (every request).  Expressed per id in Python these cap
throughput at a few hundred thousand ids/sec; expressed as whole-array
kernels they run at memory bandwidth.  This module holds the two
primitives everything else builds on:

* :func:`splitmix64` — a process-stable avalanche hash (the builtin
  ``hash()`` is salted per process via ``PYTHONHASHSEED`` and must never
  decide ring placement or slot assignment);
* :class:`IdSlotTable` — an array-native id -> slot map (sorted key
  array + ``np.searchsorted``) with batch lookup/insert/remove, the
  replacement for the former dict-based ``_SlotMap``.

Both are deliberately dependency-free (NumPy only) so every layer —
``core``, ``serving``, ``dlrm`` — can import them without cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "splitmix64",
    "hash_combine",
    "stable_str_hash",
    "sorted_find",
    "IdSlotTable",
]

# Multiplicative avalanche constants (splitmix64 finaliser).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised splitmix64 avalanche hash over integer arrays.

    Deterministic across processes, platforms and ``PYTHONHASHSEED`` —
    the property the consistent-hash ring and feature hashing rely on.

    Parameters
    ----------
    values : numpy.ndarray of int
        Input ids; any integer dtype, any shape.
    seed : int, optional
        Stream selector; mixed in via the golden-ratio increment so
        different seeds give independent hash families.

    Returns
    -------
    numpy.ndarray of uint64
        Avalanched hashes, same shape as ``values``.
    """
    values = np.asarray(values)
    offset = (seed * _GOLDEN + 1) % (1 << 64)
    with np.errstate(over="ignore"):
        x = values.astype(np.uint64) + np.uint64(offset)
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


def hash_combine(a: np.ndarray, b: np.ndarray, seed: int = 0) -> np.ndarray:
    """Stable hash of an ``(a, b)`` pair of integer arrays.

    Parameters
    ----------
    a, b : numpy.ndarray of int
        Pair components; broadcast against each other.
    seed : int, optional
        Hash-family selector, as in :func:`splitmix64`.

    Returns
    -------
    numpy.ndarray of uint64
        One stable hash per broadcast pair; permuting the pair or shifting
        either component yields unrelated values.
    """
    with np.errstate(over="ignore"):
        mixed = splitmix64(a, seed) ^ (
            np.asarray(b).astype(np.uint64) * np.uint64(_GOLDEN)
        )
    return splitmix64(mixed, seed + 1)


def stable_str_hash(text: str, seed: int = 0) -> int:
    """Process-stable 64-bit hash of a string (table names, route labels).

    UTF-8 bytes are packed little-endian into ``uint64`` words, each word is
    mixed with its position (so permutations don't collide), and the words
    are XOR-folded through one final avalanche.  Deterministic across
    processes, platforms and ``PYTHONHASHSEED`` — use this, never the salted
    builtin ``hash()``, wherever a string key decides placement.
    """
    data = text.encode("utf-8")
    padded = data + b"\x00" * (-len(data) % 8)
    if padded:
        words = np.frombuffer(padded, dtype="<u8")
    else:
        words = np.zeros(1, dtype=np.uint64)
    positions = np.arange(words.size, dtype=np.uint64)
    mixed = hash_combine(words, positions, seed)
    folded = np.bitwise_xor.reduce(mixed) ^ np.uint64(len(data))
    return int(splitmix64(folded.reshape(1), seed + 1)[0])


def sorted_find(keys: np.ndarray, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batch membership in a sorted key array.

    Parameters
    ----------
    keys : numpy.ndarray
        Sorted, unique key array to probe.
    queries : numpy.ndarray
        Values to look up; any shape.

    Returns
    -------
    found : numpy.ndarray of bool
        Whether each query is present in ``keys``.
    pos : numpy.ndarray of int64
        Index of each found query in ``keys``; an arbitrary *safe* index
        (0) where not found, so gathers never fault.
    """
    if keys.size == 0 or queries.size == 0:
        return (
            np.zeros(queries.shape, dtype=bool),
            np.zeros(queries.shape, dtype=np.int64),
        )
    pos = np.searchsorted(keys, queries)
    in_range = pos < keys.size
    pos_c = np.where(in_range, pos, 0)
    found = in_range & (keys[pos_c] == queries)
    return found, pos_c


class IdSlotTable:
    """Array-native id -> slot map with a bounded slot budget.

    Keys are kept in one sorted ``int64`` array with a parallel slot
    array, so membership and translation are a single
    ``np.searchsorted`` per batch.  When the id universe is known
    (``universe`` given — embedding tables have a fixed row count), a
    flat direct-address array shadows the sorted pair and translation
    becomes a single gather with no search at all; ids outside
    ``[0, universe)`` simply miss.  Free slots live in a LIFO stack that
    reproduces the allocation order of the former dict/free-list
    implementation: a fresh table hands out slots ``0, 1, 2, ...`` and
    released slots are reused most-recently-freed first.

    Parameters
    ----------
    capacity : int
        Maximum simultaneous id -> slot mappings (the slot budget).
    universe : int, optional
        Id space bound enabling the dense direct-address lane; ``None``
        keeps the purely sorted representation for unbounded ids.
    """

    def __init__(self, capacity: int, universe: int | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if universe is not None and universe <= 0:
            raise ValueError("universe must be positive when set")
        self.capacity = capacity
        self.universe = universe
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.int64)
        self._dense = (
            None if universe is None else np.full(universe, -1, dtype=np.int64)
        )
        self._free = np.arange(capacity - 1, -1, -1, dtype=np.int64)
        self._n_free = capacity

    # ----------------------------------------------------------------- state
    @property
    def size(self) -> int:
        return int(self._keys.size)

    @property
    def keys(self) -> np.ndarray:
        """Active ids, ascending."""
        return self._keys.copy()

    @property
    def slots(self) -> np.ndarray:
        """Slot per active id, aligned with :attr:`keys`."""
        return self._vals.copy()

    def clear(self) -> None:
        if self._dense is not None:
            self._dense[self._keys] = -1  # O(active), not O(universe)
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.int64)
        self._free = np.arange(self.capacity - 1, -1, -1, dtype=np.int64)
        self._n_free = self.capacity

    def rebuild_sorted(self, keys: np.ndarray, capacity: int) -> None:
        """Repack in place: ``keys`` (sorted, unique) take slots ``0..n-1``.

        Reuses the dense lane instead of reallocating a universe-sized
        array on every capacity resize.
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.size
        if n > capacity:
            raise ValueError("more keys than capacity")
        if self._dense is not None:
            self._dense[self._keys] = -1
        self.capacity = capacity
        self._keys = keys.copy()
        self._vals = np.arange(n, dtype=np.int64)
        if self._dense is not None:
            self._dense[self._keys] = self._vals
        self._free = np.empty(capacity, dtype=np.int64)
        self._free[: capacity - n] = np.arange(capacity - 1, n - 1, -1)
        self._n_free = capacity - n

    @classmethod
    def from_sorted_keys(
        cls, keys: np.ndarray, capacity: int, universe: int | None = None
    ) -> "IdSlotTable":
        """Table where ``keys`` (sorted, unique) occupy slots ``0..n-1``."""
        table = cls(capacity, universe=universe)
        table.rebuild_sorted(keys, capacity)
        return table

    # ----------------------------------------------------------- free stack
    def _pop(self, k: int) -> np.ndarray:
        out = self._free[self._n_free - k : self._n_free][::-1].copy()
        self._n_free -= k
        return out

    def _push(self, slots: np.ndarray) -> None:
        k = slots.size
        self._free[self._n_free : self._n_free + k] = slots
        self._n_free += k

    # --------------------------------------------------------------- lookup
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Translate ids to slots.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to translate; any shape.

        Returns
        -------
        numpy.ndarray of int64
            Slot per id, ``-1`` where the id is not in the table (or
            outside the dense lane's universe).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._dense is not None:
            out = np.full(ids.shape, -1, dtype=np.int64)
            valid = (ids >= 0) & (ids < self._dense.size)
            out[valid] = self._dense[ids[valid]]
            return out
        out = np.full(ids.shape, -1, dtype=np.int64)
        found, pos = sorted_find(self._keys, ids)
        out[found] = self._vals[pos[found]]
        return out

    def lookup_present(self, ids: np.ndarray) -> np.ndarray:
        """Slot per id for ids the caller KNOWS are in the table.

        Skips the miss handling of :meth:`lookup` (one searchsorted + one
        take); results are undefined for absent ids.  Hot-path primitive
        for delta-log slices, where every logged id is resident by
        construction.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._dense is not None:
            return self._dense[ids]
        return self._vals[np.searchsorted(self._keys, ids)]

    def get(self, idx: int) -> int | None:
        """Scalar lookup (compat shim for slow paths and tests)."""
        slot = int(self.lookup(np.array([idx]))[0])
        return None if slot < 0 else slot

    # --------------------------------------------------------------- update
    def insert(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch activate: give every id a slot, first come first served.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to activate; duplicates resolve to one slot, granted at
            the first occurrence.

        Returns
        -------
        slots : numpy.ndarray of int64
            Slot per id, aligned with ``ids``; ``-1`` when the table ran
            out of capacity.
        new_slots : numpy.ndarray of int64
            Slots granted to previously-absent ids, in grant order —
            callers typically need to zero the backing rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        slots = self.lookup(ids)
        missing = slots < 0
        if self._dense is not None:
            # Out-of-universe ids can never be granted a slot.
            missing &= (ids >= 0) & (ids < self._dense.size)
        if not missing.any():
            return slots, np.empty(0, dtype=np.int64)
        new_ids, first_pos = np.unique(ids[missing], return_index=True)
        order = np.argsort(first_pos, kind="stable")  # first-occurrence order
        granted = new_ids[order][: self._n_free]
        if granted.size == 0:
            return slots, np.empty(0, dtype=np.int64)
        new_slots = self._pop(granted.size)
        merged_keys = np.concatenate([self._keys, granted])
        merged_vals = np.concatenate([self._vals, new_slots])
        srt = np.argsort(merged_keys, kind="stable")
        self._keys = merged_keys[srt]
        self._vals = merged_vals[srt]
        if self._dense is not None:
            self._dense[granted] = new_slots
        return self.lookup(ids), new_slots

    def remove(self, ids: np.ndarray) -> np.ndarray:
        """Batch deactivate ids.

        Parameters
        ----------
        ids : numpy.ndarray of int64
            Ids to drop; absent ids are ignored.

        Returns
        -------
        numpy.ndarray of int64
            The released slots (pushed back onto the free stack,
            most-recently-freed reused first).
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if ids.size == 0 or self._keys.size == 0:
            return np.empty(0, dtype=np.int64)
        found, pos = sorted_find(self._keys, ids)
        hit = pos[found]
        if hit.size == 0:
            return np.empty(0, dtype=np.int64)
        released = self._vals[hit].copy()
        if self._dense is not None:
            self._dense[self._keys[hit]] = -1
        keep = np.ones(self._keys.size, dtype=bool)
        keep[hit] = False
        self._keys = self._keys[keep]
        self._vals = self._vals[keep]
        self._push(released)
        return released
