"""Checked dtype coercion and the dtype-lane policy for the model plane.

The hot-path dtype contract (int64 ids, uint64 routing keys, float64
train rows, float32 serve rows) is enforced statically by
``repro.analysis``'s ``dtype-discipline`` rule; this module is the
*runtime* half of that contract.  A bare
``np.asarray(x).astype(np.int64)`` silently accepts float and object
inputs — a float64 round-trip collapses every integer above ``2**53``
onto its even neighbour, which for routing keys means two distinct users
silently share a ring position in some processes and not others.  The
coercers here accept exactly the integer family and *raise* on anything
lossy, so the failure is at the call site instead of a week later in a
placement diff.

:class:`DTypePolicy` extends the same checked-boundary idiom into a
*lane* discipline: a policy names the row dtype (float64 on the training
lane, float32 on the serving lane), the slot dtype of the id -> slot
maps (int64 / int32), and the tolerance under which a float64 -> float32
downcast is accepted.  The two stock policies are :data:`TRAIN` and
:data:`SERVE`; the dlrm stack, the shard store and the serving caches
all take a policy (or the dtypes it carries) instead of hard-coding
float64, so halving row bytes is a constructor argument rather than a
code change.

This module deliberately lives outside the hot-module list: inspecting
an input's dtype requires one dtype-less ``np.asarray`` probe, which the
lint rule would (correctly) refuse anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "as_int64_ids",
    "as_uint64_keys",
    "as_float64_rows",
    "as_float32_rows",
    "as_float_rows",
    "as_rows",
    "DTypePolicy",
    "TRAIN",
    "SERVE",
]


def as_int64_ids(values, name: str = "ids") -> np.ndarray:
    """Coerce ``values`` to an int64 array, rejecting lossy inputs.

    Accepts any integer dtype (and object arrays of Python ints, which
    preserve values beyond ``2**53`` exactly).  Raises:

    * ``TypeError`` for float/complex/bool/string inputs — a float64
      detour truncates above ``2**53``; convert explicitly at the edge.
    * ``OverflowError`` for unsigned values above ``2**63 - 1`` (use
      :func:`as_uint64_keys` when the bit pattern is what matters).

    Parameters
    ----------
    values : array_like
        Ids; any shape.
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of int64
        Same shape as ``values``; a view-free copy only when needed.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    kind = arr.dtype.kind
    if kind == "i":
        return arr if arr.dtype == np.int64 else arr.astype(np.int64)
    if kind == "u":
        if arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise OverflowError(
                f"{name}: unsigned values exceed int64 range; use "
                "as_uint64_keys for bit-pattern keys"
            )
        return arr.astype(np.int64)
    if kind == "O":
        # Python ints of any magnitude land here; astype raises
        # OverflowError past int64, and non-ints raise TypeError.
        if not all(isinstance(v, (int, np.integer)) for v in arr.flat):
            raise TypeError(
                f"{name}: object array must contain only integers"
            )
        return arr.astype(np.int64)
    raise TypeError(
        f"{name}: expected integer values, got dtype {arr.dtype}; "
        "float inputs are refused because float64 cannot represent "
        "integers above 2**53 exactly"
    )


def as_uint64_keys(values, name: str = "keys") -> np.ndarray:
    """Coerce integers to uint64 bit patterns for the splitmix64 family.

    Signed inputs wrap two's-complement (``-1 -> 2**64 - 1``): hashing
    cares about the 64-bit pattern, not the signed value, and this is the
    exact behaviour of the previous unchecked ``astype``.  Float, string
    and object inputs raise ``TypeError`` — hashing a silently truncated
    float key is precisely the nondeterminism class this repo has had to
    fix twice.

    Parameters
    ----------
    values : array_like
        Integer keys; any shape.  Booleans are accepted (0/1 masks are
        legitimate hash inputs).
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of uint64
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    kind = arr.dtype.kind
    if kind == "u":
        return arr if arr.dtype == np.uint64 else arr.astype(np.uint64)
    if kind in ("i", "b"):
        with np.errstate(over="ignore"):
            return arr.astype(np.uint64)
    if kind == "O":
        ints = as_int64_ids(arr, name=name)
        with np.errstate(over="ignore"):
            return ints.astype(np.uint64)
    raise TypeError(
        f"{name}: expected integer keys, got dtype {arr.dtype}; refusing "
        "a lossy float round-trip into the hash"
    )


def as_float64_rows(values, name: str = "rows") -> np.ndarray:
    """Coerce numeric row payloads to float64, rejecting non-numerics.

    Integer and float inputs upcast exactly; strings/objects raise
    ``TypeError`` instead of numpy's element-wise best effort.

    Parameters
    ----------
    values : array_like
        Row payloads; any shape.
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of float64
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    if arr.dtype == np.float64:
        return arr
    if arr.dtype.kind in ("f", "i", "u", "b"):
        return arr.astype(np.float64)
    raise TypeError(
        f"{name}: expected numeric rows, got dtype {arr.dtype}"
    )


def as_float32_rows(
    values, name: str = "rows", rtol: float = 1e-6
) -> np.ndarray:
    """Coerce numeric rows to float32, *checking* the downcast is benign.

    float64 -> float32 rounding keeps every ordinary value within
    ``2**-24`` relative error, so a downcast only goes wrong in two
    ways this function refuses to hide:

    * **overflow** — magnitudes above ~``3.4e38`` become ``inf``;
    * **underflow / precision collapse** — values that round to
      something further than ``rtol`` (relative, against the float64
      original) away, e.g. tiny subnormals flushing to zero.

    Either raises ``ValueError`` naming the worst offender instead of
    silently serving corrupted rows.  Non-finite inputs (``nan``/``inf``
    already present upstream) pass through unchanged — they are not the
    downcast's fault and the training lane has its own checks.

    Parameters
    ----------
    values : array_like
        Row payloads; any shape.
    name : str, optional
        Label used in error messages.
    rtol : float, optional
        Maximum tolerated relative error of the round trip.  The default
        ``1e-6`` is ~8x the float32 rounding unit: loose enough for any
        healthy embedding row, tight enough to catch lane abuse.

    Returns
    -------
    numpy.ndarray of float32
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    if arr.dtype == np.float32:
        return arr
    if arr.dtype.kind not in ("f", "i", "u", "b"):
        raise TypeError(
            f"{name}: expected numeric rows, got dtype {arr.dtype}"
        )
    # Overflow-to-inf and inf-inf are exactly what the round-trip check
    # below diagnoses; numpy's transit warnings add nothing.
    with np.errstate(over="ignore", invalid="ignore"):
        cast = arr.astype(np.float32)
    if arr.dtype.kind == "f" and arr.size:
        wide = arr.astype(np.float64, copy=False)
        back = cast.astype(np.float64)
        finite = np.isfinite(wide)
        with np.errstate(invalid="ignore"):
            err = np.abs(back - wide)
        bad = finite & (err > rtol * np.abs(wide))
        if bad.any():
            worst = np.unravel_index(
                int(np.argmax(np.where(bad, err, -np.inf))), arr.shape
            )
            raise ValueError(
                f"{name}: float32 downcast exceeds rtol={rtol:g} at index "
                f"{worst}: {wide[worst]!r} -> {back[worst]!r}"
            )
    return cast


def as_float_rows(values, name: str = "rows") -> np.ndarray:
    """Lane-preserving float coercion for kernels serving both lanes.

    Float inputs pass through in their own lane (float32 stays float32,
    float64 stays float64); integer and bool inputs upcast exactly to
    float64, the training lane's default.  Strings/objects raise
    ``TypeError``.  Use this in kernels like ``pool_rows`` whose output
    lane should follow the source rows rather than impose one.

    Parameters
    ----------
    values : array_like
        Row payloads; any shape.
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of float32 or float64
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    if arr.dtype.kind == "f":
        return arr
    if arr.dtype.kind in ("i", "u", "b"):
        return arr.astype(np.float64)
    raise TypeError(
        f"{name}: expected numeric rows, got dtype {arr.dtype}"
    )


@dataclass(frozen=True)
class DTypePolicy:
    """One dtype lane of the model plane, as an explicit object.

    A policy bundles the row dtype, the slot dtype of the id -> slot
    maps, and the tolerance a checked float32 downcast must meet.  Code
    that takes a policy — the dlrm stack, the shard store, the serving
    caches — never spells a dtype inline, so the train lane (float64
    rows, int64 slots) and the serve lane (float32 rows, int32 slots)
    differ only in which policy is threaded through.

    Attributes
    ----------
    name : str
        Lane label used in reprs and error messages.
    row_dtype : numpy dtype
        Dtype of every row payload on this lane.
    slot_dtype : numpy dtype
        Dtype of slot vectors (``IdSlotTable`` values, free lists).
    downcast_rtol : float
        Relative tolerance for entering this lane from float64; see
        :func:`as_float32_rows`.
    """

    name: str
    row_dtype: np.dtype
    slot_dtype: np.dtype
    downcast_rtol: float = 1e-6

    def as_rows(self, values, name: str = "rows") -> np.ndarray:
        """Coerce ``values`` onto this lane's row dtype, checked.

        float64 lanes use :func:`as_float64_rows` (exact); float32 lanes
        use :func:`as_float32_rows` with this policy's tolerance.
        """
        if self.row_dtype == np.dtype(np.float64):
            return as_float64_rows(values, name=name)
        if self.row_dtype == np.dtype(np.float32):
            return as_float32_rows(values, name=name, rtol=self.downcast_rtol)
        raise TypeError(
            f"policy {self.name!r}: unsupported row dtype {self.row_dtype}"
        )

    def row_nbytes(self, dim: int) -> int:
        """Bytes of one ``dim``-wide row on this lane."""
        return int(dim) * np.dtype(self.row_dtype).itemsize

    def slot_nbytes(self) -> int:
        """Bytes of one slot entry on this lane."""
        return np.dtype(self.slot_dtype).itemsize


def as_rows(policy: DTypePolicy, values, name: str = "rows") -> np.ndarray:
    """Functional spelling of :meth:`DTypePolicy.as_rows`."""
    return policy.as_rows(values, name=name)


#: The training lane: exact float64 rows, int64 slots.
TRAIN = DTypePolicy(
    "train", np.dtype(np.float64), np.dtype(np.int64), downcast_rtol=0.0
)

#: The serving lane: float32 rows (half the bytes of the train lane),
#: int32 slots, entered through one checked downcast at publish time.
SERVE = DTypePolicy(
    "serve", np.dtype(np.float32), np.dtype(np.int32), downcast_rtol=1e-6
)
