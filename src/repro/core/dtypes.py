"""Checked dtype coercion for ids, routing keys, and row payloads.

The hot-path dtype contract (int64 ids, uint64 routing keys, float64
rows) is enforced statically by ``repro.analysis``'s ``dtype-discipline``
rule; this module is the *runtime* half of that contract.  A bare
``np.asarray(x).astype(np.int64)`` silently accepts float and object
inputs — a float64 round-trip collapses every integer above ``2**53``
onto its even neighbour, which for routing keys means two distinct users
silently share a ring position in some processes and not others.  The
coercers here accept exactly the integer family and *raise* on anything
lossy, so the failure is at the call site instead of a week later in a
placement diff.

This module deliberately lives outside the hot-module list: inspecting
an input's dtype requires one dtype-less ``np.asarray`` probe, which the
lint rule would (correctly) refuse anywhere else.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_int64_ids", "as_uint64_keys", "as_float64_rows"]


def as_int64_ids(values, name: str = "ids") -> np.ndarray:
    """Coerce ``values`` to an int64 array, rejecting lossy inputs.

    Accepts any integer dtype (and object arrays of Python ints, which
    preserve values beyond ``2**53`` exactly).  Raises:

    * ``TypeError`` for float/complex/bool/string inputs — a float64
      detour truncates above ``2**53``; convert explicitly at the edge.
    * ``OverflowError`` for unsigned values above ``2**63 - 1`` (use
      :func:`as_uint64_keys` when the bit pattern is what matters).

    Parameters
    ----------
    values : array_like
        Ids; any shape.
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of int64
        Same shape as ``values``; a view-free copy only when needed.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    kind = arr.dtype.kind
    if kind == "i":
        return arr if arr.dtype == np.int64 else arr.astype(np.int64)
    if kind == "u":
        if arr.size and int(arr.max()) > np.iinfo(np.int64).max:
            raise OverflowError(
                f"{name}: unsigned values exceed int64 range; use "
                "as_uint64_keys for bit-pattern keys"
            )
        return arr.astype(np.int64)
    if kind == "O":
        # Python ints of any magnitude land here; astype raises
        # OverflowError past int64, and non-ints raise TypeError.
        if not all(isinstance(v, (int, np.integer)) for v in arr.flat):
            raise TypeError(
                f"{name}: object array must contain only integers"
            )
        return arr.astype(np.int64)
    raise TypeError(
        f"{name}: expected integer values, got dtype {arr.dtype}; "
        "float inputs are refused because float64 cannot represent "
        "integers above 2**53 exactly"
    )


def as_uint64_keys(values, name: str = "keys") -> np.ndarray:
    """Coerce integers to uint64 bit patterns for the splitmix64 family.

    Signed inputs wrap two's-complement (``-1 -> 2**64 - 1``): hashing
    cares about the 64-bit pattern, not the signed value, and this is the
    exact behaviour of the previous unchecked ``astype``.  Float, string
    and object inputs raise ``TypeError`` — hashing a silently truncated
    float key is precisely the nondeterminism class this repo has had to
    fix twice.

    Parameters
    ----------
    values : array_like
        Integer keys; any shape.  Booleans are accepted (0/1 masks are
        legitimate hash inputs).
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of uint64
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    kind = arr.dtype.kind
    if kind == "u":
        return arr if arr.dtype == np.uint64 else arr.astype(np.uint64)
    if kind in ("i", "b"):
        with np.errstate(over="ignore"):
            return arr.astype(np.uint64)
    if kind == "O":
        ints = as_int64_ids(arr, name=name)
        with np.errstate(over="ignore"):
            return ints.astype(np.uint64)
    raise TypeError(
        f"{name}: expected integer keys, got dtype {arr.dtype}; refusing "
        "a lossy float round-trip into the hash"
    )


def as_float64_rows(values, name: str = "rows") -> np.ndarray:
    """Coerce numeric row payloads to float64, rejecting non-numerics.

    Integer and float inputs upcast exactly; strings/objects raise
    ``TypeError`` instead of numpy's element-wise best effort.

    Parameters
    ----------
    values : array_like
        Row payloads; any shape.
    name : str, optional
        Label used in error messages.

    Returns
    -------
    numpy.ndarray of float64
        Same shape as ``values``.
    """
    arr = np.asarray(values)  # dtype inspected below; this is the coercer
    if arr.dtype == np.float64:
        return arr
    if arr.dtype.kind in ("f", "i", "u", "b"):
        return arr.astype(np.float64)
    raise TypeError(
        f"{name}: expected numeric rows, got dtype {arr.dtype}"
    )
