"""Usage-based LoRA table pruning (Algorithm 1, Section IV-C).

Most embedding ids are updated rarely; allocating an adapter row for each
wastes memory.  LiveUpdate tracks per-id update frequency over a sliding
window of ``T`` iterations, keeps only ids updated at least ``tau_prune``
times (the *active set*), and resizes the LoRA table to
``clamp(|I_active|, C_min, C_max)`` (Eq. 4).

``tau_prune`` can also be derived dynamically: given the access histogram,
pick the frequency at the top-``hot_fraction`` boundary (the paper uses the
top-10% boundary, because those ids absorb ~93.8% of traffic, Fig. 12).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

__all__ = ["PruneDecision", "UsageTracker", "dynamic_tau_from_counts"]


@dataclass
class PruneDecision:
    """Output of one Algorithm-1 invocation for a single table."""

    active_ids: np.ndarray
    new_capacity: int
    tau_used: float


def dynamic_tau_from_counts(
    counts: np.ndarray, hot_fraction: float = 0.10
) -> float:
    """Frequency at the top-``hot_fraction`` boundary of an access histogram.

    Ids at or above this count are "hot" in the paper's sense; pruning at
    this threshold retains roughly the top 10% of ids.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        return 1.0
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    k = max(1, int(round(hot_fraction * counts.size)))
    boundary = np.sort(counts)[::-1][k - 1]
    return float(max(boundary, 1.0))


class UsageTracker:
    """Sliding-window update-frequency tracker for one table.

    Args:
        window_iters: length ``T`` of the sliding window, in iterations.
        tau_prune: static activity threshold (updates per window); ids below
            it are pruned.  May be overridden dynamically per decision.
        c_min: capacity floor (paper default: 1/50 of the full table).
        c_max: capacity ceiling (the full table size).
    """

    def __init__(
        self,
        window_iters: int,
        tau_prune: float,
        c_min: int,
        c_max: int,
    ) -> None:
        if window_iters <= 0:
            raise ValueError("window must be positive")
        if c_min <= 0 or c_max < c_min:
            raise ValueError("need 0 < c_min <= c_max")
        self.window_iters = window_iters
        self.tau_prune = tau_prune
        self.c_min = c_min
        self.c_max = c_max
        self._history: deque[np.ndarray] = deque()
        self._counts: Counter[int] = Counter()
        self.iteration = 0

    # -------------------------------------------------------------- tracking
    def record_update(self, ids: np.ndarray) -> None:
        """Register the ids touched by one training iteration."""
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        self._history.append(ids)
        self._counts.update(int(i) for i in ids)
        self.iteration += 1
        while len(self._history) > self.window_iters:
            expired = self._history.popleft()
            for i in expired:
                i = int(i)
                self._counts[i] -= 1
                if self._counts[i] <= 0:
                    del self._counts[i]

    def frequency(self, idx: int) -> int:
        """Updates of ``idx`` within the current window."""
        return self._counts.get(int(idx), 0)

    @property
    def num_tracked(self) -> int:
        return len(self._counts)

    # -------------------------------------------------------------- decision
    def active_set(self, tau: float | None = None) -> np.ndarray:
        """Ids with ``f_i >= tau`` (Algorithm 1, lines 6-8)."""
        tau = self.tau_prune if tau is None else tau
        ids = [i for i, c in self._counts.items() if c >= tau]
        return np.array(sorted(ids), dtype=np.int64)

    def decide(self, tau: float | None = None) -> PruneDecision:
        """Full Algorithm-1 decision: active set + clamped capacity (Eq. 4)."""
        tau = self.tau_prune if tau is None else tau
        active = self.active_set(tau)
        capacity = int(min(max(len(active), self.c_min), self.c_max))
        return PruneDecision(active_ids=active, new_capacity=capacity, tau_used=tau)

    def refresh_tau_from_window(self, hot_fraction: float = 0.10) -> float:
        """Dynamically re-derive tau from the current window's histogram."""
        counts = np.array(list(self._counts.values()), dtype=np.float64)
        self.tau_prune = dynamic_tau_from_counts(counts, hot_fraction)
        return self.tau_prune
