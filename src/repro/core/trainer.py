"""Inference-side LoRA trainer (Fig. 7, online update path).

The trainer lives inside an inference node.  At a fixed cadence it samples
mini-batches from the inference-log ring buffer, runs a forward pass *through
the adapted embeddings* (``W_base + A B``), backpropagates only into the
LoRA factors (base weights and dense layers stay frozen), and applies the
dynamic rank / pruning controllers every ``adapt_interval`` iterations.

Every updated id is reported to the :class:`~repro.core.hot_index.HotIndexFilter`
so the serving path knows which lookups need the LoRA adjustment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.stream import InferenceLogBuffer
from ..dlrm.model import DLRM
from ..obs.trace import Tracer
from .hot_index import HotIndexFilter
from .lora import LoRACollection
from .pruning import UsageTracker
from .rank_adaptation import RankMonitor

__all__ = ["TrainerConfig", "TrainerReport", "LoRATrainer"]


@dataclass
class TrainerConfig:
    """Hyper-parameters of the online trainer.

    Attributes:
        rank: initial LoRA rank.
        lr: learning rate for A/B factors.
        batch_size: mini-batch size sampled from the ring buffer.
        adapt_interval: iterations between Algorithm-1 invocations.
        alpha: PCA variance threshold for rank adaptation (Eq. 2).
        dynamic_rank: disable to keep ``rank`` fixed (the LiveUpdate-8 /
            LiveUpdate-16/64 ablations of Table III).
        dynamic_prune: disable to keep every slot allocated.
        dynamic_tau: re-derive the pruning threshold from the live access
            histogram so it tracks the top-``hot_fraction`` boundary
            (Section IV-C's tau maintenance).
        hot_fraction: boundary for the dynamic threshold (paper: top 10%).
        rank_hysteresis: only resize when the recommended rank differs from
            the current one by at least this much.  Resizing re-orients the
            shared ``B`` factors, which costs accumulated adaptation, so
            chasing +-1 fluctuations is a net loss (the paper's averaging
            over the interval serves the same smoothing purpose).

    Rank changes are applied asymmetrically: *growth* happens immediately
    (extra directions are needed to capture the updates), while *shrink*
    decisions are deferred to the next adapter reset (hourly merge/full
    sync), because truncating a live adapter measurably and persistently
    costs accuracy, whereas shrinking an empty one is free.
        capacity_fraction: initial LoRA capacity as a fraction of each
            table (paper initialises at 10%).
        c_min_fraction: capacity floor, default 1/50 of the table.
        grad_snapshot_rows: max gradient rows kept for PCA snapshots.
        seed: RNG seed for buffer sampling.
    """

    rank: int = 8
    lr: float = 0.05
    batch_size: int = 256
    adapt_interval: int = 32
    alpha: float = 0.8
    dynamic_rank: bool = True
    dynamic_prune: bool = True
    dynamic_tau: bool = True
    hot_fraction: float = 0.10
    capacity_fraction: float = 0.10
    c_min_fraction: float = 0.02
    usage_window: int = 128
    tau_prune: float = 2.0
    grad_snapshot_rows: int = 512
    min_rank: int = 2
    max_rank: int = 64
    rank_hysteresis: int = 2
    seed: int = 0


@dataclass
class TrainerReport:
    """Rolling counters exposed for experiments."""

    steps: int = 0
    samples_seen: int = 0
    rows_updated: int = 0
    rank_changes: int = 0
    prune_events: int = 0
    train_seconds: float = 0.0
    current_ranks: list[int] = field(default_factory=list)
    current_capacities: list[int] = field(default_factory=list)


class LoRATrainer:
    """Trains LoRA adapters against a frozen serving model."""

    def __init__(
        self,
        model: DLRM,
        buffer: InferenceLogBuffer,
        config: TrainerConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.model = model
        self.buffer = buffer
        self.config = config or TrainerConfig()
        # Step timing goes through a tracer span (wall-clock by default),
        # so report.train_seconds and span durations share one source.
        self.tracer = tracer if tracer is not None else Tracer()
        cfg = self.config
        dims = [t.dim for t in model.embeddings]
        capacities = [
            max(8, int(cfg.capacity_fraction * t.num_rows))
            for t in model.embeddings
        ]
        self.lora = LoRACollection(
            dims,
            cfg.rank,
            capacities,
            seed=cfg.seed,
            universes=[t.num_rows for t in model.embeddings],
        )
        # Table sizes are known, so every field gets the dense O(1)-per-id
        # hot-index layout (ids here are embedding row indices).
        self.hot_filter = HotIndexFilter(
            len(dims), num_rows=[t.num_rows for t in model.embeddings]
        )
        self.rank_monitors = [
            RankMonitor(
                alpha=cfg.alpha, min_rank=cfg.min_rank, max_rank=cfg.max_rank
            )
            for _ in dims
        ]
        self.usage = [
            UsageTracker(
                window_iters=cfg.usage_window,
                tau_prune=cfg.tau_prune,
                c_min=max(4, int(cfg.c_min_fraction * t.num_rows)),
                c_max=t.num_rows,
            )
            for t in model.embeddings
        ]
        self._grad_snapshots: list[deque[np.ndarray]] = [
            deque(maxlen=8) for _ in dims
        ]
        self._pending_shrink: dict[int, int] = {}
        self._rng = np.random.default_rng(cfg.seed)
        self.report = TrainerReport(
            current_ranks=[cfg.rank] * len(dims),
            current_capacities=list(capacities),
        )

    # ------------------------------------------------------------- inference
    def overlay(self):
        """Embedding overlay for the serving path (hot ids only)."""
        return self.lora.overlay(hot_filter=self.hot_filter)

    # -------------------------------------------------------------- training
    def train_step(self) -> float | None:
        """One mini-batch step from the ring buffer; returns the loss.

        Returns ``None`` when the buffer has no data yet.
        """
        batch = self.buffer.sample_minibatch(self.config.batch_size, self._rng)
        if batch is None:
            return None
        return self.train_on(batch.dense, batch.sparse_ids, batch.labels)

    def train_on(
        self, dense: np.ndarray, sparse_ids: np.ndarray, labels: np.ndarray
    ) -> float:
        """Train the adapters on an explicit batch (testing hook)."""
        cfg = self.config
        with self.tracer.span("core.trainer.step") as span:
            cache = self.model.forward(
                dense, sparse_ids, overlay=self.lora.overlay()
            )
            result = self.model.backward(cache, labels)
            for f, grad in enumerate(result.embedding_grads):
                adapter = self.lora[f]
                updated = adapter.accumulate_grad(grad.indices, grad.rows, cfg.lr)
                self.report.rows_updated += updated
                self.usage[f].record_update(grad.indices)
                self.hot_filter.mark(f, grad.indices)
                snap = self._grad_snapshots[f]
                snap.append(grad.rows[: cfg.grad_snapshot_rows])
            self.report.steps += 1
            self.report.samples_seen += int(labels.shape[0])
            if self.report.steps % cfg.adapt_interval == 0:
                self._adapt()
        self.report.train_seconds += span.duration
        return result.loss

    # ------------------------------------------------------------ adaptation
    def _gradient_snapshot(self, field: int) -> np.ndarray:
        rows = list(self._grad_snapshots[field])
        if not rows:
            return np.zeros((0, self.model.embeddings[field].dim))
        snap = np.concatenate(rows, axis=0)
        return snap[-self.config.grad_snapshot_rows :]

    def _adapt(self) -> None:
        """Algorithm 1: rank adaptation + usage-based pruning per table."""
        cfg = self.config
        for f, adapter in enumerate(self.lora):
            if cfg.dynamic_rank:
                snap = self._gradient_snapshot(f)
                if snap.shape[0] >= 2:
                    self.rank_monitors[f].observe(snap)
                    new_rank = self.rank_monitors[f].recommended_rank(
                        fallback=adapter.rank
                    )
                    if new_rank >= adapter.rank + cfg.rank_hysteresis:
                        adapter.resize_rank(new_rank)
                        self._pending_shrink.pop(f, None)
                        self.report.rank_changes += 1
                    elif new_rank <= adapter.rank - cfg.rank_hysteresis:
                        self._pending_shrink[f] = new_rank
                    self.report.current_ranks[f] = adapter.rank
            if cfg.dynamic_prune:
                if cfg.dynamic_tau and self.usage[f].num_tracked:
                    self.usage[f].refresh_tau_from_window(cfg.hot_fraction)
                decision = self.usage[f].decide()
                stale = np.setdiff1d(
                    adapter.active_ids, decision.active_ids, assume_unique=True
                )
                adapter.deactivate_batch(stale)
                if decision.new_capacity != adapter.capacity:
                    adapter.resize_capacity(decision.new_capacity)
                    self.report.prune_events += 1
                self.report.current_capacities[f] = adapter.capacity

    # --------------------------------------------------------------- merging
    def merge_and_reset(self) -> int:
        """Fold all adapters into the base tables (pre-full-sync step).

        Returns the total number of merged rows.  Also clears the hot filter
        because post-merge, base rows already carry the update.
        """
        merged = 0
        for f, adapter in enumerate(self.lora):
            merged += adapter.merge_into(self.model.embeddings[f].weight)
            pending = self._pending_shrink.pop(f, None)
            if pending is not None and pending < adapter.rank:
                adapter.resize_rank(pending)  # free: the adapter is empty
                self.report.rank_changes += 1
                self.report.current_ranks[f] = adapter.rank
        self.hot_filter.clear()
        return merged

    def memory_bytes(self) -> int:
        """Current adapter footprint (Fig. 17's metric)."""
        return self.lora.nbytes
