"""LiveUpdate core: LoRA adapters, dynamic rank adaptation, usage-based
pruning, the inference-side trainer, hot-index filtering, sparse
data-parallel synchronization, and the tiered update strategy.

Kernel layer
------------
The id-granular hot paths (LoRA slot translation, hot-index membership,
consistent-hash routing) are built on :mod:`repro.core.kernels`: a
process-stable :func:`~repro.core.kernels.splitmix64` hash, the
array-native :class:`~repro.core.kernels.IdSlotTable` id -> slot map,
offset-based segment reductions (:func:`~repro.core.kernels.pool_rows`,
:func:`~repro.core.kernels.group_rows_sum`) and the epoch-stamped
:class:`~repro.core.kernels.TouchedRows` delta tracker.  Every per-batch
operation above them — ``delta_rows``, ``apply_to``, ``accumulate_grad``,
``is_hot``, ``mark``, ``route``, pooled embedding forward/backward — is
expressed as gather/scatter + batched matmuls over whole arrays; per-id
Python loops only survive on cold control paths (saturated bounded-load
probes).  ``benchmarks/bench_hotpath_throughput.py`` and
``benchmarks/bench_dlrm_train_throughput.py`` track the resulting
ids/sec against per-id reference implementations.

Lazy imports
------------
Submodules load on first attribute access (PEP 562) rather than at
package import.  ``repro.core.kernels`` sits *below* the DLRM substrate
(``repro.dlrm.embedding`` pools and stamps through it), while
``repro.core.trainer`` and friends sit *above* it — eager package-level
imports would turn that layering into an import cycle.
"""

from __future__ import annotations

import importlib

# Public name -> defining submodule.  Resolved lazily on first access.
_EXPORTS = {
    "as_int64_ids": "dtypes",
    "as_uint64_keys": "dtypes",
    "as_float64_rows": "dtypes",
    "splitmix64": "kernels",
    "hash_combine": "kernels",
    "stable_str_hash": "kernels",
    "sorted_find": "kernels",
    "IdSlotTable": "kernels",
    "pool_rows": "kernels",
    "segment_pool": "kernels",
    "group_rows_sum": "kernels",
    "TouchedRows": "kernels",
    "LoRAAdapter": "lora",
    "LoRACollection": "lora",
    "cumulative_variance": "rank_adaptation",
    "rank_for_variance": "rank_adaptation",
    "lowrank_approximation": "rank_adaptation",
    "approximation_error": "rank_adaptation",
    "RankMonitor": "rank_adaptation",
    "UsageTracker": "pruning",
    "PruneDecision": "pruning",
    "dynamic_tau_from_counts": "pruning",
    "HotIndexFilter": "hot_index",
    "LoRATrainer": "trainer",
    "TrainerConfig": "trainer",
    "TrainerReport": "trainer",
    "SparseLoRASynchronizer": "sync",
    "SyncReport": "sync",
    "priority_merge": "sync",
    "average_merge": "sync",
    "priority_merge_rows": "sync",
    "average_merge_rows": "sync",
    "DriftMonitor": "drift",
    "DriftSample": "drift",
    "AdaptiveSyncPolicy": "drift",
    "LiveUpdate": "liveupdate",
    "LiveUpdateConfig": "liveupdate",
}

_SUBMODULES = frozenset(
    {
        "drift",
        "dtypes",
        "hot_index",
        "kernels",
        "liveupdate",
        "lora",
        "pruning",
        "rank_adaptation",
        "sync",
        "trainer",
    }
)

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        module = importlib.import_module(f".{_EXPORTS[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__) | _SUBMODULES)
