"""LiveUpdate core: LoRA adapters, dynamic rank adaptation, usage-based
pruning, the inference-side trainer, hot-index filtering, sparse
data-parallel synchronization, and the tiered update strategy.

Kernel layer
------------
The id-granular hot paths (LoRA slot translation, hot-index membership,
consistent-hash routing) are built on :mod:`repro.core.kernels`: a
process-stable :func:`~repro.core.kernels.splitmix64` hash and the
array-native :class:`~repro.core.kernels.IdSlotTable` id -> slot map.
Every per-batch operation above them — ``delta_rows``, ``apply_to``,
``accumulate_grad``, ``is_hot``, ``mark``, ``route`` — is expressed as
gather/scatter + batched matmuls over whole arrays; per-id Python loops
only survive on cold control paths (saturated bounded-load probes).
``benchmarks/bench_hotpath_throughput.py`` tracks the resulting ids/sec
against per-id reference implementations.
"""

from .drift import AdaptiveSyncPolicy, DriftMonitor, DriftSample
from .hot_index import HotIndexFilter
from .kernels import IdSlotTable, hash_combine, splitmix64
from .liveupdate import LiveUpdate, LiveUpdateConfig
from .lora import LoRAAdapter, LoRACollection
from .pruning import PruneDecision, UsageTracker, dynamic_tau_from_counts
from .rank_adaptation import (
    RankMonitor,
    approximation_error,
    cumulative_variance,
    lowrank_approximation,
    rank_for_variance,
)
from .sync import (
    SparseLoRASynchronizer,
    SyncReport,
    average_merge,
    average_merge_rows,
    priority_merge,
    priority_merge_rows,
)
from .trainer import LoRATrainer, TrainerConfig, TrainerReport

__all__ = [
    "splitmix64",
    "hash_combine",
    "IdSlotTable",
    "LoRAAdapter",
    "LoRACollection",
    "cumulative_variance",
    "rank_for_variance",
    "lowrank_approximation",
    "approximation_error",
    "RankMonitor",
    "UsageTracker",
    "PruneDecision",
    "dynamic_tau_from_counts",
    "HotIndexFilter",
    "LoRATrainer",
    "TrainerConfig",
    "TrainerReport",
    "SparseLoRASynchronizer",
    "SyncReport",
    "priority_merge",
    "average_merge",
    "priority_merge_rows",
    "average_merge_rows",
    "DriftMonitor",
    "DriftSample",
    "AdaptiveSyncPolicy",
    "LiveUpdate",
    "LiveUpdateConfig",
]
