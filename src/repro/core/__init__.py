"""LiveUpdate core: LoRA adapters, dynamic rank adaptation, usage-based
pruning, the inference-side trainer, hot-index filtering, sparse
data-parallel synchronization, and the tiered update strategy."""

from .drift import AdaptiveSyncPolicy, DriftMonitor, DriftSample
from .hot_index import HotIndexFilter
from .liveupdate import LiveUpdate, LiveUpdateConfig
from .lora import LoRAAdapter, LoRACollection
from .pruning import PruneDecision, UsageTracker, dynamic_tau_from_counts
from .rank_adaptation import (
    RankMonitor,
    approximation_error,
    cumulative_variance,
    lowrank_approximation,
    rank_for_variance,
)
from .sync import (
    SparseLoRASynchronizer,
    SyncReport,
    average_merge,
    priority_merge,
)
from .trainer import LoRATrainer, TrainerConfig, TrainerReport

__all__ = [
    "LoRAAdapter",
    "LoRACollection",
    "cumulative_variance",
    "rank_for_variance",
    "lowrank_approximation",
    "approximation_error",
    "RankMonitor",
    "UsageTracker",
    "PruneDecision",
    "dynamic_tau_from_counts",
    "HotIndexFilter",
    "LoRATrainer",
    "TrainerConfig",
    "TrainerReport",
    "SparseLoRASynchronizer",
    "SyncReport",
    "priority_merge",
    "average_merge",
    "DriftMonitor",
    "DriftSample",
    "AdaptiveSyncPolicy",
    "LiveUpdate",
    "LiveUpdateConfig",
]
