"""Model-drift monitoring and adaptive full-sync triggering.

The paper's tiered strategy uses a *fixed* hourly full sync to bound the
drift that accumulates while LoRA adapters chase local traffic (Fig. 8).
This module implements the natural extension the design implies: measure
drift directly and trigger the full sync only when it matters — saving
full-sync bandwidth when drift is slow and re-anchoring early when a trend
shifts the distribution quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dlrm.model import DLRM

__all__ = ["DriftSample", "DriftMonitor", "AdaptiveSyncPolicy"]


@dataclass
class DriftSample:
    """One drift observation."""

    time_s: float
    adapter_norm: float
    base_divergence: float

    @property
    def total(self) -> float:
        return self.adapter_norm + self.base_divergence


class DriftMonitor:
    """Tracks how far the serving state has drifted from its anchor.

    Two components:

    * **adapter norm** — Frobenius norm of the applied LoRA deltas (local
      adaptation that the anchor does not have);
    * **base divergence** — row-L2 distance between the node's base tables
      and the training cluster's replica (global updates the node has not
      received).
    """

    def __init__(self, anchor: DLRM) -> None:
        self._anchor_state = anchor.state_dict()
        self.samples: list[DriftSample] = []

    def re_anchor(self, model: DLRM) -> None:
        """Reset the reference point (called right after a full sync)."""
        self._anchor_state = model.state_dict()

    def observe(
        self,
        time_s: float,
        node_model: DLRM,
        lora_collection=None,
        reference: DLRM | None = None,
    ) -> DriftSample:
        """Record the current drift.

        Args:
            time_s: simulation time of the observation.
            node_model: the serving replica (base tables).
            lora_collection: optional adapters applied on top.
            reference: optional training-cluster replica; when given, base
                divergence is measured against it instead of the anchor.
        """
        adapter_norm = 0.0
        if lora_collection is not None:
            for adapter in lora_collection:
                ids = adapter.active_ids
                if ids.size:
                    adapter_norm += float(
                        np.linalg.norm(adapter.delta_rows(ids))
                    )
        divergence = 0.0
        rows = 0
        for f, table in enumerate(node_model.embeddings):
            ref = (
                reference.embeddings[f].weight
                if reference is not None
                else self._anchor_state[f"embeddings.{f}.weight"]
            )
            divergence += float(
                np.linalg.norm(table.weight - ref, axis=1).sum()
            )
            rows += table.num_rows
        sample = DriftSample(
            time_s=time_s,
            adapter_norm=adapter_norm,
            base_divergence=divergence / rows if rows else 0.0,
        )
        self.samples.append(sample)
        return sample

    def latest(self) -> DriftSample | None:
        return self.samples[-1] if self.samples else None


@dataclass
class AdaptiveSyncPolicy:
    """Decides when the mid-term full sync should fire.

    Fires when either the drift threshold is crossed or the maximum
    interval elapses (the paper's hourly cadence acts as the fallback).

    Attributes:
        drift_threshold: total drift triggering an early sync.
        max_interval_s: hard cap between syncs (paper: 3600 s).
        min_interval_s: refractory period to avoid sync storms.
    """

    drift_threshold: float = 1.0
    max_interval_s: float = 3600.0
    min_interval_s: float = 300.0
    _last_sync_s: float = field(default=0.0, repr=False)
    decisions: list[tuple[float, str]] = field(default_factory=list, repr=False)

    def should_sync(self, now: float, drift: DriftSample | None) -> bool:
        elapsed = now - self._last_sync_s
        if elapsed < self.min_interval_s:
            return False
        if elapsed >= self.max_interval_s:
            self.decisions.append((now, "interval"))
            return True
        if drift is not None and drift.total >= self.drift_threshold:
            self.decisions.append((now, "drift"))
            return True
        return False

    def mark_synced(self, now: float) -> None:
        self._last_sync_s = now
