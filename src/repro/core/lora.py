"""Low-rank adapter tables for embedding updates.

LiveUpdate represents the update to an embedding table as ``Delta W = A B``
with ``A in R^{|V| x k}`` and ``B in R^{k x d}``, ``k << d`` (Eq. 3).  To
keep memory at the paper's <2% target, ``A`` is *not* allocated for every
vocabulary row: an :class:`LoRAAdapter` owns a compact slot array of
``capacity`` rows plus an id -> slot map, so only active ids (survivors of
usage-based pruning) consume memory.

The id -> slot map is an :class:`~repro.core.kernels.IdSlotTable`, so every
algebra entry point (:meth:`~LoRAAdapter.delta_rows`,
:meth:`~LoRAAdapter.apply_to`, :meth:`~LoRAAdapter.accumulate_grad`) is one
batched translate + gather/scatter + matmul with no per-id Python loop.

Rank can be resized at runtime (dynamic rank adaptation, Section IV-C):
growth zero-pads the new directions; shrink projects ``A B`` onto its top-k
SVD subspace so the represented update is preserved as well as a rank-k
object can (Eckart-Young optimality).
"""

from __future__ import annotations

import numpy as np

from .kernels import IdSlotTable

__all__ = ["LoRAAdapter", "LoRACollection"]


class LoRAAdapter:
    """One table's low-rank update factors.

    Args:
        dim: embedding dimension ``d`` of the base table.
        rank: initial LoRA rank ``k``.
        capacity: number of ``A`` rows allocated (active-id budget).
        rng: initialiser for ``B`` (``A`` rows start at zero so the adapter
            is an exact no-op until trained, as in standard LoRA).
        universe: optional id-universe size (the base table's row count).
            When given, id -> slot translation uses the flat
            direct-address lane of :class:`IdSlotTable` — one gather, no
            search — and ids outside ``[0, universe)`` are never
            activated.
    """

    def __init__(
        self,
        dim: int,
        rank: int,
        capacity: int,
        rng: np.random.Generator | None = None,
        universe: int | None = None,
    ) -> None:
        if dim <= 0 or rank <= 0 or capacity <= 0:
            raise ValueError("dim, rank and capacity must be positive")
        if rank > dim:
            raise ValueError("rank cannot exceed the embedding dimension")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.rank = rank
        self.capacity = capacity
        self.universe = universe
        self.a = np.zeros((capacity, rank))
        self.b = rng.normal(0.0, 1.0 / np.sqrt(rank), size=(rank, dim))
        self._slots = IdSlotTable(capacity, universe=universe)
        self.evictions = 0

    # ------------------------------------------------------------------ state
    @property
    def num_active(self) -> int:
        return self._slots.size

    @property
    def active_ids(self) -> np.ndarray:
        """Active ids in ascending order."""
        return self._slots.keys

    @property
    def active_slots(self) -> np.ndarray:
        """Slots of the active ids, aligned with :attr:`active_ids`."""
        return self._slots.slots

    @property
    def nbytes(self) -> int:
        return int(self.a.nbytes + self.b.nbytes)

    def is_active(self, idx: int) -> bool:
        return self._slots.get(int(idx)) is not None

    def slot_of(self, idx: int) -> int | None:
        return self._slots.get(int(idx))

    def slots_of(self, ids: np.ndarray) -> np.ndarray:
        """Batch id -> slot translation; ``-1`` for inactive ids."""
        return self._slots.lookup(ids)

    # ------------------------------------------------------------ activation
    def activate(self, idx: int) -> int | None:
        """Ensure ``idx`` has a slot; returns the slot or None if full."""
        slots = self.activate_batch(np.array([int(idx)], dtype=np.int64))
        return None if slots[0] < 0 else int(slots[0])

    def activate_batch(self, ids: np.ndarray) -> np.ndarray:
        """Give every id a slot (first come first served); ``-1`` if full.

        Newly granted slots have their ``A`` rows zeroed so activation
        alone never changes the represented update.
        """
        slots, new_slots = self._slots.insert(ids)
        if new_slots.size:
            self.a[new_slots] = 0.0
        return slots

    def deactivate(self, idx: int) -> bool:
        """Release ``idx``'s slot (pruning); returns True if it was active."""
        return self.deactivate_batch(np.array([int(idx)], dtype=np.int64)) == 1

    def deactivate_batch(self, ids: np.ndarray) -> int:
        """Release the slots of every active id in ``ids``; returns count."""
        released = self._slots.remove(ids)
        if released.size:
            self.a[released] = 0.0
            self.evictions += released.size
        return int(released.size)

    # --------------------------------------------------------------- algebra
    def delta_rows(self, ids: np.ndarray) -> np.ndarray:
        """``Delta W`` rows for ``ids``; inactive ids contribute zeros."""
        ids = np.asarray(ids, dtype=np.int64)
        slots = self._slots.lookup(ids)
        hit = slots >= 0
        if hit.all():
            # Common serving case (the overlay only sends hot ids): one
            # gather + matmul, no zero-fill/scatter pass.
            return self.a[slots] @ self.b
        out = np.zeros((ids.shape[0], self.dim))
        if hit.any():
            out[hit] = self.a[slots[hit]] @ self.b
        return out

    def apply_to(self, ids: np.ndarray, base_rows: np.ndarray) -> np.ndarray:
        """``W_base[i] + A[i] B`` for the inference path (hot ids)."""
        return np.asarray(base_rows, dtype=np.float64) + self.delta_rows(ids)

    def accumulate_grad(
        self, ids: np.ndarray, grad_rows: np.ndarray, lr: float
    ) -> int:
        """SGD step on ``A`` rows and ``B`` from embedding-space gradients.

        ``dL/dA[i] = g_i B^T`` and ``dL/dB = sum_i A[i]^T g_i`` where ``g_i``
        is the gradient of the (adapted) embedding row.  Ids without a free
        slot are skipped (they keep flowing through the base table only).

        The batch is processed as whole-array matmuls.  ``B`` is read-only
        within a step, so rows with distinct ids commute; repeated ids are
        handled in occurrence order (round ``r`` applies every id's
        ``r``-th gradient row) to preserve the sequential SGD semantics.

        Returns the number of ids actually updated.
        """
        ids = np.asarray(ids, dtype=np.int64)
        grad_rows = np.asarray(grad_rows, dtype=np.float64)
        slots = self.activate_batch(ids)
        valid = slots >= 0
        updated = int(valid.sum())
        if not updated:
            return 0
        v_slots = slots[valid]
        grads = grad_rows[valid]
        occurrence = self._occurrence_index(v_slots)
        grad_b = np.zeros_like(self.b)
        for r in range(int(occurrence.max()) + 1):
            sel = occurrence == r
            s = v_slots[sel]
            g = grads[sel]
            grad_b += self.a[s].T @ g
            self.a[s] -= lr * (g @ self.b.T)
        self.b -= lr * grad_b
        return updated

    @staticmethod
    def _occurrence_index(slots: np.ndarray) -> np.ndarray:
        """Per-row count of earlier rows with the same slot (0 for first)."""
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        _, counts = np.unique(sorted_slots, return_counts=True)
        group_start = np.repeat(np.cumsum(counts) - counts, counts)
        occ = np.empty(slots.size, dtype=np.int64)
        occ[order] = np.arange(slots.size) - group_start
        return occ

    def scatter_rows(self, ids: np.ndarray, rows: np.ndarray) -> int:
        """Overwrite the ``A`` rows of ``ids`` (activating as needed).

        Ids that cannot get a slot are skipped; ``rows`` wider/narrower
        than the current rank are truncated / zero-padded.  Returns the
        number of rows written (the synchronizer's apply primitive).
        """
        ids = np.asarray(ids, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.float64)
        slots = self.activate_batch(ids)
        hit = slots >= 0
        if not hit.any():
            return 0
        width = min(rows.shape[1], self.rank)
        payload = np.zeros((int(hit.sum()), self.rank))
        payload[:, :width] = rows[hit][:, :width]
        self.a[slots[hit]] = payload
        return int(hit.sum())

    def gather_rows(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(present_ids, A rows)`` for the subset of ``ids`` that is active."""
        ids = np.asarray(ids, dtype=np.int64)
        slots = self._slots.lookup(ids)
        hit = slots >= 0
        return ids[hit], self.a[slots[hit]].copy()

    # ----------------------------------------------------------- reshaping
    def resize_rank(self, new_rank: int) -> None:
        """Change ``k`` preserving the represented update where possible."""
        if new_rank == self.rank:
            return
        if new_rank <= 0 or new_rank > self.dim:
            raise ValueError("invalid rank")
        if new_rank > self.rank:
            pad_a = np.zeros((self.capacity, new_rank - self.rank))
            rng = np.random.default_rng(self.rank * 7919 + new_rank)
            pad_b = rng.normal(
                0.0, 1.0 / np.sqrt(new_rank), size=(new_rank - self.rank, self.dim)
            )
            self.a = np.concatenate([self.a, pad_a], axis=1)
            self.b = np.concatenate([self.b, pad_b], axis=0)
        else:
            # Project the active update onto its best rank-k approximation.
            # The singular-value mass is split as sqrt(s) between the two
            # factors: leaving it all in A (a = u*s, b = vt) preserves the
            # product but unbalances subsequent gradient dynamics, which
            # measurably degrades further online training.
            active = np.sort(self._slots.slots)
            if active.size:
                delta = self.a[active] @ self.b
                u, s, vt = np.linalg.svd(delta, full_matrices=False)
                k = new_rank
                root_s = np.sqrt(s[:k])
                new_a_rows = u[:, :k] * root_s
                new_b = root_s[:, None] * vt[:k]
                # Guard against dead directions: a ~zero B row would stop
                # gradient flow (dA = B g) through that rank forever.  Give
                # such rows a small random direction; the matching A column
                # is ~zero too, so the represented update barely moves.
                rng = np.random.default_rng(self.rank * 7919 + k)
                floor = 0.1 / np.sqrt(k)
                for j in range(new_b.shape[0]):
                    if np.linalg.norm(new_b[j]) < floor:
                        new_b[j] = rng.normal(0.0, 1.0 / np.sqrt(k), self.dim)
                self.a = np.zeros((self.capacity, k))
                self.a[active] = new_a_rows
                self.b = new_b
            else:
                # Nothing learned yet: keep the leading learned directions.
                self.a = np.zeros((self.capacity, new_rank))
                self.b = self.b[:new_rank].copy()
        self.rank = new_rank

    def resize_capacity(self, new_capacity: int) -> None:
        """Grow/shrink the slot budget (Eq. 4's table-length control).

        Shrinking evicts the surplus ids with the *smallest* adapter norms
        (they carry the least update information; ties break toward lower
        ids).
        """
        if new_capacity == self.capacity:
            return
        if new_capacity <= 0:
            raise ValueError("capacity must be positive")
        if new_capacity < self.num_active:
            ids = self._slots.keys
            norms = np.linalg.norm(self.a[self._slots.slots], axis=1)
            surplus = self.num_active - new_capacity
            evict = ids[np.argsort(norms, kind="stable")[:surplus]]
            self.deactivate_batch(evict)
        # Repack survivors densely: ascending ids take slots 0..n-1.
        keys = self._slots.keys
        old_slots = self._slots.slots
        new_a = np.zeros((new_capacity, self.rank))
        new_a[: keys.size] = self.a[old_slots]
        self.a = new_a
        self._slots.rebuild_sorted(keys, new_capacity)
        self.capacity = new_capacity

    def reset(self) -> None:
        """Zero the adapter (after merging into base / full re-anchor)."""
        self.a[...] = 0.0
        self._slots.clear()

    def merge_into(self, weight: np.ndarray) -> int:
        """Fold ``A B`` into a base weight matrix in place; then reset.

        Returns the number of rows merged.
        """
        keys = self._slots.keys
        slots = self._slots.slots
        in_range = (keys >= 0) & (keys < weight.shape[0])
        if in_range.any():
            # Active ids are unique, so plain fancy-index += is safe.
            weight[keys[in_range]] += self.a[slots[in_range]] @ self.b
        merged = int(in_range.sum())
        self.reset()
        return merged


class LoRACollection:
    """One adapter per sparse field of a DLRM."""

    def __init__(
        self,
        dims: list[int],
        rank: int,
        capacities: list[int],
        seed: int = 0,
        universes: list[int] | None = None,
    ) -> None:
        if len(dims) != len(capacities):
            raise ValueError("dims and capacities must align")
        if universes is not None and len(universes) != len(dims):
            raise ValueError("universes must align with dims")
        rng = np.random.default_rng(seed)
        self.adapters = [
            LoRAAdapter(
                dim,
                rank,
                cap,
                rng=rng,
                universe=None if universes is None else universes[f],
            )
            for f, (dim, cap) in enumerate(zip(dims, capacities))
        ]

    def __len__(self) -> int:
        return len(self.adapters)

    def __getitem__(self, f: int) -> LoRAAdapter:
        return self.adapters[f]

    def __iter__(self):
        return iter(self.adapters)

    @property
    def nbytes(self) -> int:
        return sum(ad.nbytes for ad in self.adapters)

    @property
    def num_active(self) -> int:
        return sum(ad.num_active for ad in self.adapters)

    def overlay(self, hot_filter=None):
        """Embedding overlay closure for :meth:`repro.dlrm.DLRM.forward`.

        Args:
            hot_filter: optional callable ``(field, ids) -> bool mask``; only
                hot ids get the LoRA adjustment (the paper's Hot Index
                Filter short-circuits cold ids straight to the base table).
        """

        def _overlay(field: int, ids: np.ndarray, base_rows: np.ndarray):
            adapter = self.adapters[field]
            if hot_filter is None:
                return adapter.apply_to(ids, base_rows)
            mask = hot_filter(field, ids)
            if not mask.any():
                return base_rows
            if mask.all():
                return adapter.apply_to(ids, base_rows)
            out = np.array(base_rows, dtype=np.float64, copy=True)
            hot_ids = np.asarray(ids)[mask]
            out[mask] = adapter.apply_to(hot_ids, out[mask])
            return out

        return _overlay

    def reset(self) -> None:
        for ad in self.adapters:
            ad.reset()
