"""Low-rank adapter tables for embedding updates.

LiveUpdate represents the update to an embedding table as ``Delta W = A B``
with ``A in R^{|V| x k}`` and ``B in R^{k x d}``, ``k << d`` (Eq. 3).  To
keep memory at the paper's <2% target, ``A`` is *not* allocated for every
vocabulary row: an :class:`LoRAAdapter` owns a compact slot array of
``capacity`` rows plus an id -> slot map, so only active ids (survivors of
usage-based pruning) consume memory.

Rank can be resized at runtime (dynamic rank adaptation, Section IV-C):
growth zero-pads the new directions; shrink projects ``A B`` onto its top-k
SVD subspace so the represented update is preserved as well as a rank-k
object can (Eckart-Young optimality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoRAAdapter", "LoRACollection"]


@dataclass
class _SlotMap:
    """Bidirectional id <-> slot bookkeeping."""

    id_to_slot: dict[int, int]
    free_slots: list[int]

    @classmethod
    def empty(cls, capacity: int) -> "_SlotMap":
        return cls(id_to_slot={}, free_slots=list(range(capacity - 1, -1, -1)))


class LoRAAdapter:
    """One table's low-rank update factors.

    Args:
        dim: embedding dimension ``d`` of the base table.
        rank: initial LoRA rank ``k``.
        capacity: number of ``A`` rows allocated (active-id budget).
        rng: initialiser for ``B`` (``A`` rows start at zero so the adapter
            is an exact no-op until trained, as in standard LoRA).
    """

    def __init__(
        self,
        dim: int,
        rank: int,
        capacity: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0 or rank <= 0 or capacity <= 0:
            raise ValueError("dim, rank and capacity must be positive")
        if rank > dim:
            raise ValueError("rank cannot exceed the embedding dimension")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.rank = rank
        self.capacity = capacity
        self.a = np.zeros((capacity, rank))
        self.b = rng.normal(0.0, 1.0 / np.sqrt(rank), size=(rank, dim))
        self._slots = _SlotMap.empty(capacity)
        self.evictions = 0

    # ------------------------------------------------------------------ state
    @property
    def num_active(self) -> int:
        return len(self._slots.id_to_slot)

    @property
    def active_ids(self) -> np.ndarray:
        return np.fromiter(
            self._slots.id_to_slot.keys(), dtype=np.int64, count=self.num_active
        )

    @property
    def nbytes(self) -> int:
        return int(self.a.nbytes + self.b.nbytes)

    def is_active(self, idx: int) -> bool:
        return int(idx) in self._slots.id_to_slot

    def slot_of(self, idx: int) -> int | None:
        return self._slots.id_to_slot.get(int(idx))

    # ------------------------------------------------------------ activation
    def activate(self, idx: int) -> int | None:
        """Ensure ``idx`` has a slot; returns the slot or None if full."""
        idx = int(idx)
        slot = self._slots.id_to_slot.get(idx)
        if slot is not None:
            return slot
        if not self._slots.free_slots:
            return None
        slot = self._slots.free_slots.pop()
        self._slots.id_to_slot[idx] = slot
        self.a[slot] = 0.0
        return slot

    def deactivate(self, idx: int) -> bool:
        """Release ``idx``'s slot (pruning); returns True if it was active."""
        slot = self._slots.id_to_slot.pop(int(idx), None)
        if slot is None:
            return False
        self.a[slot] = 0.0
        self._slots.free_slots.append(slot)
        self.evictions += 1
        return True

    # --------------------------------------------------------------- algebra
    def delta_rows(self, ids: np.ndarray) -> np.ndarray:
        """``Delta W`` rows for ``ids``; inactive ids contribute zeros."""
        ids = np.asarray(ids, dtype=np.int64)
        out = np.zeros((ids.shape[0], self.dim))
        for j, i in enumerate(ids):
            slot = self._slots.id_to_slot.get(int(i))
            if slot is not None:
                out[j] = self.a[slot] @ self.b
        return out

    def apply_to(self, ids: np.ndarray, base_rows: np.ndarray) -> np.ndarray:
        """``W_base[i] + A[i] B`` for the inference path (hot ids)."""
        return np.asarray(base_rows, dtype=np.float64) + self.delta_rows(ids)

    def accumulate_grad(
        self, ids: np.ndarray, grad_rows: np.ndarray, lr: float
    ) -> int:
        """SGD step on ``A`` rows and ``B`` from embedding-space gradients.

        ``dL/dA[i] = g_i B^T`` and ``dL/dB = sum_i A[i]^T g_i`` where ``g_i``
        is the gradient of the (adapted) embedding row.  Ids without a free
        slot are skipped (they keep flowing through the base table only).

        Returns the number of ids actually updated.
        """
        ids = np.asarray(ids, dtype=np.int64)
        grad_rows = np.asarray(grad_rows, dtype=np.float64)
        grad_b = np.zeros_like(self.b)
        updated = 0
        for i, g in zip(ids, grad_rows):
            slot = self.activate(int(i))
            if slot is None:
                continue
            grad_b += np.outer(self.a[slot], g)
            self.a[slot] -= lr * (self.b @ g)
            updated += 1
        self.b -= lr * grad_b
        return updated

    # ----------------------------------------------------------- reshaping
    def resize_rank(self, new_rank: int) -> None:
        """Change ``k`` preserving the represented update where possible."""
        if new_rank == self.rank:
            return
        if new_rank <= 0 or new_rank > self.dim:
            raise ValueError("invalid rank")
        if new_rank > self.rank:
            pad_a = np.zeros((self.capacity, new_rank - self.rank))
            rng = np.random.default_rng(self.rank * 7919 + new_rank)
            pad_b = rng.normal(
                0.0, 1.0 / np.sqrt(new_rank), size=(new_rank - self.rank, self.dim)
            )
            self.a = np.concatenate([self.a, pad_a], axis=1)
            self.b = np.concatenate([self.b, pad_b], axis=0)
        else:
            # Project the active update onto its best rank-k approximation.
            # The singular-value mass is split as sqrt(s) between the two
            # factors: leaving it all in A (a = u*s, b = vt) preserves the
            # product but unbalances subsequent gradient dynamics, which
            # measurably degrades further online training.
            active = sorted(self._slots.id_to_slot.values())
            if active:
                delta = self.a[active] @ self.b
                u, s, vt = np.linalg.svd(delta, full_matrices=False)
                k = new_rank
                root_s = np.sqrt(s[:k])
                new_a_rows = u[:, :k] * root_s
                new_b = root_s[:, None] * vt[:k]
                # Guard against dead directions: a ~zero B row would stop
                # gradient flow (dA = B g) through that rank forever.  Give
                # such rows a small random direction; the matching A column
                # is ~zero too, so the represented update barely moves.
                rng = np.random.default_rng(self.rank * 7919 + k)
                floor = 0.1 / np.sqrt(k)
                for j in range(new_b.shape[0]):
                    if np.linalg.norm(new_b[j]) < floor:
                        new_b[j] = rng.normal(0.0, 1.0 / np.sqrt(k), self.dim)
                self.a = np.zeros((self.capacity, k))
                self.a[active] = new_a_rows
                self.b = new_b
            else:
                # Nothing learned yet: keep the leading learned directions.
                self.a = np.zeros((self.capacity, new_rank))
                self.b = self.b[:new_rank].copy()
        self.rank = new_rank

    def resize_capacity(self, new_capacity: int) -> None:
        """Grow/shrink the slot budget (Eq. 4's table-length control).

        Shrinking evicts the surplus ids with the *smallest* adapter norms
        (they carry the least update information).
        """
        if new_capacity == self.capacity:
            return
        if new_capacity <= 0:
            raise ValueError("capacity must be positive")
        if new_capacity < self.num_active:
            norms = {
                i: float(np.linalg.norm(self.a[s]))
                for i, s in self._slots.id_to_slot.items()
            }
            surplus = self.num_active - new_capacity
            for i in sorted(norms, key=norms.get)[:surplus]:
                self.deactivate(i)
        new_a = np.zeros((new_capacity, self.rank))
        new_map = _SlotMap.empty(new_capacity)
        for idx, old_slot in sorted(self._slots.id_to_slot.items()):
            new_slot = new_map.free_slots.pop()
            new_map.id_to_slot[idx] = new_slot
            new_a[new_slot] = self.a[old_slot]
        self.a = new_a
        self._slots = new_map
        self.capacity = new_capacity

    def reset(self) -> None:
        """Zero the adapter (after merging into base / full re-anchor)."""
        self.a[...] = 0.0
        self._slots = _SlotMap.empty(self.capacity)

    def merge_into(self, weight: np.ndarray) -> int:
        """Fold ``A B`` into a base weight matrix in place; then reset.

        Returns the number of rows merged.
        """
        merged = 0
        for idx, slot in self._slots.id_to_slot.items():
            if 0 <= idx < weight.shape[0]:
                weight[idx] += self.a[slot] @ self.b
                merged += 1
        self.reset()
        return merged


class LoRACollection:
    """One adapter per sparse field of a DLRM."""

    def __init__(
        self,
        dims: list[int],
        rank: int,
        capacities: list[int],
        seed: int = 0,
    ) -> None:
        if len(dims) != len(capacities):
            raise ValueError("dims and capacities must align")
        rng = np.random.default_rng(seed)
        self.adapters = [
            LoRAAdapter(dim, rank, cap, rng=rng)
            for dim, cap in zip(dims, capacities)
        ]

    def __len__(self) -> int:
        return len(self.adapters)

    def __getitem__(self, f: int) -> LoRAAdapter:
        return self.adapters[f]

    def __iter__(self):
        return iter(self.adapters)

    @property
    def nbytes(self) -> int:
        return sum(ad.nbytes for ad in self.adapters)

    @property
    def num_active(self) -> int:
        return sum(ad.num_active for ad in self.adapters)

    def overlay(self, hot_filter=None):
        """Embedding overlay closure for :meth:`repro.dlrm.DLRM.forward`.

        Args:
            hot_filter: optional callable ``(field, ids) -> bool mask``; only
                hot ids get the LoRA adjustment (the paper's Hot Index
                Filter short-circuits cold ids straight to the base table).
        """

        def _overlay(field: int, ids: np.ndarray, base_rows: np.ndarray):
            adapter = self.adapters[field]
            if hot_filter is None:
                return adapter.apply_to(ids, base_rows)
            mask = hot_filter(field, ids)
            if not mask.any():
                return base_rows
            out = np.array(base_rows, dtype=np.float64, copy=True)
            hot_ids = np.asarray(ids)[mask]
            out[mask] = adapter.apply_to(hot_ids, out[mask])
            return out

        return _overlay

    def reset(self) -> None:
        for ad in self.adapters:
            ad.reset()
