"""Flight recorder: bounded per-component event rings for post-mortems.

When an SLA violation or assertion fires, the question is always "what
were the last few things each component did?".  The
:class:`FlightRecorder` answers it with one ``deque(maxlen=N)`` per
component: completed spans, rebalance events, and SLA violations are
appended as they happen, memory stays bounded, and :meth:`dump_text`
prints the tail of every ring in deterministic order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["FlightEvent", "FlightRecorder", "flight_recorder"]


@dataclass(frozen=True)
class FlightEvent:
    """One recorded moment: a finished span or a notable component event."""

    seq: int
    t: float
    component: str
    kind: str
    message: str
    attrs: tuple[tuple[str, object], ...] = ()

    def as_dict(self) -> dict:
        """JSON-friendly view with attrs expanded to a dict."""
        return {
            "seq": self.seq,
            "t": self.t,
            "component": self.component,
            "kind": self.kind,
            "message": self.message,
            "attrs": dict(self.attrs),
        }


class FlightRecorder:
    """Per-component ring buffers of the last ``capacity`` events.

    Args:
        capacity: events retained per component; older entries fall off
            the front of that component's ring.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._rings: dict[str, deque[FlightEvent]] = {}
        self._seq = 0

    def record(
        self,
        component: str,
        kind: str,
        message: str,
        t: float = 0.0,
        **attrs,
    ) -> FlightEvent:
        """Append one event to ``component``'s ring and return it."""
        self._seq += 1
        event = FlightEvent(
            seq=self._seq,
            t=float(t),
            component=component,
            kind=kind,
            message=message,
            attrs=tuple(sorted(attrs.items())),
        )
        ring = self._rings.get(component)
        if ring is None:
            ring = self._rings[component] = deque(maxlen=self.capacity)
        ring.append(event)
        return event

    def record_span(self, span) -> FlightEvent:
        """Capture a finished :class:`~repro.obs.trace.Span`.

        The component is the span name minus its last segment
        (``shardstore.client.flush`` files under ``shardstore.client``).
        """
        component = span.name.rsplit(".", 1)[0]
        return self.record(
            component,
            "span",
            span.name,
            t=span.start,
            duration_s=span.duration,
            **dict(span.attrs),
        )

    @property
    def components(self) -> list[str]:
        """Component names with at least one recorded event, sorted."""
        return sorted(self._rings)

    def events(self, component: str | None = None) -> list[FlightEvent]:
        """Retained events, oldest first; optionally one component's."""
        if component is not None:
            return list(self._rings.get(component, ()))
        merged = [e for ring in self._rings.values() for e in ring]
        merged.sort(key=lambda e: e.seq)
        return merged

    def dump(self) -> list[dict]:
        """All retained events as JSON-friendly dicts, oldest first."""
        return [e.as_dict() for e in self.events()]

    def dump_text(self, tail: int = 10) -> str:
        """Human-readable post-mortem: last ``tail`` events per component."""
        lines = []
        for component in self.components:
            lines.append(f"== {component} ==")
            for e in self.events(component)[-tail:]:
                detail = " ".join(
                    f"{k}={v}" for k, v in e.attrs
                )
                lines.append(
                    f"  [{e.seq:>5}] t={e.t:.6f} {e.kind}: {e.message}"
                    + (f" ({detail})" if detail else "")
                )
        return "\n".join(lines) if lines else "(flight recorder empty)"

    def clear(self, component: str | None = None) -> None:
        """Drop retained events (one component's, or everything)."""
        if component is None:
            self._rings.clear()
            self._seq = 0
        else:
            self._rings.pop(component, None)


_RECORDER = FlightRecorder()


def flight_recorder() -> FlightRecorder:
    """The process-wide default flight recorder."""
    return _RECORDER
