"""Unified telemetry plane: metrics, sim-clock spans, flight recorder.

``repro.obs`` is the shared observability substrate every other plane
instruments against:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry` of
  counters, gauges, and log-bucketed :class:`Histogram`\\ s whose
  ``observe_many`` folds whole arrays in one bincount pass.
* :mod:`repro.obs.clock` / :mod:`repro.obs.trace` — :class:`Span` /
  :class:`Tracer` timing off a :class:`SimClock` inside simulations
  (byte-identical dumps across processes) or ``perf_counter`` outside.
* :mod:`repro.obs.recorder` — :class:`FlightRecorder` ring buffers of
  the last N events per component for post-mortem dumps.
* :mod:`repro.obs.export` — Prometheus-style text and schema-versioned
  JSON snapshots; ``python -m repro.obs`` is the snapshot CLI.

Design rule: instrumented hot paths touch telemetry only behind
``registry().enabled`` and only through the batched APIs (counter
``add`` with batch totals, histogram ``observe_many``) — enforced by the
``obs-discipline`` lint rule and a <3% overhead gate in CI.
"""

from .clock import SimClock, WallClock
from .export import (
    SNAPSHOT_SCHEMA_VERSION,
    render_json,
    render_prometheus,
    snapshot,
    validate_snapshot,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    set_enabled,
)
from .recorder import FlightEvent, FlightRecorder, flight_recorder
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_enabled",
    "SimClock",
    "WallClock",
    "Span",
    "Tracer",
    "FlightEvent",
    "FlightRecorder",
    "flight_recorder",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot",
    "render_json",
    "render_prometheus",
    "validate_snapshot",
]
