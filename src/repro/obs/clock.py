"""Clock sources for the tracing layer: simulated or monotonic-wall.

A :class:`~repro.obs.trace.Tracer` timestamps spans off whichever clock
it is handed.  Inside a simulation the clock is a :class:`SimClock`
advanced by modelled durations (e.g. the alpha-beta transfer seconds a
``ShardClient`` flush reports), which makes trace dumps byte-identical
across hosts and processes — the same property the ``no-wallclock-in-sim``
lint rule protects.  Outside a simulation :class:`WallClock` reads
``time.perf_counter`` (monotonic compute time, explicitly allowed by that
rule) so real benchmarks still get real durations.
"""

from __future__ import annotations

import time

__all__ = ["SimClock", "WallClock"]


class SimClock:
    """Manually advanced simulated clock.

    Time only moves when the simulation says so: :meth:`advance` adds a
    modelled duration, :meth:`set` jumps forward to an absolute point on
    the timeline (e.g. a ``cluster.timeline`` event's ``started_s``).
    Moving backwards raises — a simulated timeline is monotone.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by a modelled duration; returns the new now."""
        if seconds < 0:
            raise ValueError("simulated time cannot move backwards")
        self._now += float(seconds)
        return self._now

    def set(self, t: float) -> float:
        """Jump to absolute time ``t`` (>= now); returns the new now."""
        t = float(t)
        if t < self._now:
            raise ValueError("simulated time cannot move backwards")
        self._now = t
        return self._now


class WallClock:
    """Monotonic real-time clock for non-simulated measurement.

    Reads ``time.perf_counter`` — a duration-only monotonic source, which
    the ``no-wallclock-in-sim`` lint rule permits (unlike ``time.time``).
    It has no :meth:`SimClock.advance`; ``Tracer.advance`` is a no-op on
    wall clocks, so instrumented code can advance unconditionally.
    """

    __slots__ = ()

    def now(self) -> float:
        """Monotonic seconds from an arbitrary process-local origin."""
        return time.perf_counter()
