"""Spans and tracers: nested timing off a pluggable clock.

A :class:`Tracer` opens :class:`Span`s as context managers and
timestamps them off whatever clock it holds — a
:class:`~repro.obs.clock.SimClock` inside simulations (deterministic,
host-independent dumps) or a :class:`~repro.obs.clock.WallClock`
(``perf_counter``) when measuring real compute.  Span ids are sequential
integers, parentage follows the lexical nesting of ``with`` blocks, and
:meth:`Tracer.dump_json` serialises with sorted keys and fixed
separators so two processes replaying the same simulated timeline emit
byte-identical traces.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from .clock import WallClock
from .metrics import _NAME_RE

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed operation on a tracer's clock.

    ``end`` is None while the span is open; ``attrs`` may be filled in
    inside the ``with`` block (row counts, modelled bytes) and is
    serialised with sorted keys.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly view with attrs in sorted-key order."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class _SpanHandle:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._close(self._span)
        return False


class Tracer:
    """Factory and sink for :class:`Span`s.

    Args:
        clock: time source; defaults to a fresh :class:`WallClock`.
            Hand a :class:`~repro.obs.clock.SimClock` to trace simulated
            timelines deterministically.
        recorder: optional :class:`~repro.obs.recorder.FlightRecorder`
            that every completed span is also filed into.
        max_spans: completed spans retained (oldest dropped beyond this).
    """

    def __init__(self, clock=None, recorder=None, max_spans: int = 10_000):
        self.clock = clock if clock is not None else WallClock()
        self.recorder = recorder
        self.spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a named span as a context manager.

        Names follow the metric convention (lowercase dotted literals);
        the ``obs-discipline`` lint rule keeps call sites literal.
        """
        if not _NAME_RE.match(name):
            raise ValueError(
                f"span name {name!r} must be a lowercase dotted identifier"
            )
        return _SpanHandle(self, name, attrs)

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock.now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError("span closed out of nesting order")
        self._stack.pop()
        span.end = self.clock.now()
        self.spans.append(span)
        if self.recorder is not None:
            self.recorder.record_span(span)

    def advance(self, seconds: float) -> None:
        """Advance a simulated clock by a modelled duration.

        No-op when the clock has no ``advance`` (i.e. a wall clock), so
        instrumented code can charge modelled seconds unconditionally.
        """
        advance = getattr(self.clock, "advance", None)
        if advance is not None:
            advance(seconds)

    @property
    def active_depth(self) -> int:
        """How many spans are currently open (nesting depth)."""
        return len(self._stack)

    def dump(self) -> list[dict]:
        """Completed spans as JSON-friendly dicts, completion order."""
        return [s.as_dict() for s in self.spans]

    def dump_json(self) -> str:
        """Canonical serialisation: sorted keys, fixed separators.

        Two processes replaying the same simulated timeline produce
        byte-identical output (the trace-determinism regression test).
        """
        return json.dumps(
            self.dump(), sort_keys=True, separators=(",", ":")
        )

    def clear(self) -> None:
        """Drop completed spans and reset the id sequence."""
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        self.spans.clear()
        self._next_id = 1
