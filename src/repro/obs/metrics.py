"""Vectorized metric primitives: counters, gauges, log-bucketed histograms.

The serving paper's evaluation is tail-latency driven (P99 < 20 ms
end-to-end), so the histogram here is built for exactly that query: a
log-spaced bucket lattice whose :meth:`Histogram.observe_many` folds an
entire latency array in ONE ``searchsorted`` + ``bincount`` pass — no
per-sample Python — while quantile reads stay exact to within one bucket
width (ratio ``growth`` between adjacent edges).

All metrics live in a process-wide :class:`MetricsRegistry` reached via
:func:`registry`; instrumented hot paths guard their updates with the
registry's ``enabled`` flag so the bare/instrumented overhead delta stays
a single attribute check when telemetry is off.

Metric names are lowercase dotted literals (``plane.component.metric``),
enforced both here at creation time and statically by the
``obs-discipline`` lint rule.
"""

from __future__ import annotations

import math
import re

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_enabled",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be a lowercase dotted identifier "
            "like 'serving.latency_ms'"
        )
    return name


class Counter:
    """Monotonically increasing integer count.

    Hot paths call :meth:`add` with a batch total (``rows.size``, a mask
    ``sum()``) rather than :meth:`inc` per item — the ``obs-discipline``
    lint rule enforces this in modules declared hot.
    """

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0

    def add(self, n: int) -> None:
        """Add a (non-negative) batch total to the counter."""
        n = int(n)
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    def inc(self) -> None:
        """Add one; convenience for cold, per-event call sites."""
        self.value += 1

    def reset(self) -> None:
        """Zero the count in place (object identity is preserved)."""
        self.value = 0


class Gauge:
    """Last-written instantaneous value (store version, resident rows...)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the current reading."""
        self.value = float(value)

    def reset(self) -> None:
        """Reset the reading to 0.0 in place."""
        self.value = 0.0


class Histogram:
    """Log-bucketed distribution with a single-``bincount`` batch path.

    Bucket edges form a geometric lattice ``lo * growth**k`` covering
    ``[lo, hi]``; values at or below ``lo`` land in the underflow bucket,
    values above the last edge in the overflow bucket.  Because adjacent
    edges differ by the factor ``growth``, any quantile read is exact to
    within one bucket width — with the default ``growth=1.02``, within
    2% relative error (validated against ``np.percentile`` in the tests).

    Args:
        name: lowercase dotted metric name.
        help: one-line description for exporters.
        lo: smallest resolvable value (first bucket edge).
        hi: lattice upper bound; larger observations are exact only in
            ``count``/``sum``/``max``.
        growth: ratio between adjacent edges (> 1).
    """

    __slots__ = (
        "name",
        "help",
        "lo",
        "hi",
        "growth",
        "edges",
        "counts",
        "count",
        "sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        lo: float = 1e-3,
        hi: float = 1e7,
        growth: float = 1.02,
    ) -> None:
        if lo <= 0 or hi <= lo or growth <= 1.0:
            raise ValueError("need 0 < lo < hi and growth > 1")
        self.name = _check_name(name)
        self.help = help
        self.lo = float(lo)
        self.hi = float(hi)
        self.growth = float(growth)
        num_edges = int(math.ceil(math.log(hi / lo) / math.log(growth))) + 1
        self.edges = self.lo * self.growth ** np.arange(
            num_edges, dtype=np.float64
        )
        # counts[0] is the underflow bucket (values <= edges[0]);
        # counts[i] covers (edges[i-1], edges[i]]; counts[-1] is overflow.
        self.counts = np.zeros(num_edges + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe_many(self, values: np.ndarray) -> None:
        """Fold a whole array of observations in one bincount pass."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="left")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.count += int(values.size)
        self.sum += float(values.sum())
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))

    def observe(self, value: float) -> None:
        """Scalar convenience; hot modules must batch via observe_many."""
        self.observe_many(np.array([value], dtype=np.float64))

    @property
    def min(self) -> float:
        """Smallest observation, or NaN before any data."""
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        """Largest observation, or NaN before any data."""
        return self._max if self.count else float("nan")

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations, or NaN before any data."""
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100), exact within one bucket.

        The estimate is the upper edge of the bucket holding the q-th
        order statistic, clamped into the observed ``[min, max]`` range —
        so constant streams read back exactly, and any estimate is within
        a factor ``growth`` of the true order statistic inside the
        lattice range.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return float("nan")
        rank = max(1, int(math.ceil(q / 100.0 * self.count)))
        cum = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cum, rank, side="left"))
        if bucket == 0:  # underflow: everything here is <= edges[0]
            estimate = self._min
        elif bucket >= self.edges.size:  # overflow bucket
            estimate = self._max
        else:
            estimate = float(self.edges[bucket])
        return float(min(max(estimate, self._min), self._max))

    def percentiles(self) -> dict[str, float]:
        """The tail summary exporters publish: p50/p95/p99."""
        return {
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }

    def reset(self) -> None:
        """Zero all buckets and running moments in place."""
        self.counts[:] = 0
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf


class MetricsRegistry:
    """Process-wide, get-or-create registry of named metrics.

    Lookups are get-or-create so instrumented modules can cache handles
    at import time: the first ``counter("a.b")`` creates, every later
    call returns the same object.  Requesting an existing name as a
    different kind raises.  ``enabled`` is the master switch hot paths
    check before doing any telemetry work; :meth:`reset` zeroes values
    *in place* so cached handles stay live.
    """

    __slots__ = ("enabled", "_metrics")

    def __init__(self) -> None:
        self.enabled = True
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name, kind, help, **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric
        metric = kind(name, help=help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        lo: float = 1e-3,
        hi: float = 1e7,
        growth: float = 1.02,
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``.

        Lattice parameters apply on first creation only; later lookups
        return the existing histogram unchanged.
        """
        return self._get_or_create(
            name, Histogram, help, lo=lo, hi=hi, growth=growth
        )

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram:
        """The metric registered under ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def by_kind(self, kind) -> list:
        """All metrics of one class, in sorted-name order."""
        return [
            self._metrics[n]
            for n in self.names()
            if isinstance(self._metrics[n], kind)
        ]

    def reset(self) -> None:
        """Zero every metric in place; handles held elsewhere stay valid."""
        for metric in self._metrics.values():
            metric.reset()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_enabled(flag: bool) -> None:
    """Master switch for the default registry's instrumentation."""
    _REGISTRY.enabled = bool(flag)
