"""Exporters: Prometheus-style text and versioned-JSON metric snapshots.

:func:`snapshot` freezes a :class:`~repro.obs.metrics.MetricsRegistry`
into a plain dict stamped with :data:`SNAPSHOT_SCHEMA_VERSION`;
:func:`render_json` serialises it canonically, :func:`render_prometheus`
emits the text exposition format (dots become underscores, histograms
expand to cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``),
and :func:`validate_snapshot` checks a payload against the schema — the
CI ``obs`` job runs it on every exported snapshot.
"""

from __future__ import annotations

import json

import numpy as np

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, registry

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot",
    "render_json",
    "render_prometheus",
    "validate_snapshot",
]

SNAPSHOT_SCHEMA_VERSION = 1


def _histogram_entry(h: Histogram) -> dict:
    nonzero = np.flatnonzero(h.counts)
    return {
        "count": h.count,
        "sum": h.sum,
        "min": h.min if h.count else None,
        "max": h.max if h.count else None,
        "p50": h.quantile(50) if h.count else None,
        "p95": h.quantile(95) if h.count else None,
        "p99": h.quantile(99) if h.count else None,
        "lo": h.lo,
        "hi": h.hi,
        "growth": h.growth,
        "nonzero_buckets": [
            [int(i), int(h.counts[i])] for i in nonzero
        ],
    }


def snapshot(reg: MetricsRegistry | None = None) -> dict:
    """Freeze a registry into a schema-versioned plain dict.

    Histograms serialise sparsely: lattice parameters plus the non-empty
    buckets only, so a 1000-bucket latency histogram with 30 occupied
    buckets costs 30 pairs, not 1000 floats.
    """
    reg = reg if reg is not None else registry()
    counters = {}
    gauges = {}
    histograms = {}
    for name in reg.names():
        metric = reg.get(name)
        if isinstance(metric, Counter):
            counters[name] = {"value": metric.value, "help": metric.help}
        elif isinstance(metric, Gauge):
            gauges[name] = {"value": metric.value, "help": metric.help}
        elif isinstance(metric, Histogram):
            entry = _histogram_entry(metric)
            entry["help"] = metric.help
            histograms[name] = entry
    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def render_json(reg: MetricsRegistry | None = None) -> str:
    """Canonical JSON snapshot (sorted keys, stable across processes)."""
    return json.dumps(snapshot(reg), sort_keys=True, indent=2)


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def render_prometheus(reg: MetricsRegistry | None = None) -> str:
    """Prometheus text exposition of the registry.

    Histograms emit cumulative ``_bucket`` samples at each occupied
    bucket's upper edge plus the mandatory ``+Inf`` bucket — sparse but
    valid, since exposition bucket boundaries need not be exhaustive.
    """
    reg = reg if reg is not None else registry()
    lines: list[str] = []
    for name in reg.names():
        metric = reg.get(name)
        prom = _prom_name(name)
        if metric.help:
            lines.append(f"# HELP {prom} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {metric.value}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            cumulative = np.cumsum(metric.counts)
            for i in np.flatnonzero(metric.counts):
                if i < metric.edges.size:
                    lines.append(
                        f'{prom}_bucket{{le="{metric.edges[i]:.6g}"}} '
                        f"{int(cumulative[i])}"
                    )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {metric.sum}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n"


def validate_snapshot(payload: dict) -> list[str]:
    """Schema-check a snapshot dict; returns a list of problems (empty = ok)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["snapshot payload is not a dict"]
    version = payload.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        errors.append(
            f"schema_version {version!r} != {SNAPSHOT_SCHEMA_VERSION}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(payload.get(section), dict):
            errors.append(f"missing or non-dict section {section!r}")
    if errors:
        return errors
    for name, entry in payload["counters"].items():
        if not isinstance(entry.get("value"), int) or entry["value"] < 0:
            errors.append(f"counter {name!r} value must be a non-negative int")
    for name, entry in payload["gauges"].items():
        if not isinstance(entry.get("value"), (int, float)):
            errors.append(f"gauge {name!r} value must be numeric")
    for name, entry in payload["histograms"].items():
        if not isinstance(entry.get("count"), int) or entry["count"] < 0:
            errors.append(f"histogram {name!r} count must be a non-negative int")
            continue
        buckets = entry.get("nonzero_buckets")
        if not isinstance(buckets, list) or not all(
            isinstance(b, list)
            and len(b) == 2
            and isinstance(b[0], int)
            and isinstance(b[1], int)
            for b in buckets
        ):
            errors.append(
                f"histogram {name!r} nonzero_buckets must be [index, count] pairs"
            )
            continue
        if sum(b[1] for b in buckets) != entry["count"]:
            errors.append(
                f"histogram {name!r} bucket counts do not sum to count"
            )
    return errors
