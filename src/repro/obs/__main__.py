"""Snapshot CLI for the telemetry plane: ``python -m repro.obs``.

Runs a deterministic two-node shardstore sync scenario on a simulated
clock (drive schedule from :func:`repro.cluster.timeline.
simulate_periodic_updates`), then prints the requested view:

* ``--dump metrics`` (default) — registry snapshot, ``--format text``
  (Prometheus exposition) or ``--format json`` (schema-versioned JSON).
* ``--dump trace`` — canonical span dump; byte-identical across
  processes and hash seeds (the trace-determinism regression test
  compares this output verbatim).
* ``--dump flight`` — flight-recorder post-mortem tail.
* ``--selfcheck`` — validate the JSON snapshot against its schema
  version and exit non-zero on any mismatch (CI ``obs`` job).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..cluster.shardstore import ShardClient, ShardedParameterStore
from ..cluster.timeline import simulate_periodic_updates
from ..serving.qos import SLAMonitor
from .clock import SimClock
from .export import render_json, render_prometheus, snapshot, validate_snapshot
from .recorder import FlightRecorder
from .trace import Tracer


def run_sync_scenario(
    windows: int = 4,
    rows_per_window: int = 256,
    dim: int = 8,
    seed: int = 0,
) -> tuple[Tracer, FlightRecorder]:
    """Two clients syncing through one store on a simulated timeline.

    A trainer client stages and flushes two tables per update window; an
    inference client pulls the deltas.  Window start times come from the
    ``cluster.timeline`` periodic-update simulator, transfer durations
    from the client's alpha-beta cost model, and every duration advances
    the shared :class:`~repro.obs.clock.SimClock` — so the resulting
    trace is a pure function of the arguments, byte-identical across
    processes, hosts, and hash seeds.
    """
    clock = SimClock()
    recorder = FlightRecorder()
    tracer = Tracer(clock=clock, recorder=recorder)
    store = ShardedParameterStore(num_shards=4, row_bytes=dim * 8, row_dim=dim)
    trainer = ShardClient(store, tracer=tracer)
    node = ShardClient(store, tracer=tracer)
    monitor = SLAMonitor(p99_target_ms=10.0, window_requests=rows_per_window)
    rng = np.random.default_rng(seed)
    schedule = simulate_periodic_updates(
        horizon_s=windows * 60.0,
        interval_s=60.0,
        update_duration_s=5.0,
        kind="delta",
    )
    universe = 10 * rows_per_window
    for event in schedule.events:
        clock.set(event.started_s)
        with tracer.span("obs.scenario.window", version=event.version):
            ids = rng.choice(universe, size=rows_per_window, replace=False)
            rows = rng.normal(size=(rows_per_window, dim))
            half = rows_per_window // 2
            trainer.stage("table_0", ids, rows)
            trainer.stage("table_1", ids[:half], rows[:half])
            trainer.flush()
            node.pull_tables(["table_0", "table_1"])
            monitor.observe(rng.lognormal(mean=1.0, sigma=0.6, size=256))
    return tracer, recorder


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    parser.add_argument(
        "--dump",
        choices=("metrics", "trace", "flight"),
        default="metrics",
        help="which telemetry view to print",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="metrics output format (text = Prometheus exposition)",
    )
    parser.add_argument("--windows", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--selfcheck",
        action="store_true",
        help="validate the JSON snapshot schema and exit non-zero on errors",
    )
    args = parser.parse_args(argv)

    tracer, recorder = run_sync_scenario(windows=args.windows, seed=args.seed)

    if args.selfcheck:
        snap = snapshot()
        errors = validate_snapshot(snap)
        if errors:
            for err in errors:
                print(f"SELFCHECK FAIL: {err}", file=sys.stderr)
            return 1
        num_metrics = sum(
            len(snap[s]) for s in ("counters", "gauges", "histograms")
        )
        print(
            f"snapshot schema v{snap['schema_version']} ok "
            f"({num_metrics} metrics)"
        )
        return 0
    if args.dump == "trace":
        print(tracer.dump_json())
    elif args.dump == "flight":
        print(recorder.dump_text())
    elif args.format == "json":
        print(render_json())
    else:
        print(render_prometheus(), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
