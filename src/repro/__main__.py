"""Command-line entry point: ``python -m repro``.

Prints the experiment index (paper artifact -> regenerating bench) and can
run the quick demo loop without touching pytest.
"""

from __future__ import annotations

import sys

EXPERIMENT_INDEX = [
    ("Fig. 3a", "embedding update ratio per window", "bench_fig03a_update_ratio.py"),
    ("Fig. 3b", "AUC decay under staleness + recovery", "bench_fig03b_staleness_decay.py"),
    ("Fig. 4", "24 h inference-cluster CPU utilisation", "bench_fig04_cpu_utilization.py"),
    ("Fig. 5", "co-located training CPU power", "bench_fig05_cpu_power.py"),
    ("Fig. 6", "gradient low-rank structure (PCA)", "bench_fig06_gradient_lowrank.py"),
    ("Fig. 8", "update timelines of the three methods", "bench_fig08_timeline.py"),
    ("Fig. 9", "accuracy vs LoRA sync interval", "bench_fig09_sync_interval.py"),
    ("Fig. 10", "DDR pressure during inference", "bench_fig10_memory_pressure.py"),
    ("Fig. 11", "L3 hit ratios, reuse & CCD scheduling", "bench_fig11_l3_hit_ratio.py"),
    ("Fig. 12", "embedding access CDF (93.8% @ top-10%)", "bench_fig12_access_cdf.py"),
    ("Tab. II", "dataset inventory", "bench_tab2_datasets.py"),
    ("Fig. 14", "hourly update cost grid", "bench_fig14_update_cost.py"),
    ("Tab. III", "AUC improvement over DeltaUpdate", "bench_tab3_accuracy.py"),
    ("Fig. 15", "2 h accuracy timeline", "bench_fig15_accuracy_timeline.py"),
    ("Fig. 16", "P99 isolation ablation", "bench_fig16_p99_ablation.py"),
    ("Fig. 17", "LoRA memory optimizations", "bench_fig17_memory.py"),
    ("Fig. 18", "power & utilisation before/after", "bench_fig18_power_util.py"),
    ("Fig. 19", "sync-time scalability", "bench_fig19_scalability.py"),
    ("extra", "fixed-rank sweep", "bench_ablation_rank.py"),
    ("extra", "alpha threshold sweep", "bench_ablation_alpha.py"),
    ("extra", "merge-policy comparison", "bench_ablation_merge.py"),
    ("extra", "pruning boundary sweep", "bench_ablation_pruning.py"),
    ("extra", "drift-triggered full sync", "bench_ablation_drift_sync.py"),
]


def main(argv: list[str]) -> int:
    if argv and argv[0] == "demo":
        from examples_demo import main as demo  # pragma: no cover

        demo()
        return 0
    print("LiveUpdate reproduction (HPCA 2026) — experiment index\n")
    width = max(len(a) for a, _, _ in EXPERIMENT_INDEX)
    for artifact, what, bench in EXPERIMENT_INDEX:
        print(f"  {artifact:<{width}}  {what:<42} benchmarks/{bench}")
    print(
        "\nRegenerate one:   pytest benchmarks/<file> --benchmark-only -s"
        "\nRegenerate all:   pytest benchmarks/ --benchmark-only -s"
        "\nQuick demo:       python examples/quickstart.py"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
