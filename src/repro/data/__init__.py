"""Workload substrate: Zipf access patterns, drifting CTR streams, dataset
specs (Table II), and the inference-log ring buffer."""

from .datasets import (
    AVAZU,
    AVAZU_TB,
    BD_TB,
    CRITEO,
    CRITEO_TB,
    TABLE_II,
    DatasetSpec,
    build_stream,
)
from .arrivals import ArrivalConfig, BurstEpisode, RequestArrivalProcess
from .stream import InferenceLogBuffer, RingBufferStats
from .synthetic import Batch, DriftingCTRStream, StreamConfig
from .zipf import ZipfSampler, access_cdf, calibrate_zipf_exponent, zipf_head_share

__all__ = [
    "ZipfSampler",
    "zipf_head_share",
    "calibrate_zipf_exponent",
    "access_cdf",
    "Batch",
    "StreamConfig",
    "DriftingCTRStream",
    "DatasetSpec",
    "AVAZU",
    "CRITEO",
    "BD_TB",
    "AVAZU_TB",
    "CRITEO_TB",
    "TABLE_II",
    "build_stream",
    "InferenceLogBuffer",
    "RingBufferStats",
    "ArrivalConfig",
    "BurstEpisode",
    "RequestArrivalProcess",
]
