"""Inference-log ring buffer and batching utilities.

Section IV-E: "we cache feature IDs and their associated labels from real-time
user requests into a ring buffer with a 10-minute retention window", which
becomes the training set of the inference-side LoRA trainer.  This module
implements that buffer plus helpers to sample training mini-batches from it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .synthetic import Batch

__all__ = ["RingBufferStats", "InferenceLogBuffer"]


@dataclass
class RingBufferStats:
    """Occupancy metrics of the log buffer."""

    num_batches: int
    num_samples: int
    oldest_ts: float
    newest_ts: float
    approx_bytes: int

    @property
    def span_seconds(self) -> float:
        return max(0.0, self.newest_ts - self.oldest_ts)


@dataclass
class _BatchMeta:
    """Bookkeeping for one appended batch inside the flat window."""

    timestamp: float
    size: int


class InferenceLogBuffer:
    """Time-windowed ring buffer of served (features, label) batches.

    Entries older than ``retention_s`` relative to the newest insert are
    evicted, matching the paper's 10-minute retention window.  An optional
    ``max_samples`` bound emulates fixed memory capacity.

    The window lives in flat per-field arrays (an actual ring of samples):
    appends copy one batch into spare tail capacity (amortized O(batch)
    via doubling), evictions advance the head offset in O(1), and
    sampling is one fancy-index per field over the live slice — no
    per-row Python and no per-append re-concatenation.
    """

    def __init__(
        self, retention_s: float = 600.0, max_samples: int | None = None
    ) -> None:
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self.retention_s = retention_s
        self.max_samples = max_samples
        self._meta: deque[_BatchMeta] = deque()
        # Flat window storage: rows [_start, _end) of each buffer are live.
        self._dense: np.ndarray | None = None
        self._sparse: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._start = 0
        self._end = 0
        self.total_appended = 0
        self.total_evicted = 0

    def __len__(self) -> int:
        return self._end - self._start

    # ---------------------------------------------------------------- storage
    def _capacity(self) -> int:
        return 0 if self._dense is None else self._dense.shape[0]

    def _reserve(self, extra: int) -> None:
        """Make room for ``extra`` tail rows: compact, then grow if needed."""
        live = len(self)
        if self._end + extra <= self._capacity():
            return
        cap = self._capacity()
        if live + extra <= cap:
            # Enough total room: slide the live region back to the front.
            for buf in (self._dense, self._sparse, self._labels):
                buf[:live] = buf[self._start : self._end]
        else:
            cap = max(2 * (live + extra), 1024)
            for name in ("_dense", "_sparse", "_labels"):
                old = getattr(self, name)
                grown = np.empty((cap, *old.shape[1:]), dtype=old.dtype)
                grown[:live] = old[self._start : self._end]
                setattr(self, name, grown)
        self._start, self._end = 0, live

    def append(self, batch: Batch) -> None:
        """Insert a served batch; evicts anything outside the window."""
        size = batch.size
        if self._dense is None or self._dense.shape[1:] != batch.dense.shape[1:]:
            cap = max(4 * size, 1024)
            self._dense = np.empty(
                (cap, *batch.dense.shape[1:]), dtype=batch.dense.dtype
            )
            self._sparse = np.empty(
                (cap, *batch.sparse_ids.shape[1:]), dtype=batch.sparse_ids.dtype
            )
            self._labels = np.empty(
                (cap, *batch.labels.shape[1:]), dtype=batch.labels.dtype
            )
            self._start = self._end = 0
        else:
            self._reserve(size)
        end = self._end + size
        self._dense[self._end : end] = batch.dense
        self._sparse[self._end : end] = batch.sparse_ids
        self._labels[self._end : end] = batch.labels
        self._end = end
        self._meta.append(_BatchMeta(timestamp=batch.timestamp, size=size))
        self.total_appended += size
        self._evict(batch.timestamp)

    def _evict(self, now: float) -> None:
        while self._meta and (
            now - self._meta[0].timestamp > self.retention_s
            or (self.max_samples is not None and len(self) > self.max_samples)
        ):
            old = self._meta.popleft()
            self._start += old.size
            self.total_evicted += old.size

    def stats(self, bytes_per_sample: int = 250) -> RingBufferStats:
        if not self._meta:
            return RingBufferStats(0, 0, 0.0, 0.0, 0)
        return RingBufferStats(
            num_batches=len(self._meta),
            num_samples=len(self),
            oldest_ts=self._meta[0].timestamp,
            newest_ts=self._meta[-1].timestamp,
            approx_bytes=len(self) * bytes_per_sample,
        )

    # --------------------------------------------------------------- sampling
    def sample_minibatch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Batch | None:
        """Uniformly sample ``batch_size`` examples across the window.

        Returns ``None`` when the buffer is empty.  Sampling is with
        replacement across the window, which matches how an online trainer
        re-visits recent traffic.  Each field is gathered with one
        fancy-index over the flat window — the per-row list comprehensions
        of the seed implementation are gone.
        """
        if not self._meta:
            return None
        picks = self._start + rng.integers(0, len(self), size=batch_size)
        return Batch(
            timestamp=self._meta[-1].timestamp,
            dense=self._dense[picks],
            sparse_ids=self._sparse[picks],
            labels=self._labels[picks],
        )

    def drain_window(self) -> Batch | None:
        """Copy the whole window into one batch (epoch-style replay)."""
        if not self._meta:
            return None
        return Batch(
            timestamp=self._meta[-1].timestamp,
            dense=self._dense[self._start : self._end].copy(),
            sparse_ids=self._sparse[self._start : self._end].copy(),
            labels=self._labels[self._start : self._end].copy(),
        )
