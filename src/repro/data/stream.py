"""Inference-log ring buffer and batching utilities.

Section IV-E: "we cache feature IDs and their associated labels from real-time
user requests into a ring buffer with a 10-minute retention window", which
becomes the training set of the inference-side LoRA trainer.  This module
implements that buffer plus helpers to sample training mini-batches from it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .synthetic import Batch

__all__ = ["RingBufferStats", "InferenceLogBuffer"]


@dataclass
class RingBufferStats:
    """Occupancy metrics of the log buffer."""

    num_batches: int
    num_samples: int
    oldest_ts: float
    newest_ts: float
    approx_bytes: int

    @property
    def span_seconds(self) -> float:
        return max(0.0, self.newest_ts - self.oldest_ts)


class InferenceLogBuffer:
    """Time-windowed ring buffer of served (features, label) batches.

    Entries older than ``retention_s`` relative to the newest insert are
    evicted, matching the paper's 10-minute retention window.  An optional
    ``max_samples`` bound emulates fixed memory capacity.
    """

    def __init__(
        self, retention_s: float = 600.0, max_samples: int | None = None
    ) -> None:
        if retention_s <= 0:
            raise ValueError("retention must be positive")
        self.retention_s = retention_s
        self.max_samples = max_samples
        self._batches: deque[Batch] = deque()
        self._num_samples = 0
        self.total_appended = 0
        self.total_evicted = 0

    def __len__(self) -> int:
        return self._num_samples

    def append(self, batch: Batch) -> None:
        """Insert a served batch; evicts anything outside the window."""
        self._batches.append(batch)
        self._num_samples += batch.size
        self.total_appended += batch.size
        self._evict(batch.timestamp)

    def _evict(self, now: float) -> None:
        while self._batches and (
            now - self._batches[0].timestamp > self.retention_s
            or (
                self.max_samples is not None
                and self._num_samples > self.max_samples
            )
        ):
            old = self._batches.popleft()
            self._num_samples -= old.size
            self.total_evicted += old.size

    def stats(self, bytes_per_sample: int = 250) -> RingBufferStats:
        if not self._batches:
            return RingBufferStats(0, 0, 0.0, 0.0, 0)
        return RingBufferStats(
            num_batches=len(self._batches),
            num_samples=self._num_samples,
            oldest_ts=self._batches[0].timestamp,
            newest_ts=self._batches[-1].timestamp,
            approx_bytes=self._num_samples * bytes_per_sample,
        )

    # --------------------------------------------------------------- sampling
    def sample_minibatch(
        self, batch_size: int, rng: np.random.Generator
    ) -> Batch | None:
        """Uniformly sample ``batch_size`` examples across the window.

        Returns ``None`` when the buffer is empty.  Sampling is with
        replacement across the concatenated window, which matches how an
        online trainer re-visits recent traffic.
        """
        if not self._batches:
            return None
        sizes = np.array([b.size for b in self._batches])
        cum = np.cumsum(sizes)
        total = int(cum[-1])
        picks = rng.integers(0, total, size=batch_size)
        batch_idx = np.searchsorted(cum, picks, side="right")
        within = picks - np.concatenate(([0], cum[:-1]))[batch_idx]
        dense = np.stack(
            [self._batches[b].dense[i] for b, i in zip(batch_idx, within)]
        )
        sparse = np.stack(
            [self._batches[b].sparse_ids[i] for b, i in zip(batch_idx, within)]
        )
        labels = np.array(
            [self._batches[b].labels[i] for b, i in zip(batch_idx, within)]
        )
        newest = self._batches[-1].timestamp
        return Batch(
            timestamp=newest, dense=dense, sparse_ids=sparse, labels=labels
        )

    def drain_window(self) -> Batch | None:
        """Concatenate the whole window into one batch (epoch-style replay)."""
        if not self._batches:
            return None
        dense = np.concatenate([b.dense for b in self._batches])
        sparse = np.concatenate([b.sparse_ids for b in self._batches])
        labels = np.concatenate([b.labels for b in self._batches])
        return Batch(
            timestamp=self._batches[-1].timestamp,
            dense=dense,
            sparse_ids=sparse,
            labels=labels,
        )
