"""Power-law (Zipfian) access-pattern generation and analysis.

Embedding accesses in production DLRMs follow a power law: "over 90% of
requests target less than 10% of indices" (Section IV-D), and Fig. 12 reports
the top 10% of indices receiving 93.8% of accesses.  This module provides a
bounded Zipf sampler, the analytical access CDF, and a calibration helper
that solves for the exponent reproducing a target head share.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler", "zipf_head_share", "calibrate_zipf_exponent", "access_cdf"]


class ZipfSampler:
    """Samples ids from a bounded Zipf distribution over ``[0, size)``.

    Rank ``r`` (1-based) has probability proportional to ``r ** -s``.  Ranks
    are mapped to ids through a fixed random permutation so hot ids are
    scattered across the table, as in real hash-based id spaces.

    Args:
        size: number of distinct ids.
        exponent: Zipf exponent ``s`` (larger = more skew).
        rng: generator for both the permutation and sampling.
        permute: set ``False`` to keep id ``i`` at rank ``i + 1``
            (useful in tests).
        method: ``"cdf"`` (default) draws by binary search over the rank
            CDF — one uniform per sample, the historical draw sequence.
            ``"alias"`` draws in O(1) via Walker/Vose tables — identical
            distribution, different stream for the same seed, and an order
            of magnitude faster at production row counts (the serving
            engine's choice).
    """

    def __init__(
        self,
        size: int,
        exponent: float = 1.1,
        rng: np.random.Generator | None = None,
        permute: bool = True,
        method: str = "cdf",
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        if method not in ("cdf", "alias"):
            raise ValueError(f"unknown sampling method {method!r}")
        self.size = size
        self.exponent = exponent
        self.method = method
        self._rng = rng or np.random.default_rng(0)
        weights = np.arange(1, size + 1, dtype=np.float64) ** -exponent
        self._probs = weights / weights.sum()
        self._cdf = np.cumsum(self._probs)
        self._rank_to_id = (
            self._rng.permutation(size) if permute else np.arange(size)
        )
        self._alias: np.ndarray | None = None
        self._accept: np.ndarray | None = None

    def _build_alias(self) -> None:
        """Walker/Vose alias tables: O(size) once, then O(1) per draw.

        Replaces the binary search over a ``size``-entry CDF — the cost
        that made stream generation rival the serving-window simulation
        itself at production row counts.
        """
        n = self.size
        accept = self._probs * n
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if accept[i] < 1.0]
        large = [i for i in range(n) if accept[i] >= 1.0]
        while small and large:
            s, l = small.pop(), large.pop()
            alias[s] = l
            accept[l] -= 1.0 - accept[s]
            (small if accept[l] < 1.0 else large).append(l)
        self._alias = alias
        self._accept = accept

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` ids (int64) under the configured method."""
        if self.method == "cdf":
            u = self._rng.random(n)
            ranks = np.searchsorted(self._cdf, u, side="left")
            return self._rank_to_id[np.clip(ranks, 0, self.size - 1)]
        if self._alias is None:
            self._build_alias()
        ranks = self._rng.integers(0, self.size, size=n)
        reject = self._rng.random(n) >= self._accept[ranks]
        ranks[reject] = self._alias[ranks[reject]]
        return self._rank_to_id[ranks]

    def probability_of_id(self, ids: np.ndarray) -> np.ndarray:
        """Access probability of specific ids."""
        ids = np.asarray(ids, dtype=np.int64)
        id_to_rank = np.empty(self.size, dtype=np.int64)
        id_to_rank[self._rank_to_id] = np.arange(self.size)
        return self._probs[id_to_rank[ids]]

    def hot_ids(self, fraction: float) -> np.ndarray:
        """Ids of the hottest ``fraction`` of the table (by rank)."""
        k = max(1, int(round(fraction * self.size)))
        return self._rank_to_id[:k].copy()


def zipf_head_share(exponent: float, size: int, head_fraction: float) -> float:
    """Analytical share of accesses landing on the top ``head_fraction``.

    E.g. ``zipf_head_share(s, V, 0.10)`` is the fraction of traffic absorbed
    by the hottest 10% of ids — the quantity Fig. 12 reports as 93.8%.
    """
    if not 0 < head_fraction <= 1:
        raise ValueError("head_fraction must be in (0, 1]")
    weights = np.arange(1, size + 1, dtype=np.float64) ** -exponent
    k = max(1, int(round(head_fraction * size)))
    return float(weights[:k].sum() / weights.sum())


def calibrate_zipf_exponent(
    size: int,
    head_fraction: float = 0.10,
    target_share: float = 0.938,
    lo: float = 0.1,
    hi: float = 3.0,
    tol: float = 1e-4,
) -> float:
    """Bisection solve for the exponent giving ``target_share`` head share.

    Defaults reproduce the paper's "top 10% of indices account for 93.8% of
    accesses" (Fig. 12).  Head share is monotone increasing in the exponent.
    """
    f_lo = zipf_head_share(lo, size, head_fraction)
    f_hi = zipf_head_share(hi, size, head_fraction)
    if not f_lo <= target_share <= f_hi:
        raise ValueError(
            f"target share {target_share} not bracketed by exponents "
            f"[{lo}, {hi}] (shares [{f_lo:.4f}, {f_hi:.4f}])"
        )
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if zipf_head_share(mid, size, head_fraction) < target_share:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def access_cdf(access_counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of accesses versus fraction of (sorted) indices.

    Returns ``(index_fraction, access_fraction)`` with indices sorted from
    hottest to coldest — the curve plotted in Fig. 12.
    """
    counts = np.sort(np.asarray(access_counts, dtype=np.float64))[::-1]
    total = counts.sum()
    if total == 0:
        raise ValueError("no accesses recorded")
    access_fraction = np.cumsum(counts) / total
    index_fraction = np.arange(1, counts.shape[0] + 1) / counts.shape[0]
    return index_fraction, access_fraction
