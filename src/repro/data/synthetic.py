"""Non-stationary synthetic CTR stream (the BD-TB stand-in).

The paper's freshness experiments need a workload whose *ground truth* drifts
over minutes: a model frozen at time ``t`` must measurably lose AUC by
``t + minutes`` (Fig. 3b), and applying updates must recover it.  Production
traces with that property are proprietary, so this module implements a
teacher-based generator:

* Each sparse field has a table of *teacher* latent vectors.  They evolve by
  an Ornstein-Uhlenbeck random walk (slow, continuous drift of user/item
  semantics).
* A small set of *trending* ids per window receives large latent jumps and a
  popularity boost — the "emerging trends" whose updates are semantically
  critical but can have small gradient magnitude (the QuickUpdate failure
  mode described in Section II-C).
* Labels are Bernoulli draws from a logistic teacher score combining dense
  features and the (time-varying) latent vectors.

The generator advances in simulated seconds, so experiments can express
"10-minute update window" directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .zipf import ZipfSampler

__all__ = ["StreamConfig", "Batch", "DriftingCTRStream"]


@dataclass
class Batch:
    """One timestamped mini-batch of labelled impressions."""

    timestamp: float
    dense: np.ndarray
    sparse_ids: np.ndarray
    labels: np.ndarray

    @property
    def size(self) -> int:
        return int(self.labels.shape[0])


@dataclass
class StreamConfig:
    """Knobs of the drifting CTR process.

    Attributes:
        table_sizes: vocabulary per sparse field (matches the student DLRM).
        num_dense: number of continuous features.
        latent_dim: dimension of teacher latent vectors.
        latent_scale: multiplier on initial latent norms; larger = stronger
            learnable signal relative to label noise.
        zipf_exponent: skew of id popularity.
        drift_rate: OU step scale per simulated second; larger = faster
            staleness decay.
        mean_reversion: OU pull toward the initial latents (keeps the
            process bounded so AUC doesn't collapse over long runs).
        trend_fraction: fraction of each table receiving a trend jump per
            trend event.
        trend_interval_s: seconds between trend events.
        trend_scale: magnitude of a trend jump relative to latent norm.
        base_ctr_logit: intercept controlling the positive rate.
        dense_weight: contribution of dense features to the teacher score.
        local_context_scale: strength of the node-local preference component.
            Production traffic is sharded (region/user segment), so each
            serving node sees a tilted conditional CTR that global training
            never isolates — the signal only inference-side adaptation can
            capture.  Batches drawn with ``local=True`` include it.
        seed: master RNG seed.
    """

    table_sizes: tuple[int, ...] = (2000, 2000, 1000)
    num_dense: int = 4
    latent_dim: int = 8
    latent_scale: float = 2.0
    zipf_exponent: float = 1.4
    drift_rate: float = 0.012
    mean_reversion: float = 2e-5
    trend_fraction: float = 0.03
    trend_interval_s: float = 300.0
    trend_scale: float = 2.5
    base_ctr_logit: float = -1.0
    dense_weight: float = 0.3
    local_context_scale: float = 0.6
    seed: int = 0


class DriftingCTRStream:
    """Generates timestamped batches from a drifting teacher model."""

    def __init__(self, config: StreamConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.now = 0.0
        self._last_trend = 0.0
        k = config.latent_dim
        self._latents = [
            config.latent_scale
            * self._rng.normal(0.0, 1.0, size=(size, k))
            / np.sqrt(k)
            for size in config.table_sizes
        ]
        self._anchors = [lat.copy() for lat in self._latents]
        self._dense_proj = self._rng.normal(size=(config.num_dense,))
        # Field latents interact through a shared context vector so that
        # cross-field structure exists for the student to learn.
        self._context = self._rng.normal(0.0, 1.0, size=k) / np.sqrt(k)
        # Node-local preference direction (see StreamConfig.local_context_scale).
        self._local_context = (
            config.local_context_scale
            * self._rng.normal(0.0, 1.0, size=k)
            / np.sqrt(k)
        )
        self._samplers = [
            ZipfSampler(size, config.zipf_exponent, rng=self._rng)
            for size in config.table_sizes
        ]
        self.trend_log: list[tuple[float, int, np.ndarray]] = []

    # ------------------------------------------------------------- evolution
    def advance(self, seconds: float) -> None:
        """Evolve the teacher by ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        cfg = self.config
        step = np.sqrt(seconds) * cfg.drift_rate
        for f, lat in enumerate(self._latents):
            noise = self._rng.normal(0.0, step, size=lat.shape)
            lat += noise - cfg.mean_reversion * seconds * (lat - self._anchors[f])
        self.now += seconds
        while self.now - self._last_trend >= cfg.trend_interval_s:
            self._last_trend += cfg.trend_interval_s
            self._inject_trend()

    def _inject_trend(self) -> None:
        """Give a random slice of ids an abrupt semantic jump."""
        cfg = self.config
        for f, lat in enumerate(self._latents):
            n_trend = max(1, int(cfg.trend_fraction * lat.shape[0]))
            ids = self._rng.choice(lat.shape[0], size=n_trend, replace=False)
            jump = self._rng.normal(
                0.0, cfg.trend_scale / np.sqrt(cfg.latent_dim), size=(n_trend, lat.shape[1])
            )
            lat[ids] += jump
            self.trend_log.append((self.now, f, ids))

    # -------------------------------------------------------------- sampling
    def teacher_logits(
        self, dense: np.ndarray, sparse_ids: np.ndarray, local: bool = False
    ) -> np.ndarray:
        """Ground-truth logit for given features at the current time.

        ``local=True`` adds the node-local preference component present in
        this serving node's traffic shard.
        """
        cfg = self.config
        score = np.full(dense.shape[0], cfg.base_ctr_logit)
        score += cfg.dense_weight * (dense @ self._dense_proj)
        # Sum of latent dot products with the context plus pairwise field
        # interactions (first field against the rest).
        vecs = [lat[sparse_ids[:, f]] for f, lat in enumerate(self._latents)]
        for v in vecs:
            score += v @ self._context
            if local:
                score += v @ self._local_context
        for other in vecs[1:]:
            score += (vecs[0] * other).sum(axis=1)
        return score

    def next_batch(
        self, batch_size: int, duration_s: float = 0.0, local: bool = False
    ) -> Batch:
        """Sample one batch, then advance time by ``duration_s``.

        The batch is stamped with the time at which it was drawn.
        ``local=True`` draws from this node's traffic shard (see
        :attr:`StreamConfig.local_context_scale`).
        """
        cfg = self.config
        dense = self._rng.normal(size=(batch_size, cfg.num_dense))
        sparse = np.column_stack(
            [s.sample(batch_size) for s in self._samplers]
        ).astype(np.int64)
        logits = self.teacher_logits(dense, sparse, local=local)
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (self._rng.random(batch_size) < probs).astype(np.float64)
        batch = Batch(
            timestamp=self.now, dense=dense, sparse_ids=sparse, labels=labels
        )
        if duration_s:
            self.advance(duration_s)
        return batch

    def eval_batch(self, batch_size: int, local: bool = False) -> Batch:
        """Sample a batch without advancing time (held-out evaluation)."""
        return self.next_batch(batch_size, duration_s=0.0, local=local)

    # ------------------------------------------------------------- utilities
    def access_counts(self, field: int, num_samples: int = 200_000) -> np.ndarray:
        """Monte-Carlo access histogram for one field (Fig. 12 input)."""
        ids = self._samplers[field].sample(num_samples)
        return np.bincount(ids, minlength=self.config.table_sizes[field])

    def hot_ids(self, field: int, fraction: float = 0.10) -> np.ndarray:
        return self._samplers[field].hot_ids(fraction)
