"""Dataset specifications mirroring Table II of the paper.

Two roles:

* **Accuracy-centric** runs need live, learnable data — we attach a
  :class:`~repro.data.synthetic.DriftingCTRStream` whose field structure is
  scaled down from the real dataset (same number of fields, proportional
  cardinalities).
* **Systems-centric** runs (update cost, Fig. 14) only need *sizes in bytes*:
  the 50 TB table footprints feed the network/transfer cost models directly,
  no instantiation required.

The original datasets are Kaggle downloads (Avazu, Criteo) and a proprietary
ByteDance trace (BD-TB); none are available offline, so the specs below are
reconstructed from Table II plus the datasets' public schemas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .synthetic import DriftingCTRStream, StreamConfig

__all__ = [
    "DatasetSpec",
    "AVAZU",
    "CRITEO",
    "BD_TB",
    "AVAZU_TB",
    "CRITEO_TB",
    "TABLE_II",
    "build_stream",
]

GB = 1024 ** 3
TB = 1024 ** 4


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table II plus schema details used by the generators.

    Attributes:
        name: dataset label as it appears in the paper.
        num_samples: total labelled impressions.
        dataset_bytes: raw dataset size.
        embedding_bytes: total EMT footprint when a model is trained on it.
        num_sparse_fields: number of categorical fields (Avazu has 21 usable
            categorical columns, Criteo 26 — public schema).
        num_dense_fields: continuous features (Criteo has 13; Avazu none in
            the raw schema, we keep 4 derived counters as is common practice).
        cardinality_skew: Zipf exponent describing how field vocabulary sizes
            decay from the largest table to the smallest.
        requests_per_5min: sustained load used for systems experiments
            (the paper's synthesis targets 100M +-5% per 5 minutes).
        bytes_per_sample: average bytes of one logged training sample.
    """

    name: str
    num_samples: int
    dataset_bytes: int
    embedding_bytes: int
    num_sparse_fields: int
    num_dense_fields: int
    cardinality_skew: float = 1.0
    requests_per_5min: int = 100_000_000
    bytes_per_sample: int = 250

    @property
    def dataset_gb(self) -> float:
        return self.dataset_bytes / GB

    @property
    def embedding_tb(self) -> float:
        return self.embedding_bytes / TB

    def scaled_table_sizes(
        self, total_rows: int, min_rows: int = 50
    ) -> tuple[int, ...]:
        """Distribute ``total_rows`` across fields with a power-law profile.

        Real CTR datasets have a few huge tables (device id, user id) and a
        long tail of small ones; we reproduce that shape so per-table
        low-rank behaviour (Fig. 6 small vs large spread) carries over.
        """
        ranks = np.arange(1, self.num_sparse_fields + 1, dtype=np.float64)
        weights = ranks ** -self.cardinality_skew
        weights /= weights.sum()
        sizes = np.maximum((weights * total_rows).astype(int), min_rows)
        return tuple(int(s) for s in sizes)

    def ingest_bytes_per_window(self, window_s: float = 300.0) -> float:
        """New training-log volume generated per window (~25 GB per 5 min)."""
        return self.requests_per_5min * (window_s / 300.0) * self.bytes_per_sample


# Table II of the paper, reconstructed.  The -TB variants are the public
# datasets synthetically scaled to 50 TB of embeddings with 5B samples.
AVAZU = DatasetSpec(
    name="Avazu",
    num_samples=32_300_000,
    dataset_bytes=int(4.7 * GB),
    embedding_bytes=int(0.55 * GB),
    num_sparse_fields=21,
    num_dense_fields=4,
    cardinality_skew=1.3,
)

CRITEO = DatasetSpec(
    name="Criteo",
    num_samples=45_800_000,
    dataset_bytes=11 * GB,
    embedding_bytes=int(1.9 * GB),
    num_sparse_fields=26,
    num_dense_fields=13,
    cardinality_skew=1.2,
)

BD_TB = DatasetSpec(
    name="BD-TB",
    num_samples=5_000_000_000,
    dataset_bytes=int(1.5 * TB),
    embedding_bytes=50 * TB,
    num_sparse_fields=40,
    num_dense_fields=8,
    cardinality_skew=1.1,
)

AVAZU_TB = DatasetSpec(
    name="Avazu-TB",
    num_samples=5_000_000_000,
    dataset_bytes=int(0.72 * TB),
    embedding_bytes=50 * TB,
    num_sparse_fields=21,
    num_dense_fields=4,
    cardinality_skew=1.3,
)

CRITEO_TB = DatasetSpec(
    name="Criteo-TB",
    num_samples=5_000_000_000,
    dataset_bytes=int(1.2 * TB),
    embedding_bytes=50 * TB,
    num_sparse_fields=26,
    num_dense_fields=13,
    cardinality_skew=1.2,
)

TABLE_II: tuple[DatasetSpec, ...] = (AVAZU, CRITEO, BD_TB, AVAZU_TB, CRITEO_TB)


def build_stream(
    spec: DatasetSpec,
    total_rows: int = 6000,
    num_fields: int | None = None,
    seed: int = 0,
    **overrides,
) -> DriftingCTRStream:
    """Instantiate a laptop-scale live stream matching a dataset spec.

    Args:
        spec: which dataset to emulate.
        total_rows: total embedding rows in the scaled-down model.
        num_fields: cap on fields (full field counts make tiny models slow;
            accuracy experiments use 4-8 fields by default).
        seed: RNG seed.
        **overrides: forwarded to :class:`StreamConfig` (e.g. drift_rate).
    """
    fields = num_fields if num_fields is not None else min(
        spec.num_sparse_fields, 6
    )
    capped = DatasetSpec(
        name=spec.name,
        num_samples=spec.num_samples,
        dataset_bytes=spec.dataset_bytes,
        embedding_bytes=spec.embedding_bytes,
        num_sparse_fields=fields,
        num_dense_fields=spec.num_dense_fields,
        cardinality_skew=spec.cardinality_skew,
    )
    config = StreamConfig(
        table_sizes=capped.scaled_table_sizes(total_rows),
        num_dense=min(spec.num_dense_fields, 8),
        seed=seed,
        **overrides,
    )
    return DriftingCTRStream(config)
