"""Request arrival processes for serving-load experiments.

Inference latency SLAs are tail metrics, and tails are made by *bursts*:
Section II-B calls out "unpredictable request bursts" as a core serving
challenge.  This module generates request arrival timelines — Poisson base
load modulated by the diurnal curve, with optional burst episodes — which
the latency experiments consume to produce realistic queueing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrivalConfig", "BurstEpisode", "RequestArrivalProcess"]


@dataclass(frozen=True)
class BurstEpisode:
    """A transient load spike (flash crowd / retry storm)."""

    start_s: float
    duration_s: float
    multiplier: float

    def active(self, t: float | np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return (t >= self.start_s) & (t < self.start_s + self.duration_s)


@dataclass
class ArrivalConfig:
    """Arrival-process parameters.

    Attributes:
        base_qps: mean arrival rate before modulation.
        diurnal_amplitude: +-fraction of base rate over the day (0 = flat).
        burst_rate_per_hour: expected burst episodes per hour.
        burst_multiplier: mean load multiplier during a burst.
        burst_duration_s: mean burst length.
        seed: RNG seed.
    """

    base_qps: float = 2000.0
    diurnal_amplitude: float = 0.3
    burst_rate_per_hour: float = 2.0
    burst_multiplier: float = 3.0
    burst_duration_s: float = 20.0
    seed: int = 0


class RequestArrivalProcess:
    """Generates arrival timestamps and interval counts."""

    def __init__(self, config: ArrivalConfig | None = None) -> None:
        self.config = config or ArrivalConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.bursts: list[BurstEpisode] = []

    def _rate_at(self, t: np.ndarray, start_hour: float) -> np.ndarray:
        cfg = self.config
        hour = (start_hour + t / 3600.0) % 24.0
        diurnal = 1.0 + cfg.diurnal_amplitude * np.sin(
            2 * np.pi * (hour - 15.0) / 24.0
        )
        rate = cfg.base_qps * diurnal
        for burst in self.bursts:
            rate = np.where(burst.active(t), rate * burst.multiplier, rate)
        return np.maximum(rate, 0.0)

    def _draw_bursts(self, horizon_s: float) -> None:
        cfg = self.config
        expected = cfg.burst_rate_per_hour * horizon_s / 3600.0
        count = self._rng.poisson(expected)
        self.bursts = [
            BurstEpisode(
                start_s=float(self._rng.uniform(0, horizon_s)),
                duration_s=float(
                    self._rng.exponential(cfg.burst_duration_s)
                ),
                multiplier=float(
                    1.0 + self._rng.exponential(cfg.burst_multiplier - 1.0)
                ),
            )
            for _ in range(count)
        ]

    def counts_per_interval(
        self,
        horizon_s: float,
        interval_s: float = 1.0,
        start_hour: float = 12.0,
        redraw_bursts: bool = True,
    ) -> np.ndarray:
        """Poisson request counts per interval over the horizon."""
        if horizon_s <= 0 or interval_s <= 0:
            raise ValueError("horizon and interval must be positive")
        if redraw_bursts:
            self._draw_bursts(horizon_s)
        edges = np.arange(0.0, horizon_s, interval_s)
        rates = self._rate_at(edges, start_hour)
        return self._rng.poisson(rates * interval_s)

    def batch_sizes(
        self,
        horizon_s: float,
        batch_window_ms: float = 50.0,
        start_hour: float = 12.0,
    ) -> np.ndarray:
        """Served-batch sizes when requests are micro-batched.

        Production servers coalesce requests arriving within a small window
        into one GPU pass; burstiness therefore shows up as *batch size*
        variance, which feeds the latency model's per-batch cost.
        """
        counts = self.counts_per_interval(
            horizon_s, interval_s=batch_window_ms / 1e3, start_hour=start_hour
        )
        return counts[counts > 0]

    def peak_to_mean(self, horizon_s: float = 3600.0) -> float:
        """Burstiness summary: peak over mean interval counts."""
        counts = self.counts_per_interval(horizon_s)
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 0.0
