"""DRAM bandwidth and contention model.

Fig. 10 of the paper shows inference alone leaves DDR bandwidth headroom,
yet Fig. 16 shows naive co-location more than doubles P99 latency: the
problem is not average bandwidth exhaustion but *queueing* — bursty,
irregular trainer traffic inflates memory access latency long before
saturation.  We model that with an M/M/1-style latency multiplier
``1 / (1 - rho)`` on utilisation ``rho``, the standard closed-form for how
memory access latency balloons as a channel approaches saturation.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["MemoryTraffic", "MemoryBandwidthModel"]


@dataclass
class MemoryTraffic:
    """Demand of one workload on a memory domain, in GB/s."""

    read_gbps: float = 0.0
    write_gbps: float = 0.0

    @property
    def total_gbps(self) -> float:
        return self.read_gbps + self.write_gbps

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        return MemoryTraffic(
            self.read_gbps + other.read_gbps,
            self.write_gbps + other.write_gbps,
        )


class MemoryBandwidthModel:
    """Latency/throughput model of one DRAM domain (a socket's channels).

    Args:
        peak_gbps: aggregate channel bandwidth of the domain.
        base_latency_ns: unloaded DRAM access latency.
        write_penalty: writes cost this factor more than reads (turnaround
            overhead on the bus); irregular trainer writes are the expensive
            part of co-location.
        max_utilization: utilisation ceiling — queueing theory blows up at
            rho = 1, real DDR controllers saturate around 85-90% of peak.
    """

    def __init__(
        self,
        peak_gbps: float = 460.8,
        base_latency_ns: float = 90.0,
        write_penalty: float = 1.5,
        max_utilization: float = 0.9,
    ) -> None:
        if peak_gbps <= 0:
            raise ValueError("peak bandwidth must be positive")
        self.peak_gbps = peak_gbps
        self.base_latency_ns = base_latency_ns
        self.write_penalty = write_penalty
        self.max_utilization = max_utilization

    def utilization(self, traffic: MemoryTraffic) -> float:
        """Effective utilisation in [0, max_utilization]."""
        effective = traffic.read_gbps + self.write_penalty * traffic.write_gbps
        return min(effective / self.peak_gbps, self.max_utilization)

    def latency_multiplier(self, traffic: MemoryTraffic) -> float:
        """How much slower one access is versus an idle memory system."""
        rho = self.utilization(traffic)
        return 1.0 / (1.0 - rho)

    def access_latency_ns(self, traffic: MemoryTraffic) -> float:
        """Loaded access latency under the given aggregate demand."""
        return self.base_latency_ns * self.latency_multiplier(traffic)

    def headroom_gbps(self, traffic: MemoryTraffic) -> float:
        """Remaining read-equivalent bandwidth before the saturation knee."""
        effective = traffic.read_gbps + self.write_penalty * traffic.write_gbps
        return max(0.0, self.max_utilization * self.peak_gbps - effective)

    # ------------------------------------------------------- demand estimates
    @staticmethod
    def inference_traffic(
        qps: float,
        lookups_per_query: int,
        row_bytes: int,
        l3_hit_ratio: float,
    ) -> MemoryTraffic:
        """DRAM read demand of the serving path.

        Only L3 misses reach DRAM; a higher hit ratio directly shrinks
        memory traffic — the mechanism behind the reuse optimisation.
        """
        misses_per_s = qps * lookups_per_query * (1.0 - l3_hit_ratio)
        return MemoryTraffic(read_gbps=misses_per_s * row_bytes / 1e9)

    @staticmethod
    def training_traffic(
        samples_per_s: float,
        lookups_per_sample: int,
        row_bytes: int,
        l3_hit_ratio: float,
        write_fraction: float = 0.5,
    ) -> MemoryTraffic:
        """DRAM demand of the co-located trainer (reads + gradient writes)."""
        touches_per_s = samples_per_s * lookups_per_sample * (1.0 - l3_hit_ratio)
        bytes_per_s = touches_per_s * row_bytes / 1e9
        return MemoryTraffic(
            read_gbps=bytes_per_s * (1.0 - write_fraction),
            write_gbps=bytes_per_s * write_fraction,
        )
