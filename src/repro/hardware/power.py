"""CPU power and utilisation models plus the diurnal load trace.

Reproduces three observations from the paper:

* Fig. 4 — inference-cluster CPU utilisation stays under ~20% all day, with
  a diurnal shape (evening peak, overnight trough).
* Fig. 5 / Fig. 18a — running the LoRA trainer alongside inference raises
  CPU power by only ~20% over inference-only operation.
* Fig. 18b — LiveUpdate converts idle CPU cycles into useful training work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CPUPowerModel", "DiurnalLoadTrace", "UtilizationSample"]


@dataclass
class UtilizationSample:
    """CPU state at one point in time."""

    time_s: float
    utilization: float
    power_w: float


class CPUPowerModel:
    """Utilisation -> package power, with the usual sub-linear curve.

    ``P(u) = idle + (peak - idle) * u ** alpha`` with ``alpha < 1``:
    early utilisation is disproportionately expensive (uncore/DRAM wake-up),
    which is why adding a 20-30%-utilisation trainer costs only ~20% power.
    """

    def __init__(
        self,
        idle_w: float = 180.0,
        peak_w: float = 800.0,
        alpha: float = 0.55,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if peak_w <= idle_w:
            raise ValueError("peak power must exceed idle power")
        self.idle_w = idle_w
        self.peak_w = peak_w
        self.alpha = alpha

    def power(self, utilization: float) -> float:
        u = float(np.clip(utilization, 0.0, 1.0))
        return self.idle_w + (self.peak_w - self.idle_w) * u ** self.alpha

    def relative_increase(self, base_util: float, extra_util: float) -> float:
        """Fractional power increase from adding ``extra_util`` of load."""
        p0 = self.power(base_util)
        p1 = self.power(min(base_util + extra_util, 1.0))
        return (p1 - p0) / p0


class DiurnalLoadTrace:
    """24-hour QPS/utilisation trace shaped like production traffic.

    The shape is two smooth humps (midday and evening peaks) over a night
    trough, scaled so peak CPU utilisation matches ``peak_utilization``
    (~20% in ByteDance's cluster, Fig. 4).
    """

    def __init__(
        self,
        peak_utilization: float = 0.20,
        trough_fraction: float = 0.35,
        peak_qps: float = 300_000.0,
        noise: float = 0.01,
        seed: int = 0,
    ) -> None:
        if not 0 < peak_utilization <= 1:
            raise ValueError("peak utilization must be in (0, 1]")
        self.peak_utilization = peak_utilization
        self.trough_fraction = trough_fraction
        self.peak_qps = peak_qps
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    def _shape(self, hour: np.ndarray) -> np.ndarray:
        """Normalised load in [trough_fraction, 1] for hour-of-day."""
        midday = np.exp(-0.5 * ((hour - 12.5) / 3.0) ** 2)
        evening = 1.15 * np.exp(-0.5 * ((hour - 20.5) / 2.2) ** 2)
        raw = np.maximum(midday, evening) / 1.15  # normalise peak to 1.0
        lo = self.trough_fraction
        return lo + (1.0 - lo) * raw

    def utilization_at(self, hour: float | np.ndarray) -> np.ndarray:
        hour = np.asarray(hour, dtype=np.float64) % 24.0
        util = self.peak_utilization * self._shape(hour)
        if self.noise:
            util = util * (
                1.0 + self._rng.normal(0.0, self.noise, size=util.shape)
            )
        return np.clip(util, 0.0, 1.0)

    def qps_at(self, hour: float | np.ndarray) -> np.ndarray:
        hour = np.asarray(hour, dtype=np.float64) % 24.0
        return self.peak_qps * self._shape(hour)

    def sample_day(
        self,
        interval_s: float = 300.0,
        power_model: CPUPowerModel | None = None,
        extra_utilization: float = 0.0,
    ) -> list[UtilizationSample]:
        """Sample a full day at ``interval_s`` cadence.

        ``extra_utilization`` adds a constant load (the co-located trainer)
        on top of the serving curve — the before/after of Fig. 18b.
        """
        power_model = power_model or CPUPowerModel()
        times = np.arange(0.0, 24 * 3600.0, interval_s)
        out = []
        for t in times:
            u = float(self.utilization_at(t / 3600.0))
            u_total = min(u + extra_utilization, 1.0)
            out.append(
                UtilizationSample(
                    time_s=float(t),
                    utilization=u_total,
                    power_w=power_model.power(u_total),
                )
            )
        return out
