"""Embedding-vector reuse via a shadow table (Section IV-D).

The inference engine has already fetched the embedding rows a request needed;
LiveUpdate pins those rows in a tightly packed, mlock'd shared buffer so the
trainer can read them without issuing its own DRAM lookups.  The simulator
models the buffer as a bounded, recency-ordered map from (field, row-id) to a
pinned row, and reports the fraction of trainer lookups it absorbs — the
quantity that turns the trainer's access pattern cache-friendly in Fig. 11a.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["ReuseStats", "ShadowEmbeddingBuffer"]


@dataclass
class ReuseStats:
    """Trainer-side reuse accounting."""

    reused: int = 0
    fetched: int = 0

    @property
    def total(self) -> int:
        return self.reused + self.fetched

    @property
    def reuse_ratio(self) -> float:
        return self.reused / self.total if self.total else 0.0


class ShadowEmbeddingBuffer:
    """Bounded recency buffer of embedding rows fetched by inference.

    Args:
        capacity_rows: maximum pinned rows (sized to fit the training
            partition's L3 in the paper's deployment).
    """

    def __init__(self, capacity_rows: int) -> None:
        if capacity_rows <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_rows = capacity_rows
        self._rows: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self.stats = ReuseStats()

    def __len__(self) -> int:
        return len(self._rows)

    def publish(self, field: int, ids: np.ndarray, rows: np.ndarray) -> None:
        """Called by the inference path after each lookup batch."""
        ids = np.asarray(ids, dtype=np.int64)
        for i, row in zip(ids, rows):
            key = (field, int(i))
            if key in self._rows:
                self._rows.move_to_end(key)
            self._rows[key] = row
            while len(self._rows) > self.capacity_rows:
                self._rows.popitem(last=False)

    def lookup(self, field: int, idx: int) -> np.ndarray | None:
        """Trainer-side fetch; returns the pinned row or None on miss."""
        row = self._rows.get((field, int(idx)))
        if row is None:
            self.stats.fetched += 1
            return None
        self.stats.reused += 1
        return row

    def gather(
        self, field: int, ids: np.ndarray, fallback: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Vector fetch: reuse pinned rows, fall back to ``fallback`` rows.

        Args:
            field: sparse field index.
            ids: row ids the trainer needs.
            fallback: ``(len(ids), d)`` rows from the base table (the DRAM
                path) used on buffer misses.

        Returns:
            ``(rows, num_reused)``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        out = np.array(fallback, dtype=np.float64, copy=True)
        reused = 0
        for j, i in enumerate(ids):
            row = self._rows.get((field, int(i)))
            if row is not None:
                out[j] = row
                reused += 1
        self.stats.reused += reused
        self.stats.fetched += len(ids) - reused
        return out, reused

    def hot_keys(self) -> list[tuple[int, int]]:
        """Currently pinned (field, id) pairs, LRU -> MRU order."""
        return list(self._rows.keys())

    def clear(self) -> None:
        self._rows.clear()
