"""Embedding-vector reuse via a shadow table (Section IV-D).

The inference engine has already fetched the embedding rows a request needed;
LiveUpdate pins those rows in a tightly packed, mlock'd shared buffer so the
trainer can read them without issuing its own DRAM lookups.  The simulator
models the buffer as a bounded, recency-ordered map from (field, row-id) to a
pinned row, and reports the fraction of trainer lookups it absorbs — the
quantity that turns the trainer's access pattern cache-friendly in Fig. 11a.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["ReuseStats", "ShadowEmbeddingBuffer", "BatchedShadowReuse"]


@dataclass
class ReuseStats:
    """Trainer-side reuse accounting."""

    reused: int = 0
    fetched: int = 0

    @property
    def total(self) -> int:
        return self.reused + self.fetched

    @property
    def reuse_ratio(self) -> float:
        return self.reused / self.total if self.total else 0.0


class ShadowEmbeddingBuffer:
    """Bounded recency buffer of embedding rows fetched by inference.

    Args:
        capacity_rows: maximum pinned rows (sized to fit the training
            partition's L3 in the paper's deployment).
    """

    def __init__(self, capacity_rows: int) -> None:
        if capacity_rows <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_rows = capacity_rows
        self._rows: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self.stats = ReuseStats()

    def __len__(self) -> int:
        return len(self._rows)

    def publish(self, field: int, ids: np.ndarray, rows: np.ndarray) -> None:
        """Called by the inference path after each lookup batch."""
        ids = np.asarray(ids, dtype=np.int64)
        for i, row in zip(ids, rows):
            key = (field, int(i))
            if key in self._rows:
                self._rows.move_to_end(key)
            self._rows[key] = row
            while len(self._rows) > self.capacity_rows:
                self._rows.popitem(last=False)

    def lookup(self, field: int, idx: int) -> np.ndarray | None:
        """Trainer-side fetch; returns the pinned row or None on miss."""
        row = self._rows.get((field, int(idx)))
        if row is None:
            self.stats.fetched += 1
            return None
        self.stats.reused += 1
        return row

    def gather(
        self, field: int, ids: np.ndarray, fallback: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Vector fetch: reuse pinned rows, fall back to ``fallback`` rows.

        Args:
            field: sparse field index.
            ids: row ids the trainer needs.
            fallback: ``(len(ids), d)`` rows from the base table (the DRAM
                path) used on buffer misses.

        Returns:
            ``(rows, num_reused)``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        out = np.array(fallback, dtype=np.float64, copy=True)
        reused = 0
        for j, i in enumerate(ids):
            row = self._rows.get((field, int(i)))
            if row is not None:
                out[j] = row
                reused += 1
        self.stats.reused += reused
        self.stats.fetched += len(ids) - reused
        return out, reused

    def hot_keys(self) -> list[tuple[int, int]]:
        """Currently pinned (field, id) pairs, LRU -> MRU order."""
        return list(self._rows.keys())

    def clear(self) -> None:
        self._rows.clear()


class BatchedShadowReuse:
    """Offline vectorized absorption model of :class:`ShadowEmbeddingBuffer`.

    The serving-window simulator knows its whole publish stream up front,
    so instead of maintaining a live recency buffer one key at a time it
    can answer "would this key be pinned after the first ``q`` publishes?"
    for whole trainer batches at once.  A key is pinned exactly when fewer
    than ``capacity_rows`` distinct keys were published after its own last
    publish — a reuse-distance query, answered with dense arrays: a
    last-seen gather per key plus a histogram prefix-sum over
    previous-occurrence links (distinct keys after position ``p`` are the
    first-occurrences in ``(p, q)``, i.e. positions whose previous link
    falls at or before ``p``).

    Matches the sequential buffer decision-for-decision (pinned by
    ``tests/test_serving.py``); prefix lengths must not decrease across
    :meth:`absorbed` calls, mirroring simulated time moving forward.

    Parameters
    ----------
    published : numpy.ndarray of int64
        The full publish stream (non-negative ids), in publish order.
    capacity_rows : int
        Maximum pinned rows, as in :class:`ShadowEmbeddingBuffer`.
    """

    def __init__(self, published: np.ndarray, capacity_rows: int) -> None:
        if capacity_rows <= 0:
            raise ValueError("capacity must be positive")
        published = np.ascontiguousarray(published, dtype=np.int64)
        if published.size and published.min() < 0:
            raise ValueError("published ids must be non-negative")
        self.capacity_rows = capacity_rows
        n = published.size
        self._n = n
        order = np.argsort(published, kind="stable")
        pk = published[order]
        same = np.empty(n, dtype=bool)
        shifted = np.full(n, -1, dtype=np.int64)
        if n:
            same[0] = False
            same[1:] = pk[1:] == pk[:-1]
            shifted[1:] = order[:-1]
        # Previous occurrence of each publish position (-1 on first).
        self._prev = np.empty(n, dtype=np.int64)
        self._prev[order] = np.where(same, shifted, np.int64(-1))
        self._num_distinct = int(n - same.sum())
        # Last publish position per key within the advanced prefix.
        key_space = int(published.max()) + 1 if n else 1
        self._last_seen = np.full(key_space, -1, dtype=np.int64)
        self._pub = published
        # Histogram of previous links in the prefix (shifted by 1 so the
        # -1 "first occurrence" link lands in bin 0), and its prefix sum.
        self._prev_hist = np.zeros(n + 2, dtype=np.int64)
        self._prev_cum = np.zeros(n + 2, dtype=np.int64)
        self._cursor = 0

    def absorbed(self, prefix_len: int, keys: np.ndarray) -> np.ndarray:
        """Which ``keys`` the shadow buffer would serve after ``prefix_len``
        publishes; returns a boolean mask aligned with ``keys``."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        q = int(prefix_len)
        if q <= 0 or keys.size == 0:
            return np.zeros(keys.size, dtype=bool)
        if q < self._cursor:
            raise ValueError("prefix_len must not decrease across calls")
        q = min(q, self._n)
        self._advance(q)
        safe = np.clip(keys, 0, self._last_seen.size - 1)
        last_pos = self._last_seen[safe]
        published = (last_pos >= 0) & (safe == keys)
        if self._num_distinct <= self.capacity_rows:
            return published  # the buffer never overflows: pinned forever
        # Distinct keys published after last_pos = first-occurrences in
        # (last_pos, q) = positions with a previous link <= last_pos,
        # minus the prefix itself.
        newer = self._prev_cum[last_pos + 1] - (last_pos + 1)
        return published & (newer < self.capacity_rows)

    def _advance(self, q: int) -> None:
        """Roll last-seen positions and the prev-link histogram to ``q``."""
        if q <= self._cursor:
            return
        delta = slice(self._cursor, q)
        self._last_seen[self._pub[delta]] = np.arange(
            self._cursor, q, dtype=np.int64
        )
        self._prev_hist += np.bincount(
            self._prev[delta] + 1, minlength=self._prev_hist.size
        )
        # Links in the prefix never exceed q, so the prefix sum only needs
        # the first q+2 bins.
        np.cumsum(self._prev_hist[: q + 2], out=self._prev_cum[: q + 2])
        self._cursor = q
