"""Hardware substrate: CPU topology, L3 cache simulation, DRAM contention,
latency/power models, adaptive NUMA partitioning, and embedding reuse."""

from .cache import CacheStats, LRUCache, simulate_interleaved
from .latency import InferenceLatencyModel, LatencyBreakdown, percentile
from .memory import MemoryBandwidthModel, MemoryTraffic
from .numa import AdaptiveNumaPartitioner, PartitionState, RebalanceEvent
from .power import CPUPowerModel, DiurnalLoadTrace, UtilizationSample
from .reuse import ReuseStats, ShadowEmbeddingBuffer
from .tiered_store import TieredEmbeddingStore, TieredStoreConfig, TierStats
from .topology import CCD, EPYC_9684X_DUAL, NodeTopology, Socket

__all__ = [
    "CCD",
    "Socket",
    "NodeTopology",
    "EPYC_9684X_DUAL",
    "LRUCache",
    "CacheStats",
    "simulate_interleaved",
    "MemoryTraffic",
    "MemoryBandwidthModel",
    "InferenceLatencyModel",
    "LatencyBreakdown",
    "percentile",
    "CPUPowerModel",
    "DiurnalLoadTrace",
    "UtilizationSample",
    "AdaptiveNumaPartitioner",
    "PartitionState",
    "RebalanceEvent",
    "ReuseStats",
    "ShadowEmbeddingBuffer",
    "TieredEmbeddingStore",
    "TieredStoreConfig",
    "TierStats",
]
