"""Batched LRU cache model: whole access windows as array operations.

:class:`repro.hardware.cache.LRUCache` walks one ``OrderedDict`` operation
per key, which caps the serving-window simulator at a couple of million
accesses per second — the last scalar hot path left after the kernel layer
(PR 1) and the parameter plane (PR 2) went array-native.  This module
replaces the *per-key walk* without replacing the *semantics*:
:class:`BatchLRUCache` consumes a whole per-window access array at once and
returns hit masks, eviction events and byte traffic as vectors, while
reproducing the sequential LRU cache bit-for-bit (hit/miss sequence,
``used_bytes``, eviction order) — a property pinned by randomized traces in
``tests/test_vectorcache.py``, the same contract
``tests/test_kernels_equivalence.py`` enforces for the PR-1 kernels.

How exactness survives batching
-------------------------------

With a uniform entry size ``s`` the byte-capacity LRU is an entry-capacity
LRU with ``C = capacity_bytes // s`` slots.  ``access_many`` splits the
stream into chunks of at most ``C`` accesses.  Inside such a chunk no key
that has been touched can be evicted again before the chunk ends (fewer
than ``C`` distinct keys follow it), which collapses per-access state into
three vectorizable facts:

* an access hits iff its key was resident at chunk start and not yet
  evicted, **or** occurred earlier in the same chunk;
* evictions consume resident keys in LRU order, *skipping* keys the chunk
  has already touched (they moved to MRU);
* the post-chunk recency order is ``surviving untouched residents (old
  order) + touched keys (last-touch order)``.

The only sequential ambiguity left is a resident key whose first touch
races the eviction frontier (touch first -> it escapes and the frontier
skips it; eviction first -> the touch is a miss that re-inserts the key and
fires one more eviction).  :meth:`BatchLRUCache._resolve_chunk` settles
that race exactly with an optimistic vectorized pass plus a short
confirmation loop over the (rare) conflicting keys.

Like :class:`repro.core.kernels.IdSlotTable`, the cache has a *dense lane*:
when the id universe is known (``universe=`` — the serving simulator's key
spaces are bounded by construction), membership and recency depth are one
direct-address gather per batch and every remaining step is an O(chunk)
scatter, so no sorting or searching appears anywhere on the hot path.
Without a universe, each call compacts the ids it sees through one
``np.unique`` and runs the same dense core in compact space — still exact,
still batched, just paying one sort per call.

Mixed entry sizes (or a batch whose size disagrees with the resident
entries) fall back to an exact sequential replay, so the batched cache is a
drop-in for the scalar one everywhere, merely faster where it matters.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict

import numpy as np

from ..obs.metrics import registry as _obs_registry
from .cache import CacheStats

__all__ = ["BatchAccessResult", "BatchLRUCache", "IntervalCache"]

_REG = _obs_registry()
_CACHE_HITS = _REG.counter(
    "hardware.cache.hits", help="batched cache hits across all cache models"
)
_CACHE_MISSES = _REG.counter(
    "hardware.cache.misses", help="batched cache misses across all cache models"
)
_CACHE_EVICTIONS = _REG.counter(
    "hardware.cache.evictions", help="evictions fired by batched accesses"
)


def _note_cache_access(result: "BatchAccessResult") -> None:
    # Folds the masks the batch already computed; no per-item work.
    _CACHE_HITS.add(result.num_hits)
    _CACHE_MISSES.add(result.num_misses)
    evicted = result.num_evictions
    if evicted:
        _CACHE_EVICTIONS.add(evicted)

# Keep chunk working sets small enough to stay cache-friendly even when the
# modelled LRU itself is huge.
_MAX_CHUNK = 1 << 17


def _kth_of_merged(a: np.ndarray, b: list, k: int) -> int:
    """k-th smallest (0-based) of sorted array ``a`` merged with sorted
    list ``b`` (values distinct across both), without materialising the
    merge — O(log len(b)) via the classic two-sorted-arrays selection."""
    if not b:
        return int(a[k])
    lo = max(0, k + 1 - a.size)
    hi = min(len(b), k + 1)
    while lo < hi:
        f = (lo + hi) // 2  # elements taken from b
        if k - f >= a.size or (f < len(b) and b[f] < a[k - f]):
            lo = f + 1
        else:
            hi = f
    f = lo
    best = b[f - 1] if f > 0 else -1
    if 0 <= k - f < a.size:
        best = max(best, int(a[k - f]))
    return best


class BatchAccessResult:
    """Vectorized outcome of one :meth:`BatchLRUCache.access_many` call.

    Attributes
    ----------
    hit_mask : numpy.ndarray of bool
        Per-access hit flag, aligned with the ``keys`` argument.
    fill_bytes : numpy.ndarray of int64
        Per-access bytes fetched from the backing store (``0`` on a hit,
        the entry size on a miss — bypassing oversized objects still pay
        the fetch).  Materialised lazily.
    evicted_keys : numpy.ndarray of int64
        Keys evicted during the call, in eviction order.  Materialised
        lazily from the per-chunk eviction runs.
    evicted_bytes : numpy.ndarray of int64
        Bytes released per eviction, aligned with ``evicted_keys``.
    """

    __slots__ = ("hit_mask", "_sizes", "_evicted_parts", "_num_hits")

    def __init__(self, hit_mask, sizes, evicted_parts):
        self.hit_mask = hit_mask
        self._sizes = sizes  # scalar or per-access array
        self._evicted_parts = evicted_parts  # list of (keys, size) runs
        self._num_hits: int | None = None

    @property
    def fill_bytes(self) -> np.ndarray:
        return np.where(self.hit_mask, 0, self._sizes).astype(np.int64)

    @property
    def evicted_keys(self) -> np.ndarray:
        if not self._evicted_parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [k for k, _ in self._evicted_parts]
        ).astype(np.int64)

    @property
    def evicted_bytes(self) -> np.ndarray:
        return np.concatenate(
            [np.full(k.size, s, dtype=np.int64) for k, s in self._evicted_parts]
        ) if self._evicted_parts else np.empty(0, dtype=np.int64)

    @property
    def num_hits(self) -> int:
        if self._num_hits is None:
            self._num_hits = int(self.hit_mask.sum())
        return self._num_hits

    @property
    def num_misses(self) -> int:
        return int(self.hit_mask.size) - self.num_hits

    @property
    def num_evictions(self) -> int:
        return sum(int(k.size) for k, _ in self._evicted_parts)

    @property
    def total_fill_bytes(self) -> int:
        return int(self.fill_bytes.sum())

    def stats(self, into: CacheStats | None = None) -> CacheStats:
        """Fold the hit mask into a :class:`CacheStats` aggregate."""
        into = into if into is not None else CacheStats()
        into.hits += self.num_hits
        into.misses += self.num_misses
        return into


class BatchLRUCache:
    """Byte-capacity LRU over ``int64`` keys with batched array access.

    Semantically identical to :class:`repro.hardware.cache.LRUCache`
    (insert-on-miss, LRU eviction, oversized objects bypass) but keyed by
    integers and built for :meth:`access_many`: one call consumes a whole
    access window and returns vectors instead of walking a dict per key.

    Parameters
    ----------
    capacity_bytes : int
        Total capacity; inserting beyond it evicts LRU entries.  Zero is
        legal (everything misses).
    universe : int, optional
        When the key space is known to be ``[0, universe)``, a flat
        direct-address depth array replaces every search on the hot path
        (the same dense-lane idea as ``IdSlotTable``).  Keys outside the
        universe bypass the cache (always miss, never insert).  Without a
        universe any ``int64`` key is accepted and each ``access_many``
        call compacts its ids through one ``np.unique``.

    Notes
    -----
    The scalar :meth:`access` shim exists for drop-in compatibility and
    costs O(entries) per call — use :meth:`access_many` on hot paths.
    """

    def __init__(self, capacity_bytes: int, universe: int | None = None) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if universe is not None and universe <= 0:
            raise ValueError("universe must be positive when set")
        if universe is not None and universe >= 1 << 31:
            raise ValueError("universe must fit in int32")
        self.capacity_bytes = int(capacity_bytes)
        self.universe = universe
        self._order = np.empty(0, dtype=np.int64)  # keys, LRU -> MRU
        self._sizes = np.empty(0, dtype=np.int64)  # aligned with _order
        self._used = 0
        self._depth_of = (
            None if universe is None else np.full(universe, -1, dtype=np.int32)
        )
        # Scratch planes for the chunk kernels (first/last occurrence, uniq
        # ids), int32 to halve the random-access traffic.  Allocated once
        # and reused: reads are confined to the keys the current chunk just
        # wrote, so stale contents are harmless.
        self._scratch = np.empty((3, 0), dtype=np.int32)

    # ------------------------------------------------------------------ state
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return int(self._order.size)

    def capacity_rows(self, dim: int, policy) -> int:
        """Rows of one ``dim``-wide table this cache can hold on a lane.

        ``policy`` is a :class:`repro.core.dtypes.DTypePolicy`; the same
        byte budget holds twice as many float32 serving rows as float64
        training rows, which is the capacity side of the lane discipline.
        """
        row = policy.row_nbytes(dim)
        return self.capacity_bytes // row if row > 0 else 0

    def __contains__(self, key: object) -> bool:
        try:
            k = int(key)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        if self._depth_of is not None:
            return 0 <= k < self._depth_of.size and self._depth_of[k] >= 0
        return bool((self._order == k).any())

    def keys_lru_to_mru(self) -> np.ndarray:
        """Resident keys in recency order (least recent first)."""
        return self._order.copy()

    def clear(self) -> None:
        if self._depth_of is not None:
            self._depth_of[self._order] = -1
        self._order = np.empty(0, dtype=np.int64)
        self._sizes = np.empty(0, dtype=np.int64)
        self._used = 0

    def invalidate(self, key: object) -> bool:
        """Drop one entry if present (write-invalidate from another agent)."""
        if key not in self:
            return False
        k = int(key)  # type: ignore[arg-type]
        keep = self._order != k
        self._used -= int(self._sizes[~keep][0])
        self._order = self._order[keep]
        self._sizes = self._sizes[keep]
        if self._depth_of is not None:
            self._depth_of[k] = -1
            self._depth_of[self._order] = np.arange(self._order.size, dtype=np.int64)
        return True

    # ----------------------------------------------------------- scalar shim
    def access(self, key: object, size_bytes: int) -> bool:
        """Touch ``key``; returns True on hit.  Misses insert the entry.

        Compatibility shim matching ``LRUCache.access``; O(entries) per
        call.  Batch work belongs in :meth:`access_many`.
        """
        result = self.access_many(
            np.array([int(key)], dtype=np.int64), int(size_bytes)  # type: ignore[arg-type]
        )
        return bool(result.hit_mask[0])

    # ----------------------------------------------------------------- batch
    def access_many(
        self,
        keys: np.ndarray,
        sizes: np.ndarray | int,
        stats: CacheStats | None = None,
    ) -> BatchAccessResult:
        """Touch a key sequence in order; returns per-access vectors.

        Parameters
        ----------
        keys : numpy.ndarray of int64
            Access stream, in access order.  Duplicates are honoured
            sequentially (a miss earlier in the batch turns later touches
            of the same key into hits, subject to evictions).
        sizes : int or numpy.ndarray of int64
            Entry size per access; a scalar means one uniform size.  The
            fast vectorized path requires the batch and the resident
            entries to share one size — mixed sizes replay sequentially
            (still exact, no longer batched).
        stats : CacheStats, optional
            Aggregate accumulator updated in place when given.

        Returns
        -------
        BatchAccessResult
            Hit mask, per-access fill bytes and the eviction sequence.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = keys.size
        if n == 0:
            return BatchAccessResult(np.zeros(0, dtype=bool), 0, [])
        size_arr = None
        if np.ndim(sizes) == 0:
            s = int(sizes)
        else:
            size_arr = np.ascontiguousarray(sizes, dtype=np.int64)
            if size_arr.size != n:
                raise ValueError("keys and sizes disagree on length")
            if (size_arr < 0).any():
                raise ValueError("entry sizes must be non-negative")
            if (size_arr == size_arr[0]).all():
                s = int(size_arr[0])
                size_arr = None
            else:
                s = -1
        if size_arr is None and s < 0:
            raise ValueError("entry sizes must be non-negative")

        uniform_resident = self._order.size == 0 or bool(
            (self._sizes == s).all()
        )
        if size_arr is not None or not uniform_resident:
            per_size = (
                size_arr
                if size_arr is not None
                else np.full(n, s, dtype=np.int64)
            )
            result = self._access_seq(keys, per_size)
        else:
            result = self._access_uniform(keys, s)
        if stats is not None:
            result.stats(stats)
        if _REG.enabled:
            _note_cache_access(result)
        return result

    # ------------------------------------------------------- uniform fast path
    def _access_uniform(self, keys: np.ndarray, s: int) -> BatchAccessResult:
        n = keys.size
        hit_mask = np.zeros(n, dtype=bool)
        if s > self.capacity_bytes:
            # Un-cacheable objects bypass; with a uniform resident size the
            # cache is empty here, so every access misses and nothing inserts.
            return BatchAccessResult(hit_mask, s, [])

        if self._depth_of is not None:
            in_range = (keys >= 0) & (keys < self._depth_of.size)
            if in_range.all():
                evicted = self._run_dense(keys, s, hit_mask)
            else:
                # Out-of-universe keys bypass; the in-range sub-stream runs
                # through the dense core and the mask stitches back.
                sub_hits = np.zeros(int(in_range.sum()), dtype=bool)
                evicted = self._run_dense(keys[in_range], s, sub_hits)
                hit_mask[in_range] = sub_hits
        else:
            evicted = self._run_sparse(keys, s, hit_mask)
        return BatchAccessResult(hit_mask, s, [(ev, s) for ev in evicted])

    def _run_dense(
        self, keys: np.ndarray, s: int, hit_out: np.ndarray
    ) -> list[np.ndarray]:
        """Uniform-size batch against the persistent direct-address lane."""
        self._order, evicted = self._run_core(
            keys.astype(np.int32),
            s,
            self._depth_of,
            self._order.astype(np.int32, copy=False),
            hit_out,
        )
        self._sizes = np.full(self._order.size, s, dtype=np.int64)
        self._used = int(self._order.size) * s
        return evicted

    def _run_sparse(
        self, keys: np.ndarray, s: int, hit_out: np.ndarray
    ) -> list[np.ndarray]:
        """Uniform-size batch without a universe: compact ids, then dense."""
        n_res = self._order.size
        uniq_all, inverse = np.unique(
            np.concatenate([self._order, keys]), return_inverse=True
        )
        inverse = inverse.astype(np.int32)
        depth_of = np.full(uniq_all.size, -1, dtype=np.int32)
        order_c = inverse[:n_res]
        depth_of[order_c] = np.arange(n_res, dtype=np.int32)
        order_c, evicted_c = self._run_core(
            inverse[n_res:], s, depth_of, order_c, hit_out
        )
        self._order = uniq_all[order_c]
        self._sizes = np.full(self._order.size, s, dtype=np.int64)
        self._used = int(self._order.size) * s
        return [uniq_all[ev] for ev in evicted_c]

    def _run_core(
        self,
        keys: np.ndarray,
        s: int,
        depth_of: np.ndarray,
        order: np.ndarray,
        hit_out: np.ndarray,
    ) -> list[np.ndarray]:
        """Chunked exact LRU over a compact key space.

        ``depth_of`` maps key -> recency depth (-1 absent) and ``order``
        maps depth -> key; ``depth_of`` is updated in place.  Returns the
        final recency order plus the per-chunk eviction runs; callers
        store/translate them for their key space (dense keeps them as-is,
        sparse maps compact ids back).
        """
        n = keys.size
        cap = self.capacity_bytes // s if s > 0 else n + order.size
        # Chunks anywhere <= cap are exact; fractions of cap are faster in
        # practice — an evict-then-retouch race only needs resolving when
        # both ends land in the SAME chunk, so shorter chunks turn most
        # races into ordinary cross-chunk misses on the cheap path.
        chunk = max(1, min(cap, max(cap // 4, 4096), _MAX_CHUNK))
        positions = np.arange(min(chunk, n), dtype=np.int32)
        evicted_parts: list[np.ndarray] = []
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            order, ev = self._access_chunk(
                keys[lo:hi],
                cap,
                depth_of,
                order,
                hit_out[lo:hi],
                positions[: hi - lo],
            )
            if ev.size:
                evicted_parts.append(ev)
        return order, evicted_parts

    def _access_chunk(
        self,
        chunk: np.ndarray,
        cap: int,
        depth_of: np.ndarray,
        order: np.ndarray,
        hit_out: np.ndarray,
        positions: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One <=cap-length chunk: fills ``hit_out``, returns (order, evicted).

        Sort-free: distinct keys, first/last occurrences and membership all
        come from scatter/gather against the compact key space.
        """
        n_res = order.size
        size = chunk.size
        if self._scratch.shape[1] < depth_of.size:
            self._scratch = np.empty((3, depth_of.size), dtype=np.int32)
        first_of, uid_of, last_of = self._scratch
        # First occurrence per key: reversed scatter makes the first write
        # win; a position is "first" iff the scatter kept it.
        first_of[chunk[::-1]] = positions[::-1]
        is_first = first_of[chunk] == positions
        uniq = chunk[is_first]  # distinct keys, first-occurrence order
        n_uniq = uniq.size
        uid_of[uniq] = positions[:n_uniq]
        inv = uid_of[chunk]
        last_of[chunk] = positions
        last_pos = last_of[uniq]
        depth_u = depth_of[uniq]
        found = depth_u >= 0
        n_touched = int(found.sum())
        new_inserts = n_uniq - n_touched

        flipped_u = np.zeros(n_uniq, dtype=bool)
        evicted_depth = np.zeros(n_res, dtype=bool)
        touched_any = n_touched > 0
        if not touched_any:
            evicted_depth[: max(0, n_res + new_inserts - cap)] = True
        elif n_res + new_inserts + n_touched > cap:
            # Frontier may race the touches; resolve exactly.  Decisions
            # ordered by depth via one O(entries) bucket scatter.
            dbuf = np.full(n_res, -1, dtype=np.int32)
            touched_uid = np.flatnonzero(found)
            dbuf[depth_u[touched_uid]] = touched_uid
            dec_depth = np.flatnonzero(dbuf >= 0)
            dec_uniq = dbuf[dec_depth]
            dec_pos = first_of[uniq[dec_uniq]]
            if dec_depth.size < 512:
                # uniq is in first-occurrence order, so new-key first
                # touches are already an ascending position array.
                self._resolve_chunk_scalar(
                    n_res,
                    cap,
                    first_of[uniq[~found]],
                    dec_pos,
                    dec_depth,
                    dec_uniq,
                    evicted_depth,
                    flipped_u,
                )
            else:
                self._resolve_chunk(
                    n_res,
                    cap,
                    is_first & (~found)[inv],
                    dec_pos,
                    dec_depth,
                    dec_uniq,
                    evicted_depth,
                    flipped_u,
                )

        miss_first_u = ~found | flipped_u
        np.logical_not(is_first & miss_first_u[inv], out=hit_out)

        evicted = order[evicted_depth]
        depth_of[evicted] = -1
        # Post-chunk recency order: surviving untouched residents keep their
        # relative order; every chunk key re-enters at MRU in last-touch
        # order (rank via one cumsum — last positions are distinct ints).
        surv = ~evicted_depth
        if touched_any:
            surv[depth_u[found]] = False
        seen = np.zeros(size, dtype=bool)
        seen[last_pos] = True
        rank_u = np.cumsum(seen)[last_pos] - 1
        tail = np.empty(n_uniq, dtype=np.int32)
        tail[rank_u] = uniq
        new_order = np.concatenate([order[surv], tail])
        depth_of[new_order] = np.arange(new_order.size, dtype=np.int32)
        return new_order, evicted

    @staticmethod
    def _resolve_chunk(
        n_res: int,
        cap: int,
        base_insert_pos: np.ndarray,
        dec_pos: np.ndarray,
        dec_depth: np.ndarray,
        dec_uniq: np.ndarray,
        evicted_depth: np.ndarray,
        flipped_u: np.ndarray,
    ) -> None:
        """Race the eviction frontier against the resident touches, exactly.

        A touched resident at depth ``d`` either *escapes* (touched before
        the frontier reaches ``d``; the frontier skips it from then on) or
        *flips* (evicted first; its touch re-misses and the re-insert fires
        one more eviction downstream).  Resolution is optimistic: assume
        every touched resident escapes, compute each one's would-be
        consumption event vectorized, and check it against the touch
        position.  Violations consumed before the earliest *remaining*
        violating touch are insulated from undiscovered re-inserts and
        confirmed in consumption order, folding each confirmed flip's
        re-insert (a small sorted list) and below-count shift into later
        candidates' lookups — as flips confirm, the remaining minimum
        touch rises, so whole cascades settle in one round.  The
        earliest-consumed candidate is causally forced, so every round
        makes progress; violations only *created* by a round's re-inserts
        surface on the next pass.  Fills ``evicted_depth`` / ``flipped_u``.
        """
        free = cap - n_res
        n_dec = dec_depth.size
        dec_rank = np.arange(n_dec, dtype=np.int64)  # touched residents below, by depth
        insert_pos = base_insert_pos.copy()
        flip_mask_depth = np.zeros(n_res, dtype=np.int64)
        pending = np.ones(n_dec, dtype=bool)
        while True:
            events = np.flatnonzero(insert_pos)  # insert times, ascending
            # Frontier reaches depth d at the event consuming its
            # (non-escaped-below + 1)-th victim; escaped-below under the
            # current assumption = shallower decisions minus known flips.
            flips_below = np.cumsum(flip_mask_depth) - flip_mask_depth
            below = dec_depth - dec_rank + flips_below[dec_depth]
            event_idx = free + below  # 0-based index into ``events``
            reachable = pending & (event_idx < events.size)
            viol = reachable.copy()
            cons = events[event_idx[reachable]]
            viol[reachable] = cons < dec_pos[reachable]
            if not viol.any():
                break
            cons_v = np.zeros(n_dec, dtype=np.int64)
            cons_v[reachable] = cons
            viol_idx = np.flatnonzero(viol)
            by_cons = viol_idx[np.argsort(cons_v[viol_idx], kind="stable")]
            by_touch = viol_idx[np.argsort(dec_pos[viol_idx], kind="stable")]
            touch_order = by_touch.tolist()
            touch_pos = dec_pos[by_touch].tolist()
            heap_at = 0
            accepted = np.zeros(n_dec, dtype=bool)
            new_pos: list[int] = []  # this round's re-inserts, sorted
            new_depths: list[int] = []  # their depths, sorted
            ev_list = event_idx.tolist()
            dd_list = dec_depth.tolist()
            dp_list = dec_pos.tolist()
            n_events = events.size
            # repro-lint: disable=hot-loop -- eviction-frontier race resolver: each confirmed flip feeds the next candidate's merged lookup, inherently sequential; loop length is violations-per-round, not batch size
            for i in by_cons.tolist():
                k = ev_list[i] + bisect.bisect_left(new_depths, dd_list[i])
                if k >= n_events + len(new_pos):
                    continue
                consumed_at = _kth_of_merged(events, new_pos, k)
                while accepted[touch_order[heap_at]]:
                    heap_at += 1
                if consumed_at < touch_pos[heap_at]:
                    accepted[i] = True
                    pending[i] = False
                    insert_pos[dp_list[i]] = True  # the re-miss inserts
                    flip_mask_depth[dd_list[i]] = 1
                    bisect.insort(new_pos, dp_list[i])
                    bisect.insort(new_depths, dd_list[i])
        flipped = ~pending
        flipped_u[dec_uniq[flipped]] = True
        esc_depths = dec_depth[pending]  # ascending by construction
        fired = max(0, n_res + int(insert_pos.sum()) - cap)
        frontier = fired
        while True:
            stretched = fired + int(np.searchsorted(esc_depths, frontier))
            if stretched == frontier:
                break
            frontier = stretched
        if frontier > n_res:
            raise AssertionError("eviction frontier overran the cache")
        evicted_depth[:frontier] = True
        evicted_depth[esc_depths[esc_depths < frontier]] = False

    @staticmethod
    def _resolve_chunk_scalar(
        n_res: int,
        cap: int,
        new_first_pos: np.ndarray,
        dec_pos: np.ndarray,
        dec_depth: np.ndarray,
        dec_uniq: np.ndarray,
        evicted_depth: np.ndarray,
        flipped_u: np.ndarray,
    ) -> None:
        """Direct time-ordered walk of the frontier race, for few decisions.

        Same contract as :meth:`_resolve_chunk` (``new_first_pos`` is the
        sorted first-touch positions of brand-new keys rather than a
        per-position mask); this variant simulates the touch events in
        access order, tracking the frontier in pure integer arithmetic
        (skips resolved by bisect over the small escaped list) and
        materialising the eviction mask once at the end.  O(decisions)
        Python steps — the cheaper shape when a thrashed cache touches
        only a handful of residents per chunk.
        """
        free = cap - n_res
        order_ev = np.argsort(dec_pos, kind="stable")
        ins_at = np.searchsorted(new_first_pos, dec_pos)
        escaped: list[int] = []  # sorted depths the frontier must skip
        frontier = 0
        fired = 0
        extra = 0

        def advance(due: int) -> None:
            nonlocal frontier, fired
            need = due - fired
            if need <= 0:
                return
            lo = bisect.bisect_left(escaped, frontier)
            x = frontier + need
            while True:
                hi = bisect.bisect_left(escaped, x)
                stretched = frontier + need + (hi - lo)
                if stretched == x:
                    break
                x = stretched
            frontier = x
            fired += need

        ins_list = ins_at.tolist()
        depth_list = dec_depth.tolist()
        uniq_list = dec_uniq.tolist()
        # repro-lint: disable=hot-loop -- frontier replay over eviction events only (not accesses); each event's advance depends on the previous event's escapes
        for e in order_ev.tolist():
            advance(ins_list[e] + extra - free)
            d = depth_list[e]
            if d < frontier:
                # Evicted before its touch: the touch misses and re-inserts.
                flipped_u[uniq_list[e]] = True
                extra += 1
            else:
                bisect.insort(escaped, d)
        advance(new_first_pos.size + extra - free)
        if frontier > n_res:
            raise AssertionError("eviction frontier overran the cache")
        evicted_depth[:frontier] = True
        below = escaped[: bisect.bisect_left(escaped, frontier)]
        if below:
            evicted_depth[below] = False

    # ------------------------------------------------------ sequential fallback
    def _access_seq(
        self, keys: np.ndarray, sizes: np.ndarray
    ) -> BatchAccessResult:
        """Exact sequential replay for mixed-size batches."""
        entries: OrderedDict[int, int] = OrderedDict(
            zip(self._order.tolist(), self._sizes.tolist())
        )
        used = self._used
        cap = self.capacity_bytes
        bound = None if self._depth_of is None else self._depth_of.size
        hit_mask = np.zeros(keys.size, dtype=bool)
        evicted_keys: list[int] = []
        evicted_bytes: list[int] = []
        # repro-lint: disable=hot-loop -- exact sequential reference for mixed-size batches; the batched lanes above handle the uniform-size hot shapes
        for j, (k, s) in enumerate(zip(keys.tolist(), sizes.tolist())):
            if k in entries:
                entries.move_to_end(k)
                hit_mask[j] = True
                continue
            if s > cap:
                continue
            if bound is not None and not 0 <= k < bound:
                continue  # outside the dense universe: bypass
            entries[k] = s
            used += s
            while used > cap:
                ev_k, ev_s = entries.popitem(last=False)
                used -= ev_s
                evicted_keys.append(ev_k)
                evicted_bytes.append(ev_s)
        if self._depth_of is not None:
            self._depth_of[self._order] = -1
        self._order = np.fromiter(
            entries.keys(), dtype=np.int64, count=len(entries)
        )
        self._sizes = np.fromiter(
            entries.values(), dtype=np.int64, count=len(entries)
        )
        self._used = used
        if self._depth_of is not None:
            self._depth_of[self._order] = np.arange(self._order.size, dtype=np.int64)
        parts = [
            (np.array([k], dtype=np.int64), sz)
            for k, sz in zip(evicted_keys, evicted_bytes)
        ]
        return BatchAccessResult(hit_mask, sizes, parts)


class IntervalCache:
    """CLOCK-style coarse-recency cache: resident = touched recently.

    The issue with exact LRU is that eviction *order* serialises the
    simulation; real L3s do not pay that cost either — they run
    pseudo-LRU/CLOCK, which approximates recency with periodically cleared
    reference bits.  This model makes the same trade, taken to its
    vectorizable limit: an entry is resident iff it was touched within the
    last ``W = capacity_bytes // entry_size`` accesses.  Since ``W``
    consecutive accesses touch at most ``W`` distinct keys, occupancy never
    exceeds the byte capacity, and the resident set is always a *subset* of
    what true LRU would hold — every hit this model reports is a hit the
    exact model reports too (pinned in ``tests/test_vectorcache.py``).

    One ``access_many`` pass costs ~8 array ops per ``W``-sized block
    (last-touch gather, window compare, scatter update), with no per-key
    or per-eviction work at all, which is what lets the serving-window
    engine consume production-scale windows at memory speed.  The exact
    twin, :class:`BatchLRUCache`, stays available as the
    ``cache_policy="lru"`` mode of the serving engine and as the reference
    the property tests pin against.

    Parameters
    ----------
    capacity_bytes : int
        Byte capacity; entries silently expire once ``W`` younger accesses
        have gone by.
    universe : int
        The key space ``[0, universe)`` (required — recency lives in a
        direct-address plane).  Keys outside bypass (always miss).
    """

    def __init__(self, capacity_bytes: int, universe: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        if universe is None or universe <= 0:
            raise ValueError("IntervalCache requires a positive universe")
        if universe >= 1 << 31:
            raise ValueError("universe must fit in int32")
        self.capacity_bytes = int(capacity_bytes)
        self.universe = int(universe)
        self._last = np.full(universe, np.iinfo(np.int64).min // 2, dtype=np.int64)
        self._first_scratch = np.empty(0, dtype=np.int32)
        self._tick = 0  # absolute position of the next access
        self._entry_size: int | None = None

    # ------------------------------------------------------------------ state
    @property
    def used_bytes(self) -> int:
        return self.num_entries * (self._entry_size or 0)

    @property
    def num_entries(self) -> int:
        # Lazy O(universe) scan: nothing on the hot path reads residency,
        # and ``_last`` + the clock already hold the full state.
        if self._entry_size is None:
            return 0
        return int(
            (self._last >= self._tick - self._window(self._entry_size)).sum()
        )

    def _window(self, s: int) -> int:
        return self.capacity_bytes // s if s > 0 else 1 << 62

    def capacity_rows(self, dim: int, policy) -> int:
        """Rows of one ``dim``-wide table this cache can hold on a lane.

        Same contract as :meth:`BatchLRUCache.capacity_rows`: the byte
        budget divided by the lane's row size (float32 fits 2x float64).
        """
        row = policy.row_nbytes(dim)
        return self.capacity_bytes // row if row > 0 else 0

    def __contains__(self, key: object) -> bool:
        try:
            k = int(key)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        if not 0 <= k < self.universe or self._entry_size is None:
            return False
        return self._tick - self._last[k] <= self._window(self._entry_size)

    def clear(self) -> None:
        # Lazy: jumping the clock past any window expires everything.
        self._tick += self.universe + (
            self._window(self._entry_size) if self._entry_size else 0
        )

    def invalidate(self, key: object) -> bool:
        if key not in self:
            return False
        self._last[int(key)] = np.iinfo(np.int64).min // 2  # type: ignore[arg-type]
        return True

    # ----------------------------------------------------------------- access
    def access(self, key: object, size_bytes: int) -> bool:
        """Scalar shim; batch work belongs in :meth:`access_many`."""
        result = self.access_many(
            np.array([int(key)], dtype=np.int64), int(size_bytes)  # type: ignore[arg-type]
        )
        return bool(result.hit_mask[0])

    def access_many(
        self,
        keys: np.ndarray,
        sizes: np.ndarray | int,
        stats: CacheStats | None = None,
    ) -> BatchAccessResult:
        """Touch a key sequence in order; returns per-access vectors.

        Same contract as :meth:`BatchLRUCache.access_many`, minus the
        eviction *sequence*: expiry is implicit, so ``evicted_keys`` is
        always empty while ``used_bytes`` tracks the resident count
        exactly for this model.  Requires one uniform entry size per
        cache lifetime (the serving engine's workloads are row-granular).
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = keys.size
        if np.ndim(sizes) != 0:
            arr = np.ascontiguousarray(sizes, dtype=np.int64)
            if arr.size != n:
                raise ValueError("keys and sizes disagree on length")
            if n and not (arr == arr[0]).all():
                raise ValueError("IntervalCache entries must share one size")
            s = int(arr[0]) if n else 0
        else:
            s = int(sizes)
        if s < 0:
            raise ValueError("entry sizes must be non-negative")
        if n == 0:
            return BatchAccessResult(np.zeros(0, dtype=bool), s, [])
        if self._entry_size is None:
            self._entry_size = s
        elif s != self._entry_size:
            raise ValueError("IntervalCache entries must share one size")
        w = self._window(s)
        hit_mask = np.empty(n, dtype=bool)
        in_range = (keys >= 0) & (keys < self.universe)
        if not in_range.all():
            # Out-of-universe keys bypass (always miss, never touch state
            # or age the clock), matching BatchLRUCache's dense-lane
            # contract; the in-range sub-stream recurses and stitches back.
            hit_mask[:] = False
            hit_mask[in_range] = self.access_many(keys[in_range], s).hit_mask
            result = BatchAccessResult(hit_mask, s, [])
            if stats is not None:
                result.stats(stats)
            if _REG.enabled:
                # The recursive call above already counted the in-range
                # sub-stream; only the bypassing misses are new here.
                _CACHE_MISSES.add(n - int(in_range.sum()))
            return result
        if s > self.capacity_bytes:
            hit_mask[:] = False  # oversized objects bypass
        else:
            last = self._last
            if self._first_scratch.size < self.universe:
                self._first_scratch = np.empty(self.universe, dtype=np.int32)
            first_of = self._first_scratch
            # Blocks no longer than the window: a repeat inside one block
            # is by construction within the window (a guaranteed hit), so
            # only each block's first occurrence consults the last-touch
            # plane.  First occurrences via the reversed-scatter trick.
            block = max(1, min(w, _MAX_CHUNK))
            offs = np.arange(block, dtype=np.int32)
            for lo in range(0, n, block):
                hi = min(lo + block, n)
                part = keys[lo:hi]
                off = offs[: hi - lo]
                first_of[part[::-1]] = off[::-1]
                is_first = first_of[part] == off
                pos = np.arange(
                    self._tick + lo, self._tick + hi, dtype=np.int64
                )
                prev = last[part]
                last[part] = pos
                sub = hit_mask[lo:hi]
                np.less_equal(pos - prev, w, out=sub)
                sub[~is_first] = True
        self._tick += n
        result = BatchAccessResult(hit_mask, s, [])
        if stats is not None:
            result.stats(stats)
        if _REG.enabled:
            _note_cache_access(result)
        return result

