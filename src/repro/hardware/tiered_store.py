"""Tiered embedding storage: GPU HBM + CPU DRAM + remote parameter server.

Section II-B: inference clusters keep 5-10% *hot* embeddings in GPU HBM and
the remaining warm rows in multi-TB CPU DRAM; cold misses fall through to
the remote parameter server.  This module implements that hierarchy as an
actual row store (reads return real vectors) with per-tier hit accounting
and a latency cost model, so serving experiments can measure the effect of
placement policy on lookup time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["TierStats", "TieredStoreConfig", "TieredEmbeddingStore"]


@dataclass
class TierStats:
    """Per-tier access counters."""

    hbm_hits: int = 0
    dram_hits: int = 0
    remote_misses: int = 0

    @property
    def total(self) -> int:
        return self.hbm_hits + self.dram_hits + self.remote_misses

    @property
    def hbm_hit_ratio(self) -> float:
        return self.hbm_hits / self.total if self.total else 0.0

    @property
    def local_hit_ratio(self) -> float:
        """Fraction served without touching the remote parameter server."""
        if not self.total:
            return 0.0
        return (self.hbm_hits + self.dram_hits) / self.total


@dataclass
class TieredStoreConfig:
    """Capacity and latency parameters of the hierarchy.

    Latencies are per-row effective costs (amortised over batched reads),
    reflecting the paper's bandwidth figures: NVLink-class HBM access,
    DDR5 DRAM, and an RDMA round trip to the parameter server.
    """

    hbm_capacity_rows: int = 1000
    hbm_latency_us: float = 0.5
    dram_latency_us: float = 2.0
    remote_latency_us: float = 80.0
    promote_on_access: bool = True


class TieredEmbeddingStore:
    """Row store for one embedding table across HBM / DRAM / remote tiers.

    The DRAM tier holds the full local partition.  The HBM tier is an LRU
    subset sized by ``hbm_capacity_rows``; accesses can promote rows into
    it (default), mirroring production hot-row placement.  Rows outside the
    local partition (sharded elsewhere) are remote and served by the
    parameter-server callback.

    Args:
        weight: the ``(rows, d)`` local DRAM-resident partition.
        config: tier parameters.
        local_ids: ids owned by this node's partition.  ``None`` means the
            whole table is local (single-node deployments).
        remote_fetch: callback ``(ids) -> rows`` for non-local ids.
    """

    def __init__(
        self,
        weight: np.ndarray,
        config: TieredStoreConfig | None = None,
        local_ids: np.ndarray | None = None,
        remote_fetch=None,
    ) -> None:
        self.weight = np.asarray(weight, dtype=np.float64)
        self.config = config or TieredStoreConfig()
        self._local = (
            None if local_ids is None else set(int(i) for i in local_ids)
        )
        self._remote_fetch = remote_fetch
        self._hbm: OrderedDict[int, None] = OrderedDict()
        self.stats = TierStats()

    # ------------------------------------------------------------- placement
    @property
    def hbm_rows(self) -> int:
        return len(self._hbm)

    def is_local(self, idx: int) -> bool:
        return self._local is None or int(idx) in self._local

    def preload_hot(self, ids: np.ndarray) -> int:
        """Pin the given ids into HBM (initial hot-set placement).

        Returns how many were admitted before capacity ran out.
        """
        admitted = 0
        for i in np.asarray(ids, dtype=np.int64):
            if len(self._hbm) >= self.config.hbm_capacity_rows:
                break
            if self.is_local(int(i)):
                self._hbm[int(i)] = None
                admitted += 1
        return admitted

    def _touch_hbm(self, idx: int) -> None:
        self._hbm[idx] = None
        self._hbm.move_to_end(idx)
        while len(self._hbm) > self.config.hbm_capacity_rows:
            self._hbm.popitem(last=False)

    # ---------------------------------------------------------------- lookup
    def lookup(self, ids: np.ndarray) -> tuple[np.ndarray, float]:
        """Fetch rows for ``ids``; returns (rows, modelled latency in us).

        Latency is the sum of per-row tier costs — the quantity the hybrid
        hierarchy is designed to minimise by keeping hot rows in HBM.
        """
        ids = np.asarray(ids, dtype=np.int64)
        out = np.zeros((ids.shape[0], self.weight.shape[1]))
        latency_us = 0.0
        cfg = self.config
        remote_needed: list[int] = []
        for j, raw in enumerate(ids):
            i = int(raw)
            if not self.is_local(i):
                remote_needed.append(j)
                continue
            if i in self._hbm:
                self.stats.hbm_hits += 1
                latency_us += cfg.hbm_latency_us
                self._hbm.move_to_end(i)
            else:
                self.stats.dram_hits += 1
                latency_us += cfg.dram_latency_us
                if cfg.promote_on_access:
                    self._touch_hbm(i)
            out[j] = self.weight[i]
        if remote_needed:
            self.stats.remote_misses += len(remote_needed)
            latency_us += cfg.remote_latency_us * len(remote_needed)
            if self._remote_fetch is not None:
                remote_ids = ids[remote_needed]
                out[remote_needed] = self._remote_fetch(remote_ids)
        return out, latency_us

    # ---------------------------------------------------------------- update
    def apply_update(self, ids: np.ndarray, rows: np.ndarray) -> int:
        """Write updated rows into the local partition (delta application).

        HBM copies are write-through (same backing array), so no
        invalidation is needed; returns the number of local rows written.
        """
        ids = np.asarray(ids, dtype=np.int64)
        written = 0
        for i, row in zip(ids, rows):
            i = int(i)
            if self.is_local(i) and 0 <= i < self.weight.shape[0]:
                self.weight[i] = row
                written += 1
        return written

    def mean_lookup_latency_us(self) -> float:
        """Average modelled per-row latency so far."""
        s = self.stats
        if not s.total:
            return 0.0
        cfg = self.config
        total = (
            s.hbm_hits * cfg.hbm_latency_us
            + s.dram_hits * cfg.dram_latency_us
            + s.remote_misses * cfg.remote_latency_us
        )
        return total / s.total
