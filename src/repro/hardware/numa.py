"""Adaptive NUMA/CCD resource partitioning (Algorithm 2 of the paper).

The scheduler spatially isolates the latency-critical inference threads and
the LoRA trainer onto disjoint CCD sets, then continuously rebalances: if
observed P99 inference latency exceeds ``t_high`` one CCD moves from training
to inference; if it drops below ``t_low`` (and training is under its cap)
one CCD moves back.  All moves respect a minimum inference allocation and a
training cap so the trainer can never saturate memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .topology import NodeTopology

__all__ = ["PartitionState", "RebalanceEvent", "AdaptiveNumaPartitioner"]


@dataclass(frozen=True)
class PartitionState:
    """Current CCD assignment."""

    inference_ccds: tuple[int, ...]
    training_ccds: tuple[int, ...]

    @property
    def num_inference(self) -> int:
        return len(self.inference_ccds)

    @property
    def num_training(self) -> int:
        return len(self.training_ccds)


@dataclass(frozen=True)
class RebalanceEvent:
    """One scheduler decision, recorded for analysis/tests."""

    cycle: int
    p99_ms: float
    action: str  # "to_inference" | "to_training" | "hold"
    moved_ccd: int | None
    state: PartitionState


class AdaptiveNumaPartitioner:
    """Implements Algorithm 2.

    Args:
        topology: node CCD inventory.
        t_high_ms: relocate a CCD to inference above this P99 (paper: 10 ms).
        t_low_ms: reclaim a CCD for training below this P99 (paper: 6 ms).
        min_inference_ccds: floor on the inference allocation.
        max_training_ccds: cap on the training allocation (bandwidth guard).
        initial_training_ccds: CCDs granted to training at start.
    """

    def __init__(
        self,
        topology: NodeTopology,
        t_high_ms: float = 10.0,
        t_low_ms: float = 6.0,
        min_inference_ccds: int = 4,
        max_training_ccds: int = 4,
        initial_training_ccds: int = 2,
    ) -> None:
        if t_low_ms >= t_high_ms:
            raise ValueError("t_low must be below t_high")
        total = topology.num_ccds
        if min_inference_ccds + 1 > total:
            raise ValueError("topology too small for the minimum inference set")
        if initial_training_ccds > max_training_ccds:
            raise ValueError("initial training allocation exceeds the cap")
        self.topology = topology
        self.t_high_ms = t_high_ms
        self.t_low_ms = t_low_ms
        self.min_inference_ccds = min_inference_ccds
        self.max_training_ccds = max_training_ccds
        all_ids = [c.ccd_id for c in topology.ccds]
        n_train = min(initial_training_ccds, max_training_ccds)
        self._training = list(all_ids[-n_train:]) if n_train else []
        self._inference = [i for i in all_ids if i not in self._training]
        self.history: list[RebalanceEvent] = []
        self._cycle = 0

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> PartitionState:
        return PartitionState(tuple(self._inference), tuple(self._training))

    def l3_bytes(self, which: str) -> int:
        """Aggregate L3 capacity of one partition ("inference"/"training")."""
        ids = self._inference if which == "inference" else self._training
        return sum(self.topology.ccd(i).l3_bytes for i in ids)

    def cores(self, which: str) -> int:
        ids = self._inference if which == "inference" else self._training
        return sum(self.topology.ccd(i).num_cores for i in ids)

    # ------------------------------------------------------------- adaptation
    def observe(self, p99_ms: float) -> RebalanceEvent:
        """One adaptation cycle: lines 6-12 of Algorithm 2."""
        self._cycle += 1
        action, moved = "hold", None
        can_grow_inference = bool(self._training)
        if p99_ms >= self.t_high_ms and can_grow_inference:
            moved = self._training.pop()
            self._inference.append(moved)
            action = "to_inference"
        elif (
            p99_ms <= self.t_low_ms
            and len(self._training) < self.max_training_ccds
            and len(self._inference) > self.min_inference_ccds
        ):
            moved = self._inference.pop()
            self._training.append(moved)
            action = "to_training"
        event = RebalanceEvent(
            cycle=self._cycle,
            p99_ms=p99_ms,
            action=action,
            moved_ccd=moved,
            state=self.state,
        )
        self.history.append(event)
        return event

    def run(
        self,
        measure_p99: Callable[[PartitionState], float],
        cycles: int,
    ) -> list[RebalanceEvent]:
        """Closed-loop control: measure under the current state, then adapt.

        ``measure_p99`` receives the partition in force during the window
        (so the latency model can account for the trainer's allocation).
        """
        events = []
        for _ in range(cycles):
            p99 = measure_p99(self.state)
            events.append(self.observe(p99))
        return events
