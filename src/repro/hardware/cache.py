"""Last-level-cache simulator.

Models an L3 slice as an LRU cache over embedding rows (the unit of locality
that matters for DLRM serving).  Two deployment modes reproduce the paper's
Fig. 11 mechanism:

* **shared** — inference and training streams hit the same LRU state, so the
  trainer's irregular writes evict the server's hot rows (cache thrashing,
  <10% hit rates for both).
* **partitioned** — each workload gets its own cache sized to its CCD
  allocation, so each hot set stays resident (Section IV-D).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "LRUCache", "simulate_interleaved"]


@dataclass
class CacheStats:
    """Hit/miss counters for one access stream."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits + other.hits, self.misses + other.misses)

    @classmethod
    def from_mask(cls, hit_mask: np.ndarray) -> "CacheStats":
        """Aggregate view of a per-access hit mask."""
        hits = int(np.asarray(hit_mask).sum())
        return cls(hits=hits, misses=int(np.asarray(hit_mask).size) - hits)

    def record(self, hit_mask: np.ndarray) -> "CacheStats":
        """Fold a per-access hit mask into this accumulator; returns self."""
        hits = int(np.asarray(hit_mask).sum())
        self.hits += hits
        self.misses += int(np.asarray(hit_mask).size) - hits
        return self


class LRUCache:
    """Byte-capacity LRU cache keyed by arbitrary hashables.

    Args:
        capacity_bytes: total capacity; inserting beyond it evicts LRU
            entries.  Zero capacity is legal (everything misses).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[object, int] = OrderedDict()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def access(self, key: object, size_bytes: int) -> bool:
        """Touch ``key``; returns True on hit.  Misses insert the entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if size_bytes > self.capacity_bytes:
            return False  # un-cacheable object; bypasses the cache
        self._entries[key] = size_bytes
        self._used += size_bytes
        while self._used > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        return False

    def access_many(
        self, keys: np.ndarray, size_bytes: int, stats: CacheStats | None = None
    ) -> np.ndarray:
        """Touch a sequence of same-sized keys; returns the per-key hit mask.

        Callers used to re-probe with ``__contains__`` to learn which keys
        hit; the mask makes that information first-class.  The old
        aggregate view stays available: pass a :class:`CacheStats`
        accumulator (updated in place) or fold the mask through
        :meth:`CacheStats.from_mask`.
        """
        keys = np.asarray(keys)
        hit_mask = np.empty(keys.shape[0], dtype=bool)
        for j, k in enumerate(keys):
            hit_mask[j] = self.access(int(k), size_bytes)
        if stats is not None:
            stats.record(hit_mask)
        return hit_mask

    def invalidate(self, key: object) -> bool:
        """Drop one entry if present (write-invalidate from another agent)."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0


def _hit_mask(result) -> np.ndarray:
    """Normalise ``access_many`` return values (mask or batch result)."""
    return getattr(result, "hit_mask", result)


def simulate_interleaved(
    cache_a: LRUCache,
    cache_b: LRUCache | None,
    stream_a: np.ndarray,
    stream_b: np.ndarray,
    row_bytes: int,
    key_offset_b: int = 1 << 40,
    burst_a: int = 1024,
    burst_b: int = 4096,
) -> tuple[CacheStats, CacheStats]:
    """Interleave two access streams over one or two caches, batched.

    When ``cache_b`` is ``None`` both streams share ``cache_a`` (the
    un-isolated co-location case); stream B's keys are offset so the two
    workloads never alias, only *compete*.  Returns per-stream stats.

    Streams interleave in *bursts* (``burst_a`` accesses of A, then
    ``burst_b`` of B, ...): inference serves whole request batches and the
    trainer runs whole mini-batch fwd/bwd passes, so cache occupancy swings
    at batch granularity — exactly the thrashing pattern that collapses hit
    rates when the two share an L3.

    The burst interleave is materialised as one merged key array and played
    through ``access_many`` in a single pass (two passes when the caches
    are separate — disjoint caches cannot interact, so each consumes its
    own stream whole).  Works with any cache exposing ``access_many``:
    the scalar :class:`LRUCache` or the batched
    :class:`~repro.hardware.vectorcache.BatchLRUCache`.
    """
    stream_a = np.asarray(stream_a, dtype=np.int64)
    stream_b = np.asarray(stream_b, dtype=np.int64)
    shared = cache_b is None
    if not shared:
        mask_a = _hit_mask(cache_a.access_many(stream_a, row_bytes))
        mask_b = _hit_mask(cache_b.access_many(stream_b, row_bytes))
        return CacheStats.from_mask(mask_a), CacheStats.from_mask(mask_b)
    keys = np.concatenate([stream_a, stream_b + key_offset_b])
    burst = np.concatenate(
        [
            np.arange(stream_a.size, dtype=np.int64) // max(burst_a, 1),
            np.arange(stream_b.size, dtype=np.int64) // max(burst_b, 1),
        ]
    )
    is_b = np.zeros(keys.size, dtype=bool)
    is_b[stream_a.size :] = True
    order = np.lexsort((is_b, burst))  # stable: A's burst before B's
    mask = _hit_mask(cache_a.access_many(keys[order], row_bytes))
    ordered_is_b = is_b[order]
    return (
        CacheStats.from_mask(mask[~ordered_is_b]),
        CacheStats.from_mask(mask[ordered_is_b]),
    )
