"""Last-level-cache simulator.

Models an L3 slice as an LRU cache over embedding rows (the unit of locality
that matters for DLRM serving).  Two deployment modes reproduce the paper's
Fig. 11 mechanism:

* **shared** — inference and training streams hit the same LRU state, so the
  trainer's irregular writes evict the server's hot rows (cache thrashing,
  <10% hit rates for both).
* **partitioned** — each workload gets its own cache sized to its CCD
  allocation, so each hot set stays resident (Section IV-D).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "LRUCache", "simulate_interleaved"]


@dataclass
class CacheStats:
    """Hit/miss counters for one access stream."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(self.hits + other.hits, self.misses + other.misses)


class LRUCache:
    """Byte-capacity LRU cache keyed by arbitrary hashables.

    Args:
        capacity_bytes: total capacity; inserting beyond it evicts LRU
            entries.  Zero capacity is legal (everything misses).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[object, int] = OrderedDict()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def access(self, key: object, size_bytes: int) -> bool:
        """Touch ``key``; returns True on hit.  Misses insert the entry."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if size_bytes > self.capacity_bytes:
            return False  # un-cacheable object; bypasses the cache
        self._entries[key] = size_bytes
        self._used += size_bytes
        while self._used > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._used -= evicted
        return False

    def access_many(
        self, keys: np.ndarray, size_bytes: int, stats: CacheStats | None = None
    ) -> CacheStats:
        """Touch a sequence of same-sized keys, accumulating stats."""
        stats = stats or CacheStats()
        for k in keys:
            if self.access(int(k), size_bytes):
                stats.hits += 1
            else:
                stats.misses += 1
        return stats

    def invalidate(self, key: object) -> bool:
        """Drop one entry if present (write-invalidate from another agent)."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0


def simulate_interleaved(
    cache_a: LRUCache,
    cache_b: LRUCache | None,
    stream_a: np.ndarray,
    stream_b: np.ndarray,
    row_bytes: int,
    key_offset_b: int = 1 << 40,
    burst_a: int = 1024,
    burst_b: int = 4096,
) -> tuple[CacheStats, CacheStats]:
    """Interleave two access streams over one or two caches.

    When ``cache_b`` is ``None`` both streams share ``cache_a`` (the
    un-isolated co-location case); stream B's keys are offset so the two
    workloads never alias, only *compete*.  Returns per-stream stats.

    Streams interleave in *bursts* (``burst_a`` accesses of A, then
    ``burst_b`` of B, ...): inference serves whole request batches and the
    trainer runs whole mini-batch fwd/bwd passes, so cache occupancy swings
    at batch granularity — exactly the thrashing pattern that collapses hit
    rates when the two share an L3.
    """
    stats_a, stats_b = CacheStats(), CacheStats()
    shared = cache_b is None
    target_b = cache_a if shared else cache_b
    ia = ib = 0
    while ia < len(stream_a) or ib < len(stream_b):
        end_a = min(ia + burst_a, len(stream_a))
        for k in stream_a[ia:end_a]:
            if cache_a.access(int(k), row_bytes):
                stats_a.hits += 1
            else:
                stats_a.misses += 1
        ia = end_a
        end_b = min(ib + burst_b, len(stream_b))
        for k in stream_b[ib:end_b]:
            key = int(k) + (key_offset_b if shared else 0)
            if target_b.access(key, row_bytes):
                stats_b.hits += 1
            else:
                stats_b.misses += 1
        ib = end_b
    return stats_a, stats_b
