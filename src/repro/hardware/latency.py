"""End-to-end inference latency model with tail statistics.

A served request costs:

* embedding lookups — hits stay in L3 (cheap), misses pay the *loaded* DRAM
  latency from :class:`~repro.hardware.memory.MemoryBandwidthModel`,
  optionally inflated by a remote-socket fraction when allocations are not
  NUMA-aware;
* dense forward on the GPU — modelled as a lognormal service time;
* queueing jitter — a lognormal multiplicative factor capturing scheduling
  and burst effects so percentile statistics are meaningful.

A "request" here is a *served batch* (production servers batch hundreds of
queries per GPU pass), so ``lookups_per_query`` counts the aggregate
embedding fetches of the batch.  The model emits per-request latency
samples; P99 over a window is the SLA metric the paper enforces (<20 ms
overall, <10 ms GPU time in Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .memory import MemoryBandwidthModel, MemoryTraffic

__all__ = ["LatencyBreakdown", "InferenceLatencyModel", "percentile"]


def percentile(samples: np.ndarray, q: float) -> float:
    """Percentile helper (q in [0, 100]) tolerating empty input."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return float("nan")
    return float(np.percentile(samples, q))


@dataclass
class LatencyBreakdown:
    """Mean per-request cost decomposition, in milliseconds."""

    lookup_ms: float
    dense_ms: float
    total_p50_ms: float
    total_p99_ms: float


class InferenceLatencyModel:
    """Generates per-request latency samples for a serving configuration.

    Args:
        memory: the DRAM domain serving embedding misses.
        lookups_per_query: aggregate embedding rows fetched per served
            batch (hundreds of queries x tens of tables x pooled ids).
        row_bytes: bytes per embedding row.
        l3_hit_latency_ns: cost of an L3 hit.
        memory_parallelism: outstanding misses overlapped by the hardware
            (prefetchers / MLP); misses cost ``latency / parallelism``.
        remote_penalty: extra latency factor of a remote-socket DRAM access.
        dense_ms: median GPU dense-stack time per batch.
        dense_sigma: lognormal shape of the dense time.
        jitter_sigma: lognormal shape of the end-to-end queueing jitter.
        seed: RNG seed for reproducible sampling.
    """

    def __init__(
        self,
        memory: MemoryBandwidthModel | None = None,
        lookups_per_query: int = 100_000,
        row_bytes: int = 128,
        l3_hit_latency_ns: float = 12.0,
        memory_parallelism: float = 4.0,
        remote_penalty: float = 1.0,
        dense_ms: float = 2.2,
        dense_sigma: float = 0.18,
        jitter_sigma: float = 0.28,
        seed: int = 0,
    ) -> None:
        self.memory = memory or MemoryBandwidthModel()
        self.lookups_per_query = lookups_per_query
        self.row_bytes = row_bytes
        self.l3_hit_latency_ns = l3_hit_latency_ns
        self.memory_parallelism = memory_parallelism
        self.remote_penalty = remote_penalty
        self.dense_ms = dense_ms
        self.dense_sigma = dense_sigma
        self.jitter_sigma = jitter_sigma
        self._rng = np.random.default_rng(seed)

    def mean_lookup_ms(
        self,
        l3_hit_ratio: float,
        traffic: MemoryTraffic,
        remote_fraction: float = 0.0,
    ) -> float:
        """Expected embedding-fetch time per served batch.

        ``remote_fraction`` is the share of DRAM accesses landing on the
        remote socket (zero under NUMA-aware allocation).
        """
        if not 0.0 <= l3_hit_ratio <= 1.0:
            raise ValueError("hit ratio must be in [0, 1]")
        if not 0.0 <= remote_fraction <= 1.0:
            raise ValueError("remote fraction must be in [0, 1]")
        miss_ns = self.memory.access_latency_ns(traffic)
        miss_ns *= 1.0 + remote_fraction * self.remote_penalty
        per_lookup_ns = (
            l3_hit_ratio * self.l3_hit_latency_ns
            + (1.0 - l3_hit_ratio) * miss_ns
        )
        return (
            self.lookups_per_query * per_lookup_ns / self.memory_parallelism / 1e6
        )

    def sample_latencies(
        self,
        num_requests: int,
        l3_hit_ratio: float,
        traffic: MemoryTraffic,
        remote_fraction: float = 0.0,
    ) -> np.ndarray:
        """Draw ``num_requests`` end-to-end batch latencies in milliseconds."""
        lookup_ms = self.mean_lookup_ms(l3_hit_ratio, traffic, remote_fraction)
        dense = self.dense_ms * np.exp(
            self._rng.normal(0.0, self.dense_sigma, size=num_requests)
        )
        jitter = np.exp(
            self._rng.normal(0.0, self.jitter_sigma, size=num_requests)
        )
        return (lookup_ms + dense) * jitter

    def breakdown(
        self,
        l3_hit_ratio: float,
        traffic: MemoryTraffic,
        num_requests: int = 20_000,
        remote_fraction: float = 0.0,
    ) -> LatencyBreakdown:
        """Summary statistics for one configuration."""
        samples = self.sample_latencies(
            num_requests, l3_hit_ratio, traffic, remote_fraction
        )
        return LatencyBreakdown(
            lookup_ms=self.mean_lookup_ms(l3_hit_ratio, traffic, remote_fraction),
            dense_ms=self.dense_ms,
            total_p50_ms=percentile(samples, 50),
            total_p99_ms=percentile(samples, 99),
        )
