"""CPU topology model: sockets, Core Complex Dies (CCDs), cores, L3 caches.

The paper's inference nodes are dual-socket AMD EPYC 9684X machines: each CPU
has 8 CCDs with 96 MB of private L3 (768 MB per socket).  Although CCDs are
not exposed as hardware NUMA nodes, the paper treats each CCD as a logical
isolation unit; the topology model does the same, which is all the
NUMA-aware scheduler (Algorithm 2) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CCD", "Socket", "NodeTopology", "EPYC_9684X_DUAL"]

MB = 1024 ** 2
GB = 1024 ** 3


@dataclass(frozen=True)
class CCD:
    """One Core Complex Die: a group of cores sharing a private L3 slice."""

    ccd_id: int
    socket_id: int
    num_cores: int = 8
    l3_bytes: int = 96 * MB


@dataclass(frozen=True)
class Socket:
    """One CPU package."""

    socket_id: int
    ccds: tuple[CCD, ...]
    dram_bandwidth_gbps: float = 460.8  # 12 x DDR5-4800 channels @ 38.4 GB/s

    @property
    def num_cores(self) -> int:
        return sum(c.num_cores for c in self.ccds)

    @property
    def total_l3_bytes(self) -> int:
        return sum(c.l3_bytes for c in self.ccds)


@dataclass(frozen=True)
class NodeTopology:
    """A full inference node: sockets plus attached accelerator count."""

    sockets: tuple[Socket, ...]
    num_gpus: int = 4
    dram_capacity_bytes: int = 12 * 1024 * GB  # 12 TB per node (paper setup)

    @property
    def ccds(self) -> tuple[CCD, ...]:
        return tuple(c for s in self.sockets for c in s.ccds)

    @property
    def num_ccds(self) -> int:
        return len(self.ccds)

    @property
    def num_cores(self) -> int:
        return sum(s.num_cores for s in self.sockets)

    @property
    def total_l3_bytes(self) -> int:
        return sum(s.total_l3_bytes for s in self.sockets)

    @property
    def total_dram_bandwidth_gbps(self) -> float:
        return sum(s.dram_bandwidth_gbps for s in self.sockets)

    def ccd(self, ccd_id: int) -> CCD:
        for c in self.ccds:
            if c.ccd_id == ccd_id:
                return c
        raise KeyError(f"no CCD with id {ccd_id}")


def _build_epyc_dual() -> NodeTopology:
    sockets = []
    ccd_id = 0
    for sid in range(2):
        ccds = []
        for _ in range(8):
            ccds.append(CCD(ccd_id=ccd_id, socket_id=sid))
            ccd_id += 1
        sockets.append(Socket(socket_id=sid, ccds=tuple(ccds)))
    return NodeTopology(sockets=tuple(sockets))


#: The paper's evaluation node: 2 x EPYC 9684X (8 CCDs x 96 MB L3 each),
#: 12 TB DDR5, 4 x H100.
EPYC_9684X_DUAL = _build_epyc_dual()
