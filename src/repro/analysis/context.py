"""Shared per-file parse state for the invariant linter.

Every rule in :mod:`repro.analysis.rules` runs against one
:class:`FileContext`: the file is read and parsed **once**, suppression
comments are extracted once (via :mod:`tokenize`, so strings containing
``#`` never confuse the scan), and the import-alias map used to resolve
dotted call names (``np.random.default_rng`` -> ``numpy.random.default_rng``)
is built once.  Rules stay cheap and purely syntactic.

Suppression syntax
------------------
``# repro-lint: disable=<rule>[,<rule>...] [-- <reason>]`` on any line a
flagged node spans, or on its own line directly above it.  Rules that
guard hot paths (``hot-loop``) *require* the ``-- <reason>`` part; a
bare disable is itself reported.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Suppression", "FileContext", "module_name_for"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+?)"
    r"(?:\s*--\s*(.+?))?\s*$"
)

# Directory names that anchor a dotted module name.  Files under ``src``
# become real package paths (``repro.core.kernels``); files under the
# sibling trees keep the tree name as a pseudo-package (``tests.test_x``)
# so rule scopes can target them with the same fnmatch patterns.
_ROOT_MARKERS = ("src", "tests", "benchmarks", "examples")


def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path``, anchored at ``src``/``tests``/etc.

    ``src/repro/core/kernels.py`` -> ``repro.core.kernels``;
    ``tests/test_docs.py`` -> ``tests.test_docs``; a package
    ``__init__.py`` maps to the package itself.  Paths with no known
    anchor fall back to the file stem.
    """
    parts = Path(path).with_suffix("").parts
    anchor = None
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] in _ROOT_MARKERS:
            anchor = i
            break
    if anchor is None:
        dotted = [parts[-1]]
    elif parts[anchor] == "src":
        dotted = list(parts[anchor + 1 :])
    else:
        dotted = list(parts[anchor:])
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else Path(path).stem


@dataclass(frozen=True)
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    line: int
    rules: frozenset[str]
    reason: str | None = None

    def covers(self, rule: str) -> bool:
        """Whether this comment disables ``rule`` (``all`` disables any)."""
        return rule in self.rules or "all" in self.rules


@dataclass
class FileContext:
    """One parsed file: source, AST, suppressions, import aliases."""

    path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str | Path) -> "FileContext":
        """Parse ``source`` as the file at ``path`` (may raise SyntaxError)."""
        path = str(path)
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            module=module_name_for(path),
            source=source,
            tree=tree,
        )
        ctx.suppressions = _scan_suppressions(source)
        ctx.aliases = _import_aliases(tree)
        return ctx

    @classmethod
    def from_path(cls, path: str | Path) -> "FileContext":
        """Read and parse the file at ``path`` (may raise SyntaxError)."""
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_source(text, path)

    # ------------------------------------------------------------ resolution
    def qualname(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or None.

        The head segment resolves through the file's import aliases, so
        ``np.random.rand`` and ``numpy.random.rand`` both canonicalise to
        ``numpy.random.rand`` and ``from time import time; time()``
        canonicalises to ``time.time``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    def suppression_for(self, rule: str, node: ast.AST) -> Suppression | None:
        """The disable comment covering ``rule`` for ``node``.

        A comment counts when it sits on any line the node spans, or on
        its own line directly above the node (the readable placement for
        statements too long to carry a trailing comment).
        """
        start = getattr(node, "lineno", None)
        if start is None:
            return None
        end = getattr(node, "end_lineno", None) or start
        for line in range(start - 1, end + 1):
            sup = self.suppressions.get(line)
            if sup is not None and sup.covers(rule):
                return sup
        return None


def _scan_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> suppression for every disable comment."""
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return out
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2)
        out[line] = Suppression(line=line, rules=rules, reason=reason)
    return out


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Bound name -> canonical dotted origin, from every import in the file."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else bound
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{module}.{alias.name}" if module else alias.name
    return aliases
