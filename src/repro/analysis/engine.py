"""Lint driver: discover files, parse once, run every rule in scope.

The engine is the only layer that touches the filesystem.  Each file is
parsed into one :class:`repro.analysis.context.FileContext`; every
enabled rule whose scope matches the file's dotted module name then runs
against that shared parse.  Unparsable files surface as ``syntax-error``
findings rather than crashing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .config import LintConfig
from .context import FileContext
from .registry import ERROR, Finding, all_rules

# import for the side effect of registering the builtin rules
from . import rules as _rules  # noqa: F401

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths"]

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def active(self) -> list[Finding]:
        """Findings not silenced by a suppression comment."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def errors(self) -> list[Finding]:
        """Active findings at error severity (these fail the run)."""
        return [f for f in self.active if f.severity == ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Active findings at warning severity."""
        return [f for f in self.active if f.severity != ERROR]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings silenced by ``# repro-lint: disable=`` comments."""
        return [f for f in self.findings if f.suppressed]


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, sorted, caches skipped."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for sub in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in sub.parts):
                yield sub


def lint_file(
    path: str | Path, config: LintConfig | None = None
) -> list[Finding]:
    """Lint one file; a parse failure yields a ``syntax-error`` finding."""
    config = config or LintConfig()
    try:
        ctx = FileContext.from_path(path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="syntax-error",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                severity=ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    return lint_context(ctx, config)


def lint_context(
    ctx: FileContext, config: LintConfig | None = None
) -> list[Finding]:
    """Run every enabled, in-scope rule against one parsed file."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for rule in all_rules():
        if not config.rule_enabled(rule.name):
            continue
        if not rule.applies_to(ctx.module, config):
            continue
        for raw in rule.check(ctx, config):
            findings.append(rule.resolve(ctx, raw, config))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint every Python file under ``paths``."""
    config = config or LintConfig()
    result = LintResult()
    for path in iter_python_files(list(paths)):
        result.files_scanned += 1
        result.findings.extend(lint_file(path, config))
    result.findings.sort(key=Finding.sort_key)
    return result
