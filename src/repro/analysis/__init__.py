"""AST invariant linter: the repo's determinism and hot-path rules, machine-checked.

This package turns the invariants this codebase repeatedly re-learned the
hard way into blocking CI checks: the salted builtin ``hash()`` purges of
PR 1 (request routing) and PR 2 (shard placement), the per-id Python
loops PR 5 had to re-vectorize out of hot paths, and the id/key/row dtype
discipline nothing previously enforced.  Eight repo-specific rules run
over a single shared parse per file; see ``docs/lint.md`` for the catalogue,
the incident history behind each rule, and the suppression syntax.

Programmatic use::

    from repro.analysis import LintConfig, lint_paths

    result = lint_paths(["src"], LintConfig())
    assert not result.errors

Command line (exit code 1 on any error finding)::

    python -m repro.analysis src tests benchmarks examples
"""

from .config import (
    DTYPE_CONSTRUCTORS,
    FAULT_MODULES,
    HOT_MODULES,
    PLACEMENT_MODULES,
    PUBLIC_API_MODULES,
    SIM_MODULES,
    LintConfig,
)
from .context import FileContext, Suppression, module_name_for
from .engine import LintResult, iter_python_files, lint_file, lint_paths
from .engine import lint_context
from .registry import ERROR, WARNING, Finding, Rule, all_rules, register, rule_names
from .reporters import JSON_SCHEMA_VERSION, render_json, render_text
from .cli import main

__all__ = [
    "DTYPE_CONSTRUCTORS",
    "FAULT_MODULES",
    "HOT_MODULES",
    "PLACEMENT_MODULES",
    "PUBLIC_API_MODULES",
    "SIM_MODULES",
    "LintConfig",
    "FileContext",
    "Suppression",
    "module_name_for",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_context",
    "lint_paths",
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "all_rules",
    "register",
    "rule_names",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
    "main",
]
