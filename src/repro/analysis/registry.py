"""Rule base class, findings, and the rule registry.

A rule is a small class with a ``name``, a module ``scope`` (fnmatch
patterns over dotted module names — see
:meth:`repro.analysis.config.LintConfig.rule_scope` for how config
overrides it), and a :meth:`Rule.check` generator yielding
:class:`Finding` objects.  Registration is a decorator::

    @register
    class MyRule(Rule):
        name = "my-rule"
        description = "what it catches"

        def check(self, ctx, config):
            ...
            yield self.finding(ctx, node, "message")

The registry is ordered (definition order) so reports are stable.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Type

from .context import FileContext

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "rule_names",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None
    # last line the flagged node spans — suppression comments anywhere in
    # the span count; omitted from the JSON payload
    end_line: int | None = None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict:
        """JSON-reporter payload for this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }


class Rule:
    """Base class for invariant-lint rules.

    Class attributes:
        name: rule id used in reports, config and disable comments.
        description: one-line catalogue entry (``--list-rules``).
        default_severity: ``"error"`` or ``"warning"``.
        scope: fnmatch patterns over dotted module names the rule applies
            to; config may override per rule.
        requires_reason: when True, a ``disable=`` comment without a
            ``-- <reason>`` does *not* suppress — the finding stays live
            with a note demanding the reason.
    """

    name: str = ""
    description: str = ""
    default_severity: str = ERROR
    scope: tuple[str, ...] = ("*",)
    requires_reason: bool = False

    def check(
        self, ctx: FileContext, config
    ) -> Iterable[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def applies_to(self, module: str, config) -> bool:
        """Whether this rule runs on ``module`` under ``config``."""
        patterns = config.rule_scope(self.name, self.scope)
        return any(fnmatch.fnmatchcase(module, pat) for pat in patterns)

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (severity filled later)."""
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            severity=self.default_severity,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )

    def resolve(self, ctx: FileContext, raw: Finding, config) -> Finding:
        """Apply config severity and suppression comments to ``raw``."""
        out = replace(raw, severity=config.severity_of(self.name, self.default_severity))
        node = _Anchor(raw.line, raw.end_line or raw.line)
        sup = ctx.suppression_for(self.name, node)
        if sup is None:
            return out
        if self.requires_reason and not sup.reason:
            return replace(
                out,
                message=out.message
                + " (suppression needs a reason: `# repro-lint: "
                f"disable={self.name} -- <why>`)",
            )
        return replace(out, suppressed=True, suppress_reason=sup.reason)


class _Anchor:
    """Minimal line-span shim for suppression lookup on resolved findings."""

    def __init__(self, lineno: int, end_lineno: int) -> None:
        self.lineno = lineno
        self.end_lineno = end_lineno


_REGISTRY: list[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.name:
        raise ValueError("rule must define a non-empty name")
    if any(existing.name == rule_cls.name for existing in _REGISTRY):
        raise ValueError(f"duplicate rule name {rule_cls.name!r}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in definition order."""
    return [cls() for cls in _REGISTRY]


def rule_names() -> list[str]:
    """Registered rule ids, in definition order."""
    return [cls.name for cls in _REGISTRY]


def _iter_findings(
    rule: Rule, ctx: FileContext, config
) -> Iterator[Finding]:
    """Run one rule over one file, resolving severity and suppressions."""
    for raw in rule.check(ctx, config):
        yield rule.resolve(ctx, raw, config)
