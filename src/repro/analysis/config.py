"""Lint configuration: hot-path modules, rule scopes, severities.

The defaults encode this repo's invariants — which modules are *hot*
(no per-element Python, explicit dtypes), which modules decide
*placement* (builtin ``hash()`` banned), and where simulated time is the
only clock.  Scopes are fnmatch patterns over dotted module names as
produced by :func:`repro.analysis.context.module_name_for`, so the same
patterns address ``src`` packages (``repro.core.kernels``) and the
sibling trees (``tests.*``, ``benchmarks.*``, ``examples.*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HOT_MODULES",
    "PLACEMENT_MODULES",
    "SIM_MODULES",
    "PUBLIC_API_MODULES",
    "FAULT_MODULES",
    "DTYPE_CONSTRUCTORS",
    "SANCTIONED_HASHES",
    "LintConfig",
]

# Modules declared hot: every per-element Python loop is a regression
# unless explicitly suppressed with a reason, and every array constructor
# must pin its dtype.  Mirrors the PR-1/PR-4/PR-5 vectorization work.
HOT_MODULES: tuple[str, ...] = (
    "repro.core.kernels",
    "repro.hardware.vectorcache",
    "repro.cluster.shardstore.*",
    "repro.dlrm.embedding",
    "repro.dlrm.mlp",
    "repro.dlrm.interaction",
    "repro.dlrm.model",
    "repro.dlrm.optim",
    "repro.obs.metrics",
)

# Modules whose decisions must be byte-identical across processes:
# request routing, shard placement, hashing kernels.  The salted builtin
# ``hash()`` broke exactly these twice (PR 1 routing, PR 2 placement).
PLACEMENT_MODULES: tuple[str, ...] = (
    "repro.serving.router",
    "repro.cluster.shardstore.*",
    "repro.cluster.parameter_server",
    "repro.core.kernels",
    "repro.core.hot_index",
    "repro.dlrm.hashing",
    "repro.hardware.vectorcache",
)

# Simulation/model code: wall-clock reads would make simulated timelines
# host-dependent.  Everything under ``src`` counts; benchmarks and
# examples may time themselves.
SIM_MODULES: tuple[str, ...] = ("repro", "repro.*")

# Public modules that must carry a docstring and a resolvable ``__all__``.
PUBLIC_API_MODULES: tuple[str, ...] = ("repro", "repro.*")

# Modules where swallowing an exception can hide a lost write or a dead
# replica: retry loops, fault handling, and everything that models them.
# Bare ``except:`` and blanket ``except Exception`` handlers there must
# name the exception and re-raise or record it (tests are exempt — they
# assert on exceptions in ways that look like swallowing).
FAULT_MODULES: tuple[str, ...] = (
    "repro",
    "repro.*",
    "benchmarks.*",
    "examples.*",
)

# numpy constructors that must pass an explicit ``dtype=`` in hot modules.
DTYPE_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.ones",
        "numpy.full",
        "numpy.arange",
        "numpy.asarray",
    }
)

# The process-stable hash family that replaces the builtin ``hash()``.
SANCTIONED_HASHES: tuple[str, ...] = (
    "repro.core.kernels.splitmix64",
    "repro.core.kernels.hash_combine",
    "repro.core.kernels.stable_str_hash",
)


@dataclass
class LintConfig:
    """Tunable knobs for one lint run.

    Attributes:
        hot_modules: fnmatch patterns of modules under the hot-path
            contract (``hot-loop`` + ``dtype-discipline``).
        placement_modules: patterns where builtin ``hash()`` is banned.
        sim_modules: patterns where wall-clock reads are banned.
        public_api_modules: patterns checked for docstring/``__all__``.
        fault_modules: patterns where swallowed exceptions are banned
            (``no-bare-except``).
        severities: per-rule severity overrides (``rule -> severity``).
        disabled: rule names switched off entirely.
        selected: when non-empty, *only* these rules run.
    """

    hot_modules: tuple[str, ...] = HOT_MODULES
    placement_modules: tuple[str, ...] = PLACEMENT_MODULES
    sim_modules: tuple[str, ...] = SIM_MODULES
    public_api_modules: tuple[str, ...] = PUBLIC_API_MODULES
    fault_modules: tuple[str, ...] = FAULT_MODULES
    severities: dict[str, str] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()
    selected: frozenset[str] = frozenset()

    def rule_enabled(self, name: str) -> bool:
        """Whether rule ``name`` participates in this run."""
        if name in self.disabled:
            return False
        return not self.selected or name in self.selected

    def rule_scope(
        self, name: str, default: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Module patterns rule ``name`` applies to."""
        if name in ("hot-loop", "dtype-discipline"):
            return self.hot_modules
        if name == "no-salted-hash":
            return self.placement_modules
        if name == "no-wallclock-in-sim":
            return self.sim_modules
        if name == "public-api":
            return self.public_api_modules
        if name == "no-bare-except":
            return self.fault_modules
        return default

    def severity_of(self, name: str, default: str) -> str:
        """Severity for rule ``name`` (config override or rule default)."""
        return self.severities.get(name, default)
