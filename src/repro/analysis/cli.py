"""Command line for the invariant linter: ``python -m repro.analysis``.

Exit codes:

* ``0`` — scan completed, no active error-severity findings.
* ``1`` — at least one active error finding (or an unparsable file).
* ``2`` — usage error (bad flag, unknown rule, no such path).

Examples::

    python -m repro.analysis src tests benchmarks examples
    python -m repro.analysis --format json src > lint.json
    python -m repro.analysis --select no-salted-hash,hot-loop src
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .config import LintConfig
from .engine import lint_paths
from .registry import all_rules, rule_names
from .reporters import render_json, render_text

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULE[,RULE...]",
        help="run only these rules",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="RULE[,RULE...]",
        help="skip these rules",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit code",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _split_rules(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            marker = " (suppression needs a reason)" if rule.requires_reason else ""
            print(f"{rule.name}: {rule.description}{marker}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    known = set(rule_names())
    selected = _split_rules(args.select)
    disabled = _split_rules(args.disable)
    unknown = (selected | disabled) - known
    if unknown:
        print(
            f"error: unknown rule(s): {', '.join(sorted(unknown))} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    config = LintConfig(selected=selected, disabled=disabled)
    result = lint_paths(args.paths, config)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    failing = result.errors if not args.strict else result.active
    return 1 if failing else 0
