"""Render a :class:`~repro.analysis.engine.LintResult` as text or JSON.

The JSON schema is versioned and pinned by ``tests/test_analysis_lint.py``
so downstream tooling (CI annotations, dashboards) can rely on it::

    {
      "version": 1,
      "files_scanned": <int>,
      "summary": {"errors": <int>, "warnings": <int>, "suppressed": <int>},
      "findings": [
        {"rule": ..., "path": ..., "line": ..., "col": ...,
         "severity": ..., "message": ...,
         "suppressed": <bool>, "suppress_reason": <str|null>},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["JSON_SCHEMA_VERSION", "render_text", "render_json"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """One ``path:line:col: severity rule message`` line per finding."""
    lines = []
    for finding in result.findings:
        if finding.suppressed and not show_suppressed:
            continue
        tag = f"{finding.severity}: {finding.rule}"
        if finding.suppressed:
            reason = finding.suppress_reason or "no reason given"
            tag = f"suppressed: {finding.rule} ({reason})"
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{tag}: {finding.message}"
        )
    errors, warnings = len(result.errors), len(result.warnings)
    suppressed = len(result.suppressed)
    lines.append(
        f"{result.files_scanned} files scanned: {errors} error(s), "
        f"{warnings} warning(s), {suppressed} suppressed"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Serialise the full result (suppressed findings included)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "suppressed": len(result.suppressed),
        },
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
