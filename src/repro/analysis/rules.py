"""The eight repo-specific invariant rules.

Each rule machine-checks an invariant this repo has already paid to learn
(see ``docs/lint.md`` for the incident history behind every rule):

* ``no-salted-hash`` — the builtin ``hash()`` is salted per process and
  broke routing (PR 1) and shard placement (PR 2); placement code uses
  the splitmix64 family only.
* ``no-unseeded-rng`` — all randomness flows through
  ``np.random.default_rng(seed)`` / explicit ``Generator`` params.
* ``no-wallclock-in-sim`` — simulation/model code runs on simulated
  time; ``time.time()`` / ``datetime.now()`` make runs host-dependent.
* ``hot-loop`` — per-element Python loops over array data in modules
  declared hot; a deliberate scalar fallback needs a reasoned
  suppression.
* ``dtype-discipline`` — array constructors in hot modules pin their
  dtype explicitly (int64 ids, uint64 routing keys, float64 rows).
* ``public-api`` — public modules carry a docstring and a statically
  resolvable ``__all__`` whose names exist and are documented.
* ``obs-discipline`` — metric/span names are lowercase dotted string
  literals (registry lookups stay cacheable) and hot modules feed
  telemetry through the batched APIs only, never per-item ``observe``
  or ``inc`` inside a loop.
* ``no-bare-except`` — in retry/fault-handling code a swallowed
  exception can hide a lost write or a dead replica; handlers must
  catch a named exception class, and a blanket ``except Exception``
  must re-raise or bind-and-record what it caught.

Rules are syntactic: they see one file's AST, never import the code.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from typing import Iterator

from .config import DTYPE_CONSTRUCTORS, LintConfig
from .context import FileContext
from .registry import Finding, Rule, register

__all__ = [
    "NoSaltedHashRule",
    "NoUnseededRngRule",
    "NoWallclockInSimRule",
    "HotLoopRule",
    "DtypeDisciplineRule",
    "PublicApiRule",
    "ObsDisciplineRule",
    "NoBareExceptRule",
]

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# Attribute/method access that scalarises an array when iterated.
_SCALARIZING_METHODS = frozenset({"tolist", "flatten", "ravel", "item"})
_SCALARIZING_ATTRS = frozenset({"flat"})


@register
class NoSaltedHashRule(Rule):
    """Builtin ``hash()`` banned where placement must be process-stable."""

    name = "no-salted-hash"
    description = (
        "builtin hash() is salted per process (PYTHONHASHSEED); placement/"
        "routing code must use splitmix64/hash_combine/stable_str_hash"
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Name)
                and node.id == "hash"
                and isinstance(node.ctx, ast.Load)
                and "hash" not in ctx.aliases
            ):
                yield self.finding(
                    ctx,
                    node,
                    "salted builtin hash() in placement-critical module; "
                    "use repro.core.kernels.splitmix64 / hash_combine / "
                    "stable_str_hash",
                )


@register
class NoUnseededRngRule(Rule):
    """All randomness flows through seeded ``default_rng``/``Generator``."""

    name = "no-unseeded-rng"
    description = (
        "bare np.random.* / stdlib random.* calls are nondeterministic; "
        "thread an np.random.default_rng(seed) / Generator through instead"
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual is None:
                continue
            if qual.startswith("numpy.random."):
                tail = qual.rsplit(".", 1)[1]
                if tail == "default_rng" or tail[:1].isupper():
                    # Seeded construction — only the zero-argument form
                    # (fresh OS entropy) is nondeterministic.
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            f"{tail}() without a seed draws fresh OS "
                            "entropy; pass an explicit seed",
                        )
                else:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{tail}() uses the hidden global RNG; "
                        "use np.random.default_rng(seed)",
                    )
            elif qual.startswith("random.") and qual.count(".") == 1:
                tail = qual.rsplit(".", 1)[1]
                if tail == "Random" and (node.args or node.keywords):
                    continue  # random.Random(seed) is at least seeded
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{tail}() is banned; use "
                    "np.random.default_rng(seed)",
                )


@register
class NoWallclockInSimRule(Rule):
    """Wall-clock reads banned from simulation/model code."""

    name = "no-wallclock-in-sim"
    description = (
        "time.time()/datetime.now() make simulated timelines host-"
        "dependent; simulation code advances simulated time only"
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual in _WALLCLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {qual}() in simulation/model code; "
                    "use the simulated timeline (perf_counter is fine for "
                    "measuring real compute)",
                )


@register
class HotLoopRule(Rule):
    """Per-element Python loops over array data in hot modules."""

    name = "hot-loop"
    description = (
        "per-element for/while over array data in a module declared hot; "
        "vectorize, or suppress with a reason for a deliberate scalar "
        "fallback"
    )
    requires_reason = True

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                why = _scalarizing_iter(ctx, node.iter)
                if why:
                    yield self.finding(
                        ctx,
                        node,
                        f"per-element loop over array data ({why}) in hot "
                        "module; vectorize or add `# repro-lint: "
                        "disable=hot-loop -- <reason>`",
                    )
            elif isinstance(node, ast.While):
                why = _scalarizing_expr(ctx, node.test)
                if why:
                    yield self.finding(
                        ctx,
                        node,
                        f"per-element while loop ({why}) in hot module; "
                        "vectorize or add `# repro-lint: disable=hot-loop "
                        "-- <reason>`",
                    )


@register
class DtypeDisciplineRule(Rule):
    """Array constructors in hot modules must pin ``dtype=`` explicitly,
    and statically-known float lanes must not mix in one expression."""

    name = "dtype-discipline"
    description = (
        "np.zeros/empty/ones/full/arange/asarray in hot modules must pass "
        "an explicit dtype= (int64 ids, uint64 keys, float64 rows), and "
        "arrays on different float lanes (float32 vs float64) must not "
        "meet in a binary op — numpy silently upcasts the result"
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualname(node.func)
            if qual not in DTYPE_CONSTRUCTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            tail = qual.rsplit(".", 1)[1]
            hint = (
                "use a checked coercer from repro.core.dtypes"
                if tail == "asarray"
                else "pass dtype= explicitly"
            )
            yield self.finding(
                ctx,
                node,
                f"np.{tail}(...) without an explicit dtype= in a hot "
                f"module silently inherits a platform/input-dependent "
                f"dtype; {hint}",
            )
        yield from self._check_mixed_lanes(ctx)

    def _check_mixed_lanes(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag binary ops whose operands sit on different float lanes.

        Lane inference is deliberately shallow and syntactic: a name
        acquires a lane when it is assigned straight from an array
        constructor or ``.astype`` whose dtype is the *literal*
        ``np.float32``/``np.float64`` (or the equivalent string).  Only
        names with known, different lanes are reported — everything
        dynamic stays silent, so the check has no false positives on
        policy-threaded code (``dtype=self.dtype`` records nothing).
        """
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[int] = set()
        for scope in scopes:
            lanes: dict[str, str] = {}
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        lane = _expr_lane(ctx, node.value)
                        if lane is not None:
                            lanes[target.id] = lane
            for node in ast.walk(scope):
                if not isinstance(node, ast.BinOp) or id(node) in seen:
                    continue
                left = _operand_lane(ctx, node.left, lanes)
                right = _operand_lane(ctx, node.right, lanes)
                if (
                    left is not None
                    and right is not None
                    and left[1] != right[1]
                ):
                    seen.add(id(node))
                    yield self.finding(
                        ctx,
                        node,
                        f"binary op mixes float lanes ({left[0]}: "
                        f"{left[1]}, {right[0]}: {right[1]}); numpy "
                        "silently upcasts the result to float64 — coerce "
                        "both operands onto one lane first",
                    )


@register
class PublicApiRule(Rule):
    """Public modules: docstring + resolvable, documented ``__all__``."""

    name = "public-api"
    description = (
        "public repro modules must carry a module docstring and an "
        "__all__ whose names exist and (for defs/classes) are documented"
    )

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        tree = ctx.tree
        if any(part.startswith("_") for part in ctx.module.split(".")):
            return
        if ast.get_docstring(tree) is None:
            yield self.finding(
                ctx, tree, "public module is missing a module docstring"
            )
        names, assign_node = _resolve_dunder_all(tree)
        if assign_node is None:
            yield self.finding(
                ctx,
                tree,
                "public module does not define __all__; declare the "
                "intended API surface",
            )
            return
        if names is None:
            yield self.finding(
                ctx,
                assign_node,
                "__all__ could not be resolved statically; use a literal "
                "list/tuple of strings (or list(<dict literal>))",
            )
            return
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    ctx, assign_node, f"duplicate name {name!r} in __all__"
                )
            seen.add(name)
        bound, documented, has_getattr = _module_bindings(tree)
        for name in names:
            if name not in bound and not has_getattr:
                yield self.finding(
                    ctx,
                    assign_node,
                    f"__all__ lists {name!r} but the module never binds it",
                )
            elif name in documented and not documented[name]:
                yield self.finding(
                    ctx,
                    assign_node,
                    f"public name {name!r} in __all__ has no docstring",
                )


_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "span"})
_PER_ITEM_OBS = frozenset({"observe", "inc"})
_METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")


@register
class ObsDisciplineRule(Rule):
    """Telemetry discipline: literal dotted names, batched hot-path APIs."""

    name = "obs-discipline"
    description = (
        "metric/span names must be lowercase dotted string literals, and "
        "hot modules must use batched telemetry (observe_many / counter "
        "add), never per-item observe()/inc() inside a loop"
    )
    scope = ("repro", "repro.*", "benchmarks.*", "examples.*")

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_FACTORIES
            ):
                continue
            qual = ctx.qualname(node.func)
            if qual is not None and qual.startswith("numpy."):
                continue  # np.histogram and friends are not metric factories
            name_arg = node.args[0] if node.args else None
            if name_arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        name_arg = kw.value
            if name_arg is None:
                continue
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{node.func.attr}(...) metric/span name must be a "
                    "string literal so registry lookups stay cacheable "
                    "and statically greppable",
                )
            elif not _METRIC_NAME_RE.match(name_arg.value):
                yield self.finding(
                    ctx,
                    node,
                    f"metric/span name {name_arg.value!r} must be a "
                    "lowercase dotted literal like 'plane.component.metric'",
                )
        if not any(
            fnmatch.fnmatchcase(ctx.module, pat)
            for pat in config.hot_modules
        ):
            return
        seen: set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for sub in ast.walk(loop):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _PER_ITEM_OBS
                    and id(sub) not in seen
                ):
                    seen.add(id(sub))
                    yield self.finding(
                        ctx,
                        sub,
                        f"per-item .{sub.func.attr}() inside a loop in a "
                        "hot module; batch with observe_many()/add(n) "
                        "outside the loop",
                    )


_BROAD_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "builtins.Exception",
        "builtins.BaseException",
    }
)


@register
class NoBareExceptRule(Rule):
    """Swallowed exceptions banned from retry/fault-handling code."""

    name = "no-bare-except"
    description = (
        "bare `except:` and blanket `except Exception` in fault-handling "
        "code can hide a lost write or a dead replica; catch a named "
        "exception class, or re-raise / bind-and-record what was caught"
    )
    requires_reason = True

    def check(
        self, ctx: FileContext, config: LintConfig
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` swallows everything including "
                    "KeyboardInterrupt; catch a named exception class",
                )
                continue
            broad = _broad_exception_names(ctx, node.type)
            if not broad:
                continue
            if _handler_reraises_or_uses(node):
                continue
            caught = ", ".join(broad)
            yield self.finding(
                ctx,
                node,
                f"blanket `except {caught}` neither re-raises nor binds "
                "and uses the exception; narrow the class, re-raise, or "
                "record what was caught (`except ... as err`)",
            )


# --------------------------------------------------------------------- helpers
_FLOAT_LANES = frozenset({"float32", "float64"})


def _broad_exception_names(ctx: FileContext, type_expr: ast.AST) -> list[str]:
    """Broad exception classes named by an ``except`` clause's type."""
    exprs = (
        list(type_expr.elts)
        if isinstance(type_expr, ast.Tuple)
        else [type_expr]
    )
    broad: list[str] = []
    for expr in exprs:
        qual = ctx.qualname(expr)
        if qual in _BROAD_EXCEPTIONS:
            broad.append(qual.rsplit(".", 1)[-1])
    return broad


def _handler_reraises_or_uses(handler: ast.ExceptHandler) -> bool:
    """Whether a broad handler re-raises or reads its bound exception.

    A handler is considered deliberate when its body contains a ``raise``
    (bare re-raise or ``raise Other(...) from err``), or when it binds the
    exception (``as err``) and actually loads that name — logging it,
    recording it on a report, attaching it to a result.
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    if handler.name:
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
    return False


def _literal_lane(ctx: FileContext, node: ast.AST) -> str | None:
    """Resolve a dtype expression to a literal float lane name, or None.

    Recognises ``np.float32`` / ``np.float64`` attribute access, the
    bare names after ``from numpy import float32``, and the string
    spellings ``"float32"`` / ``"float64"``.  Anything dynamic
    (variables, ``self.dtype``, policies) resolves to None.
    """
    if isinstance(node, ast.Constant) and node.value in _FLOAT_LANES:
        return str(node.value)
    qual = ctx.qualname(node)
    if qual is not None and qual.startswith("numpy."):
        tail = qual.split(".", 1)[1]
        if tail in _FLOAT_LANES:
            return tail
    return None


def _expr_lane(ctx: FileContext, value: ast.AST) -> str | None:
    """Float lane of an assignment's right-hand side, when static.

    Covers ``np.zeros(..., dtype=np.float32)``-style constructors and
    ``x.astype(np.float32)`` casts; returns the lane name or None.
    """
    if not isinstance(value, ast.Call):
        return None
    qual = ctx.qualname(value.func)
    if qual in DTYPE_CONSTRUCTORS or qual in (
        "numpy.zeros_like",
        "numpy.empty_like",
        "numpy.ones_like",
        "numpy.full_like",
        "numpy.array",
    ):
        for kw in value.keywords:
            if kw.arg == "dtype":
                return _literal_lane(ctx, kw.value)
        return None
    if (
        isinstance(value.func, ast.Attribute)
        and value.func.attr == "astype"
    ):
        if value.args:
            return _literal_lane(ctx, value.args[0])
        for kw in value.keywords:
            if kw.arg == "dtype":
                return _literal_lane(ctx, kw.value)
    return None


def _operand_lane(
    ctx: FileContext, node: ast.AST, lanes: dict[str, str]
) -> tuple[str, str] | None:
    """``(label, lane)`` of a binary-op operand, when statically known."""
    if isinstance(node, ast.Name):
        lane = lanes.get(node.id)
        return (node.id, lane) if lane is not None else None
    lane = _expr_lane(ctx, node)
    if lane is not None:
        return (ast.unparse(node) if hasattr(ast, "unparse") else "<expr>", lane)
    return None


def _scalarizing_expr(ctx: FileContext, expr: ast.AST) -> str | None:
    """Why ``expr`` scalarises array data, or None if it doesn't."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _SCALARIZING_METHODS:
                return f".{node.func.attr}()"
        elif isinstance(node, ast.Attribute):
            if node.attr in _SCALARIZING_ATTRS and isinstance(
                node.ctx, ast.Load
            ):
                return f".{node.attr}"
        elif isinstance(node, ast.Call):
            qual = ctx.qualname(node.func)
            if qual == "numpy.nditer":
                return "np.nditer"
    return None


def _scalarizing_iter(ctx: FileContext, iter_expr: ast.AST) -> str | None:
    """Why iterating ``iter_expr`` is per-element, or None.

    Catches ``.tolist()/.flat/np.nditer`` anywhere in the iterable
    (including inside ``zip``/``enumerate``/``reversed``) and the classic
    index loop ``range(len(x))`` / ``range(x.size)`` / ``range(x.shape[i])``
    — but allows the 3-argument strided form ``range(lo, hi, step)``,
    which is how chunked whole-array passes are written.
    """
    why = _scalarizing_expr(ctx, iter_expr)
    if why:
        return why
    for node in ast.walk(iter_expr):
        if not (
            isinstance(node, ast.Call)
            and ctx.qualname(node.func) == "range"
            and len(node.args) <= 2
        ):
            continue
        for arg in node.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call) and ctx.qualname(sub.func) == "len":
                    return "range(len(...))"
                if isinstance(sub, ast.Attribute) and sub.attr in (
                    "size",
                    "shape",
                ):
                    return f"range(.{sub.attr})"
    return None


def _resolve_dunder_all(
    tree: ast.Module,
) -> tuple[list[str] | None, ast.AST | None]:
    """Statically resolve ``__all__``: ``(names, assignment node)``.

    ``names`` is None when ``__all__`` exists but is not resolvable; the
    node is None when ``__all__`` is absent.  Handles literal lists and
    tuples, ``+``-concatenation of resolvables, and the lazy-export
    pattern ``__all__ = list(_EXPORTS)`` where ``_EXPORTS`` is a module-
    level dict literal with constant string keys.
    """
    dict_literals: dict[str, ast.Dict] = {}
    assignment: ast.AST | None = None
    value: ast.AST | None = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if isinstance(node.value, ast.Dict):
                        dict_literals[target.id] = node.value
                    if target.id == "__all__":
                        assignment, value = node, node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == "__all__"
                and node.value is not None
            ):
                assignment, value = node, node.value
    if assignment is None:
        return None, None
    return _resolve_name_list(value, dict_literals), assignment


def _resolve_name_list(
    value: ast.AST | None, dict_literals: dict[str, ast.Dict]
) -> list[str] | None:
    if isinstance(value, (ast.List, ast.Tuple)):
        names: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
            else:
                return None
        return names
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
        left = _resolve_name_list(value.left, dict_literals)
        right = _resolve_name_list(value.right, dict_literals)
        if left is None or right is None:
            return None
        return left + right
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("list", "sorted", "tuple")
        and len(value.args) == 1
        and isinstance(value.args[0], ast.Name)
        and value.args[0].id in dict_literals
    ):
        keys = dict_literals[value.args[0].id].keys
        names = []
        for key in keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                names.append(key.value)
            else:
                return None
        return sorted(names) if value.func.id == "sorted" else names
    return None


def _module_bindings(
    tree: ast.Module,
) -> tuple[set[str], dict[str, bool], bool]:
    """Top-level bindings: ``(bound names, def/class -> documented, lazy?)``."""
    bound: set[str] = set()
    documented: dict[str, bool] = {}
    has_getattr = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
            documented[node.name] = ast.get_docstring(node) is not None
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
            documented[node.name] = ast.get_docstring(node) is not None
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditional defs (TYPE_CHECKING, optional deps): count any
            # binding anywhere inside
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                bound.add(name.id)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
    return bound, documented, has_getattr
