"""Evaluation metrics for CTR prediction.

AUC-ROC is the paper's headline accuracy metric (Table III, Fig. 15).  The
implementation here is exact (rank-statistic form with proper tie handling)
and O(n log n), plus windowed/streaming helpers used by the freshness
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["auc_roc", "log_loss", "calibration_ratio", "StreamingAUC"]


def auc_roc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Exact AUC-ROC via the Mann-Whitney U statistic with tie correction.

    Returns ``nan`` when only one class is present (undefined AUC).
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    n_pos = float(labels.sum())
    n_neg = float(labels.shape[0] - n_pos)
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(scores)
    sorted_scores = scores[order]
    i = 0
    n = scores.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[labels > 0.5].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def log_loss(labels: np.ndarray, scores: np.ndarray, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted probabilities."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.clip(np.asarray(scores, dtype=np.float64).ravel(), eps, 1 - eps)
    return float(-(labels * np.log(scores) + (1 - labels) * np.log1p(-scores)).mean())


def calibration_ratio(labels: np.ndarray, scores: np.ndarray) -> float:
    """Mean predicted CTR over empirical CTR; 1.0 is perfectly calibrated."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    actual = labels.mean()
    if actual == 0:
        return float("inf")
    return float(scores.mean() / actual)


@dataclass
class StreamingAUC:
    """Sliding-window AUC for freshness timelines (Fig. 15's 10-min window).

    Keeps the most recent ``window`` (label, score) pairs; :meth:`value`
    computes the exact AUC over the window.
    """

    window: int = 10_000
    _labels: list[float] = field(default_factory=list)
    _scores: list[float] = field(default_factory=list)

    def update(self, labels: np.ndarray, scores: np.ndarray) -> None:
        self._labels.extend(np.asarray(labels, dtype=float).ravel().tolist())
        self._scores.extend(np.asarray(scores, dtype=float).ravel().tolist())
        if len(self._labels) > self.window:
            drop = len(self._labels) - self.window
            del self._labels[:drop]
            del self._scores[:drop]

    @property
    def count(self) -> int:
        return len(self._labels)

    def value(self) -> float:
        if not self._labels:
            return float("nan")
        return auc_roc(np.array(self._labels), np.array(self._scores))

    def reset(self) -> None:
        self._labels.clear()
        self._scores.clear()
