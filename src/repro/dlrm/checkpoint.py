"""Checkpointing and model-drift utilities.

The paper's tiered update strategy (Fig. 8) periodically re-anchors serving
replicas to a training-cluster checkpoint to bound *model drift* — the
accumulated divergence between locally-adapted and centrally-trained
parameters.  This module provides checkpoint save/restore plus drift metrics
used by the accuracy-timeline experiments (Fig. 15).
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from .model import DLRM

__all__ = ["Checkpoint", "model_drift", "embedding_drift"]


@dataclass
class Checkpoint:
    """An immutable parameter snapshot with a version number."""

    version: int
    state: dict[str, np.ndarray]

    @classmethod
    def capture(cls, model: DLRM, version: int) -> "Checkpoint":
        return cls(version=version, state=model.state_dict())

    def restore(self, model: DLRM) -> None:
        model.load_state_dict(self.state)

    @property
    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self.state.values())

    def to_bytes(self) -> bytes:
        """Serialise with :func:`numpy.savez` (round-trips exactly)."""
        buf = io.BytesIO()
        np.savez(buf, **self.state, __version__=np.array([self.version]))
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        with np.load(io.BytesIO(blob)) as data:
            version = int(data["__version__"][0])
            state = {k: data[k] for k in data.files if k != "__version__"}
        return cls(version=version, state=state)


def embedding_drift(a: DLRM, b: DLRM) -> float:
    """Mean per-row L2 distance between the embedding tables of two models."""
    total = 0.0
    rows = 0
    for ta, tb in zip(a.embeddings, b.embeddings):
        if ta.weight.shape != tb.weight.shape:
            raise ValueError("models have mismatched table shapes")
        total += float(np.linalg.norm(ta.weight - tb.weight, axis=1).sum())
        rows += ta.num_rows
    return total / rows if rows else 0.0


def model_drift(a: DLRM, b: DLRM) -> dict[str, float]:
    """Drift broken down by component (embeddings vs dense layers)."""
    emb = embedding_drift(a, b)
    dense_sq = 0.0
    for wa, wb in zip(a.bottom.weights, b.bottom.weights):
        dense_sq += float(((wa - wb) ** 2).sum())
    for wa, wb in zip(a.top.weights, b.top.weights):
        dense_sq += float(((wa - wb) ** 2).sum())
    return {"embedding_row_l2": emb, "dense_l2": float(np.sqrt(dense_sq))}
