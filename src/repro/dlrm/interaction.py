"""Feature-interaction layer for DLRM.

DLRM combines the bottom-MLP output with all embedding vectors via pairwise
dot products (Fig. 1 in the paper).  Given ``m`` vectors of dimension ``d``
per sample, the layer emits the ``m * (m - 1) / 2`` distinct dot products,
concatenated with the dense vector itself — exactly the ``dot`` interaction
of the reference DLRM implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DotInteraction"]


class DotInteraction:
    """Pairwise dot-product interaction with dense passthrough."""

    def __init__(self, num_features: int, dim: int) -> None:
        """``num_features`` counts the dense vector plus every sparse field."""
        if num_features < 2:
            raise ValueError("interaction needs at least two feature vectors")
        self.num_features = num_features
        self.dim = dim
        # Upper-triangle index pairs, fixed ordering shared by fwd/bwd.
        self._li, self._lj = np.triu_indices(num_features, k=1)

    @property
    def output_dim(self) -> int:
        """Width of the interaction output: dense ``d`` + C(m, 2) pairs."""
        m = self.num_features
        return self.dim + m * (m - 1) // 2

    def forward(
        self, dense: np.ndarray, embeddings: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute interactions.

        Args:
            dense: ``(batch, d)`` bottom-MLP output.
            embeddings: list of ``(batch, d)`` arrays, one per sparse field.

        Returns:
            ``(output, stacked)`` where ``output`` is ``(batch, output_dim)``
            and ``stacked`` is the ``(batch, m, d)`` cache for backward.
        """
        feats = [np.asarray(dense, dtype=np.float64)]
        feats.extend(np.asarray(e, dtype=np.float64) for e in embeddings)
        if len(feats) != self.num_features:
            raise ValueError(
                f"expected {self.num_features} feature vectors, got {len(feats)}"
            )
        stacked = np.stack(feats, axis=1)  # (batch, m, d)
        gram = stacked @ stacked.transpose(0, 2, 1)  # (batch, m, m)
        pairs = gram[:, self._li, self._lj]  # (batch, C(m,2))
        out = np.concatenate([stacked[:, 0, :], pairs], axis=1)
        return out, stacked

    def backward(
        self, stacked: np.ndarray, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backward pass.

        Args:
            stacked: cache from :meth:`forward`.
            grad_out: ``(batch, output_dim)`` upstream gradient.

        Returns:
            ``(grad_dense, grad_embeddings)`` matching forward's inputs.
        """
        batch, m, d = stacked.shape
        grad_out = np.asarray(grad_out, dtype=np.float64)
        grad_dense_passthrough = grad_out[:, : self.dim]
        grad_pairs = grad_out[:, self.dim :]  # (batch, C(m,2))

        # d(x_i . x_j)/dx_i = x_j and vice versa: scatter pair grads into a
        # symmetric (m, m) matrix per sample, then one batched matmul.
        gram_grad = np.zeros((batch, m, m))
        gram_grad[:, self._li, self._lj] = grad_pairs
        gram_grad[:, self._lj, self._li] = grad_pairs
        grad_stacked = gram_grad @ stacked  # (batch, m, d)
        grad_stacked[:, 0, :] += grad_dense_passthrough

        grad_dense = grad_stacked[:, 0, :]
        grad_embeddings = [grad_stacked[:, f, :] for f in range(1, m)]
        return grad_dense, grad_embeddings
