"""Feature-interaction layer for DLRM.

DLRM combines the bottom-MLP output with all embedding vectors via pairwise
dot products (Fig. 1 in the paper).  Given ``m`` vectors of dimension ``d``
per sample, the layer emits the ``m * (m - 1) / 2`` distinct dot products,
concatenated with the dense vector itself — exactly the ``dot`` interaction
of the reference DLRM implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DotInteraction"]


class DotInteraction:
    """Pairwise dot-product interaction with dense passthrough.

    The whole pass is batched: features stack into one ``(batch, m, d)``
    block, the pairwise products are one batched gram matmul, and the
    ``C(m, 2)`` distinct pairs are gathered by fixed upper-triangle
    indices — no per-pair loop in either direction.  ``dtype`` selects
    the lane (float64 train / float32 serve).
    """

    def __init__(self, num_features: int, dim: int, dtype=np.float64) -> None:
        """``num_features`` counts the dense vector plus every sparse field."""
        if num_features < 2:
            raise ValueError("interaction needs at least two feature vectors")
        self.num_features = num_features
        self.dim = dim
        self.dtype = np.dtype(dtype)
        # Upper-triangle index pairs, fixed ordering shared by fwd/bwd.
        self._li, self._lj = np.triu_indices(num_features, k=1)
        # Flattened (m, m) offsets of both triangles: gather/scatter on the
        # reshaped gram avoids the slower two-axis fancy-indexing path.
        self._flat_upper = self._li * num_features + self._lj
        self._flat_lower = self._lj * num_features + self._li
        # Per-batch-size scratch (gram and its gradient) reused across
        # steps; neither escapes, so reuse is invisible to callers.
        self._scratch_batch = 0
        self._gram = np.zeros((0, 0, 0), dtype=self.dtype)
        self._gram_grad = np.zeros((0, 0, 0), dtype=self.dtype)

    def _scratch(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        """Reusable ``(gram, gram_grad)`` buffers for ``batch`` samples.

        ``gram_grad`` is zero-initialised once; backward only ever writes
        the two strict triangles, so the diagonal stays zero without a
        per-step refill.
        """
        if self._scratch_batch != batch:
            m = self.num_features
            self._gram = np.empty((batch, m, m), dtype=self.dtype)
            self._gram_grad = np.zeros((batch, m, m), dtype=self.dtype)
            self._scratch_batch = batch
        return self._gram, self._gram_grad

    @property
    def output_dim(self) -> int:
        """Width of the interaction output: dense ``d`` + C(m, 2) pairs."""
        m = self.num_features
        return self.dim + m * (m - 1) // 2

    def forward(
        self, dense: np.ndarray, embeddings: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compute interactions.

        Args:
            dense: ``(batch, d)`` bottom-MLP output.
            embeddings: list of ``(batch, d)`` arrays, one per sparse field.

        Returns:
            ``(output, stacked)`` where ``output`` is ``(batch, output_dim)``
            and ``stacked`` is the ``(batch, m, d)`` cache for backward.
        """
        feats = [np.asarray(dense, dtype=self.dtype)]
        feats.extend(np.asarray(e, dtype=self.dtype) for e in embeddings)
        if len(feats) != self.num_features:
            raise ValueError(
                f"expected {self.num_features} feature vectors, got {len(feats)}"
            )
        stacked = np.stack(feats, axis=1)  # (batch, m, d)
        batch, m = stacked.shape[0], self.num_features
        gram, _ = self._scratch(batch)
        np.matmul(stacked, stacked.transpose(0, 2, 1), out=gram)
        out = np.empty((batch, self.output_dim), dtype=self.dtype)
        out[:, : self.dim] = stacked[:, 0, :]
        # Gather the C(m,2) distinct pairs straight into the output slab;
        # ``np.take`` with ``out=`` skips the intermediate pair array.
        np.take(
            gram.reshape(batch, m * m),
            self._flat_upper,
            axis=1,
            out=out[:, self.dim :],
        )
        return out, stacked

    def backward(
        self, stacked: np.ndarray, grad_out: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backward pass.

        Args:
            stacked: cache from :meth:`forward`.
            grad_out: ``(batch, output_dim)`` upstream gradient.

        Returns:
            ``(grad_dense, grad_embeddings)`` matching forward's inputs.
        """
        batch, m, d = stacked.shape
        grad_out = np.asarray(grad_out, dtype=self.dtype)
        grad_dense_passthrough = grad_out[:, : self.dim]
        grad_pairs = grad_out[:, self.dim :]  # (batch, C(m,2))

        # d(x_i . x_j)/dx_i = x_j and vice versa: scatter pair grads into a
        # symmetric (m, m) matrix per sample, then one batched matmul.  The
        # scratch buffer's diagonal is zero and both triangles are fully
        # overwritten every call, so no per-step zero fill is needed.
        _, gram_grad = self._scratch(batch)
        flat_grad = gram_grad.reshape(batch, m * m)
        flat_grad[:, self._flat_upper] = grad_pairs
        flat_grad[:, self._flat_lower] = grad_pairs
        grad_stacked = gram_grad @ stacked  # (batch, m, d)
        grad_stacked[:, 0, :] += grad_dense_passthrough

        grad_dense = grad_stacked[:, 0, :]
        grad_embeddings = [grad_stacked[:, f, :] for f in range(1, m)]
        return grad_dense, grad_embeddings
