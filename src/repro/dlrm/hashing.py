"""Feature hashing for unbounded categorical vocabularies.

Production DLRMs cannot enumerate raw id spaces (user ids, URLs): they hash
raw features into fixed-size table slots, trading collisions for bounded
memory.  Collision behaviour matters for LiveUpdate because hot-id tracking
(the hot-index filter, usage pruning) operates on *slots*, so two raw ids
sharing a slot share an adapter row.  This module provides the hashing
front-end and collision diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import splitmix64 as _mix

__all__ = ["HashingConfig", "FeatureHasher", "collision_rate"]


@dataclass(frozen=True)
class HashingConfig:
    """Hash-table front-end parameters.

    Attributes:
        num_slots: embedding-table size the raw space is folded into.
        seed: per-field hash seed (fields must not share collisions).
    """

    num_slots: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_slots <= 0:
            raise ValueError("num_slots must be positive")


class FeatureHasher:
    """Maps raw categorical values to embedding slots.

    Accepts integer arrays directly; strings/bytes are hashed through
    Python's stable ``hash`` replacement below (FNV-1a) so results are
    reproducible across processes.
    """

    def __init__(self, config: HashingConfig) -> None:
        self.config = config

    def hash_ints(self, raw_ids: np.ndarray) -> np.ndarray:
        """Vectorised slot assignment for integer raw ids."""
        raw = np.asarray(raw_ids, dtype=np.int64)
        mixed = _mix(raw.view(np.uint64) if raw.dtype == np.uint64 else raw.astype(np.uint64), self.config.seed)
        return (mixed % np.uint64(self.config.num_slots)).astype(np.int64)

    @staticmethod
    def _fnv1a(token: str) -> int:
        h = 0xCBF29CE484222325
        for byte in token.encode("utf-8"):
            h ^= byte
            h = (h * 0x100000001B3) % (1 << 64)
        return h

    def hash_tokens(self, tokens: list[str]) -> np.ndarray:
        """Slot assignment for string features (reproducible FNV-1a)."""
        raw = np.array([self._fnv1a(t) for t in tokens], dtype=np.uint64)
        mixed = _mix(raw, self.config.seed)
        return (mixed % np.uint64(self.config.num_slots)).astype(np.int64)


def collision_rate(
    vocab_size: int, num_slots: int, hasher: FeatureHasher | None = None
) -> float:
    """Fraction of raw ids that share a slot with another raw id.

    The analytical expectation under uniform hashing is
    ``1 - (1 - 1/m)^(n-1)`` for ``n`` ids and ``m`` slots; this measures it
    empirically for the actual hash function.
    """
    if vocab_size <= 0 or num_slots <= 0:
        raise ValueError("sizes must be positive")
    hasher = hasher or FeatureHasher(HashingConfig(num_slots=num_slots))
    slots = hasher.hash_ints(np.arange(vocab_size))
    counts = np.bincount(slots, minlength=num_slots)
    colliding = counts[counts > 1].sum()
    return float(colliding / vocab_size)
