"""Dense multi-layer perceptrons used for DLRM's bottom and top networks.

Exact forward/backward passes in NumPy with ReLU hidden layers and an
optional sigmoid-free final layer (the loss applies the sigmoid).  Both
passes are *fused* over the whole batch:

* :meth:`MLP.forward` writes every layer's activations into one
  preallocated :class:`ActivationCache` buffer (matmuls land via
  ``out=`` into contiguous views — no per-layer list churn, no
  intermediate allocations beyond the single cache);
* :meth:`MLP.backward` writes every parameter gradient into one flat
  buffer whose per-layer views form the returned :class:`DenseGrads`,
  so a whole SGD step is one fused ``params -= lr * flat`` axpy.

Parameters live in a single flat buffer too; ``weights``/``biases`` are
reshaped views over it, so existing per-layer access (tests, Adagrad
state, checkpoints) sees ordinary mutable arrays while the fused paths
touch one allocation.  The parameter dtype is configurable — float64 on
the training lane, float32 when an MLP is cast onto the serving lane
via :meth:`MLP.cast` — and initialisation respects it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ActivationCache", "DenseGrads", "MLP", "clip_by_global_norm"]


def _param_views(
    flat: np.ndarray,
    weight_shapes: list[tuple[int, int]],
    bias_shapes: list[tuple[int]],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Carve ``flat`` into per-layer weight/bias views (weights first)."""
    weights: list[np.ndarray] = []
    biases: list[np.ndarray] = []
    offset = 0
    for shape in weight_shapes:
        n = shape[0] * shape[1]
        weights.append(flat[offset : offset + n].reshape(shape))
        offset += n
    for shape in bias_shapes:
        n = shape[0]
        biases.append(flat[offset : offset + n])
        offset += n
    return weights, biases


class ActivationCache:
    """Whole-forward activation storage in one preallocated buffer.

    ``cache[i]`` is the contiguous ``(batch, dims[i])`` view holding
    layer ``i``'s input (``cache[0]`` is the network input, ``cache[-1]``
    the network output) — the same indexing contract as the seed-era
    per-layer list, without the per-layer allocations.
    """

    __slots__ = ("_buf", "_views")

    def __init__(self, batch: int, dims: list[int], dtype) -> None:
        self._buf = np.empty(batch * sum(dims), dtype=dtype)
        self._views: list[np.ndarray] = []
        offset = 0
        for d in dims:
            self._views.append(
                self._buf[offset : offset + batch * d].reshape(batch, d)
            )
            offset += batch * d

    def __len__(self) -> int:
        return len(self._views)

    def __getitem__(self, i: int) -> np.ndarray:
        return self._views[i]

    @property
    def nbytes(self) -> int:
        """Cache footprint: the one buffer backing every layer."""
        return int(self._buf.nbytes)


class DenseGrads:
    """Gradients for one MLP: per-layer weight and bias arrays.

    When produced by :meth:`MLP.backward` the per-layer arrays are views
    over one flat buffer (:attr:`flat`), so norms, scaling and the SGD
    update are single vectorized passes instead of per-layer loops.
    Constructing one from plain lists (external code, tests) still
    works; :attr:`flat` then concatenates on demand.
    """

    __slots__ = ("weights", "biases", "_flat")

    def __init__(
        self,
        weights: list[np.ndarray],
        biases: list[np.ndarray],
        flat: np.ndarray | None = None,
    ) -> None:
        self.weights = weights
        self.biases = biases
        self._flat = flat

    @property
    def flat(self) -> np.ndarray:
        """All gradient elements as one 1-D array (weights then biases)."""
        if self._flat is not None:
            return self._flat
        parts = [w.ravel() for w in self.weights]
        parts += [b.ravel() for b in self.biases]
        if not parts:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate(parts)

    def scaled(self, factor: float) -> "DenseGrads":
        flat = self.flat * factor
        weights, biases = _param_views(
            flat,
            [w.shape for w in self.weights],
            [b.shape for b in self.biases],
        )
        return DenseGrads(weights, biases, flat)

    def global_norm(self) -> float:
        """L2 norm over every element — one flat dot, no per-layer sum."""
        flat = self.flat
        return float(np.sqrt(flat @ flat))


def clip_by_global_norm(
    grads: DenseGrads, max_norm: float
) -> tuple[DenseGrads, float]:
    """Scale ``grads`` so its global L2 norm is at most ``max_norm``.

    Returns ``(clipped, pre_clip_norm)``; when the norm is already
    within budget the input object passes through unscaled.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = grads.global_norm()
    if norm <= max_norm:
        return grads, norm
    return grads.scaled(max_norm / norm), norm


class MLP:
    """Fully connected network ``dims[0] -> dims[1] -> ... -> dims[-1]``.

    Hidden activations are ReLU; the output layer is linear unless
    ``final_relu`` is set (DLRM's bottom MLP conventionally ends in ReLU so
    dense features live in the same non-negative space as embeddings).

    Parameters
    ----------
    dims : list[int]
        Layer widths, input first.
    rng : numpy.random.Generator, optional
        Weight-init stream; a fixed default seed when omitted.
    final_relu : bool, optional
        Apply ReLU after the last layer too.
    dtype : numpy dtype, optional
        Parameter/activation lane; float64 (train default) or float32
        (serving lane).  Initialisation respects it.
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator | None = None,
        final_relu: bool = False,
        dtype=np.float64,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if rng is None:
            rng = np.random.default_rng(0)
        self.dims = list(dims)
        self.final_relu = final_relu
        self.dtype = np.dtype(dtype)
        w_shapes = [(fi, fo) for fi, fo in zip(dims[:-1], dims[1:])]
        b_shapes = [(fo,) for fo in dims[1:]]
        total = sum(fi * fo for fi, fo in w_shapes) + sum(dims[1:])
        self._params = np.empty(total, dtype=self.dtype)
        self.weights, self.biases = _param_views(
            self._params, w_shapes, b_shapes
        )
        for w, (fan_in, _) in zip(self.weights, w_shapes):
            # He initialisation for the ReLU stack; the view assignment
            # rounds the float64 draw onto the configured lane.
            std = np.sqrt(2.0 / fan_in)
            w[...] = rng.normal(0.0, std, size=w.shape)
        for b in self.biases:
            b[...] = 0.0

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def num_params(self) -> int:
        return int(self._params.size)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, ActivationCache]:
        """Run the network; returns output and the activation cache.

        The cache holds the *input* of every layer (post-activation of
        the previous one) followed by the final layer's output — one
        preallocated buffer for the whole pass; every matmul lands in
        its slice via ``out=``.
        """
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 2 or x.shape[1] != self.dims[0]:
            raise ValueError(
                f"expected input of shape (batch, {self.dims[0]}), "
                f"got {x.shape}"
            )
        cache = ActivationCache(x.shape[0], self.dims, self.dtype)
        cache[0][...] = x
        h = cache[0]
        last = self.num_layers - 1
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = cache[layer + 1]
            np.matmul(h, w, out=z)
            z += b
            if layer != last or self.final_relu:
                np.maximum(z, 0.0, out=z)
            h = z
        return h, cache

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[0]

    def backward(
        self, cache: ActivationCache, grad_out: np.ndarray
    ) -> tuple[np.ndarray, DenseGrads]:
        """Backprop ``grad_out`` through the cached forward pass.

        Returns the gradient w.r.t. the network input and parameter
        grads.  All parameter gradients are written into one flat buffer
        (per-layer views via ``out=``), so the optimizer's update is a
        single axpy over the buffer.
        """
        flat = np.empty(self._params.size, dtype=self.dtype)
        grad_w, grad_b = _param_views(
            flat,
            [w.shape for w in self.weights],
            [b.shape for b in self.biases],
        )
        # Private copy: the ReLU mask is applied in place below.
        g = np.array(grad_out, dtype=self.dtype)
        last = self.num_layers - 1
        for layer in range(last, -1, -1):
            h_out = cache[layer + 1]
            h_in = cache[layer]
            if layer != last or self.final_relu:
                # ReLU derivative via the cached post-activation.
                np.multiply(g, h_out > 0.0, out=g)
            np.matmul(h_in.T, g, out=grad_w[layer])
            g.sum(axis=0, out=grad_b[layer])
            g = g @ self.weights[layer].T
        return g, DenseGrads(grad_w, grad_b, flat)

    def apply_grads(self, grads: DenseGrads, lr: float) -> None:
        """In-place SGD step — one fused axpy when the grads are
        flat-backed (the :meth:`backward` product), per-layer otherwise."""
        flat = grads._flat
        if (
            flat is not None
            and flat.size == self._params.size
            and flat.dtype == self.dtype
        ):
            self._params -= lr * flat
            return
        for w, gw in zip(self.weights, grads.weights):
            w -= lr * gw
        for b, gb in zip(self.biases, grads.biases):
            b -= lr * gb

    def copy(self) -> "MLP":
        dup = MLP.__new__(MLP)
        dup.dims = list(self.dims)
        dup.final_relu = self.final_relu
        dup.dtype = self.dtype
        dup._params = self._params.copy()
        dup.weights, dup.biases = _param_views(
            dup._params,
            [w.shape for w in self.weights],
            [b.shape for b in self.biases],
        )
        return dup

    def cast(self, policy) -> "MLP":
        """Clone onto ``policy``'s row lane through one checked coercion.

        ``policy`` is a :class:`repro.core.dtypes.DTypePolicy`; casting
        train-lane float64 parameters onto the float32 serving lane
        raises if any value exceeds the policy's downcast tolerance.
        """
        dup = MLP.__new__(MLP)
        dup.dims = list(self.dims)
        dup.final_relu = self.final_relu
        dup.dtype = np.dtype(policy.row_dtype)
        dup._params = np.array(
            policy.as_rows(self._params, name="mlp params"), copy=True
        )
        dup.weights, dup.biases = _param_views(
            dup._params,
            [w.shape for w in self.weights],
            [b.shape for b in self.biases],
        )
        return dup
