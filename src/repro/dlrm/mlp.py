"""Dense multi-layer perceptrons used for DLRM's bottom and top networks.

Implements exact forward/backward passes in NumPy with ReLU hidden layers and
an optional sigmoid-free final layer (the loss applies the sigmoid).  Kept
deliberately simple: DLRM's dense parts are small compared to the embedding
tables, and the paper freezes them during inference-side LoRA training anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DenseGrads", "MLP"]


@dataclass
class DenseGrads:
    """Gradients for one MLP: per-layer weight and bias arrays."""

    weights: list[np.ndarray]
    biases: list[np.ndarray]

    def scaled(self, factor: float) -> "DenseGrads":
        return DenseGrads(
            [w * factor for w in self.weights], [b * factor for b in self.biases]
        )

    def global_norm(self) -> float:
        sq = sum(float((w ** 2).sum()) for w in self.weights)
        sq += sum(float((b ** 2).sum()) for b in self.biases)
        return float(np.sqrt(sq))


class MLP:
    """Fully connected network ``dims[0] -> dims[1] -> ... -> dims[-1]``.

    Hidden activations are ReLU; the output layer is linear unless
    ``final_relu`` is set (DLRM's bottom MLP conventionally ends in ReLU so
    dense features live in the same non-negative space as embeddings).
    """

    def __init__(
        self,
        dims: list[int],
        rng: np.random.Generator | None = None,
        final_relu: bool = False,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.dims = list(dims)
        self.final_relu = final_relu
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims[:-1], dims[1:]):
            # He initialisation for the ReLU stack.
            std = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, std, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def num_params(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Run the network; returns output and the activation cache.

        The cache holds the *input* of every layer (post-activation of the
        previous one) followed by the pre-activation of the final layer, which
        is what :meth:`backward` needs.
        """
        x = np.asarray(x, dtype=np.float64)
        cache = [x]
        h = x
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            is_last = layer == self.num_layers - 1
            h = np.maximum(z, 0.0) if (not is_last or self.final_relu) else z
            cache.append(h)
        return h, cache

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[0]

    def backward(
        self, cache: list[np.ndarray], grad_out: np.ndarray
    ) -> tuple[np.ndarray, DenseGrads]:
        """Backprop ``grad_out`` through the cached forward pass.

        Returns the gradient w.r.t. the network input and parameter grads.
        """
        grad_w = [np.zeros_like(w) for w in self.weights]
        grad_b = [np.zeros_like(b) for b in self.biases]
        g = np.asarray(grad_out, dtype=np.float64)
        for layer in range(self.num_layers - 1, -1, -1):
            h_out = cache[layer + 1]
            h_in = cache[layer]
            is_last = layer == self.num_layers - 1
            if not is_last or self.final_relu:
                # ReLU derivative via the cached post-activation.
                g = g * (h_out > 0.0)
            grad_w[layer] = h_in.T @ g
            grad_b[layer] = g.sum(axis=0)
            g = g @ self.weights[layer].T
        return g, DenseGrads(grad_w, grad_b)

    def apply_grads(self, grads: DenseGrads, lr: float) -> None:
        """In-place SGD step."""
        for w, gw in zip(self.weights, grads.weights):
            w -= lr * gw
        for b, gb in zip(self.biases, grads.biases):
            b -= lr * gb

    def copy(self) -> "MLP":
        dup = MLP.__new__(MLP)
        dup.dims = list(self.dims)
        dup.final_relu = self.final_relu
        dup.weights = [w.copy() for w in self.weights]
        dup.biases = [b.copy() for b in self.biases]
        return dup
