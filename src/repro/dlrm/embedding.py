"""Embedding tables for DLRM sparse features.

An :class:`EmbeddingTable` maps categorical IDs to dense vectors and supports
the row-wise sparse updates that dominate DLRM training traffic (Section II-A
of the paper).  Multi-hot inputs are pooled (mean or sum) into a single vector
per sample, mirroring TorchRec's ``EmbeddingBagCollection`` semantics.

Gradients are returned as :class:`SparseRowGrad` objects — (indices, rows)
pairs — because production DLRMs only touch the rows present in a mini-batch.
That sparsity is exactly what makes delta-style synchronization (and
LiveUpdate's low-rank adapters) possible, so the substrate preserves it
instead of materialising dense ``|V| x d`` gradient tensors.

The hot paths are whole-array passes over :mod:`repro.core.kernels`:
pooled forward/backward run through offset-based segment reductions
(:func:`~repro.core.kernels.pool_rows` /
:func:`~repro.core.kernels.group_rows_sum`) and touched-row delta
accounting is an epoch-stamped
:class:`~repro.core.kernels.TouchedRows` lane — no per-bag or per-id
Python loops survive on the train/serve path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dtypes import as_float_rows
from ..core.kernels import TouchedRows, group_rows_sum, pool_rows
from ..obs.metrics import registry as _obs_registry

_REG = _obs_registry()
_IDS_POOLED = _REG.counter(
    "dlrm.embedding.ids_pooled", help="ids consumed by pooled lookups"
)
_LOOKUPS = _REG.counter(
    "dlrm.embedding.lookups", help="pooled lookup calls (batches)"
)

__all__ = [
    "SparseRowGrad",
    "EmbeddingTable",
    "EmbeddingBagCollection",
]


@dataclass
class SparseRowGrad:
    """Row-sparse gradient of one embedding table.

    Attributes:
        indices: 1-D int64 array of *unique* row ids touched by the batch.
        rows: ``(len(indices), d)`` float array; ``rows[i]`` is the gradient
            of table row ``indices[i]`` summed over the batch.
    """

    indices: np.ndarray
    rows: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.rows = as_float_rows(self.rows, name="grad rows")
        if self.indices.ndim != 1:
            raise ValueError("indices must be 1-D")
        if self.rows.ndim != 2 or self.rows.shape[0] != self.indices.shape[0]:
            raise ValueError("rows must be (len(indices), d)")

    @property
    def nnz_rows(self) -> int:
        """Number of distinct rows carrying gradient."""
        return int(self.indices.shape[0])

    def to_dense(self, num_rows: int) -> np.ndarray:
        """Materialise the dense ``(num_rows, d)`` gradient (tests/analysis)."""
        dense = np.zeros((num_rows, self.rows.shape[1]), dtype=self.rows.dtype)
        dense[self.indices] = self.rows
        return dense

    def frobenius_norm(self) -> float:
        """Frobenius norm of the (implicitly dense) gradient."""
        return float(np.linalg.norm(self.rows))


class EmbeddingTable:
    """One embedding table ``W in R^{|V| x d}`` for a categorical field.

    Args:
        num_rows: vocabulary size ``|V|``.
        dim: embedding dimension ``d``.
        rng: NumPy generator used for initialisation.
        init_scale: stddev of the uniform init, following DLRM's
            ``U(-1/sqrt(|V|), 1/sqrt(|V|))`` convention when ``None``.
        name: optional label used in diagnostics.
        dtype: row lane of the table; float64 (train default) or
            float32 (serving lane).  Initialisation respects it.
    """

    def __init__(
        self,
        num_rows: int,
        dim: int,
        rng: np.random.Generator | None = None,
        init_scale: float | None = None,
        name: str = "",
        dtype=np.float64,
    ) -> None:
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        if rng is None:
            rng = np.random.default_rng(0)
        scale = init_scale if init_scale is not None else 1.0 / np.sqrt(num_rows)
        self.weight = rng.uniform(-scale, scale, size=(num_rows, dim)).astype(
            np.dtype(dtype), copy=False
        )
        self.name = name or f"emt_{num_rows}x{dim}"
        # Row-level bookkeeping used by delta-update strategies and by the
        # Fig. 3a experiment (fraction of rows touched per window).
        self._touched = TouchedRows(num_rows)

    # ------------------------------------------------------------------ shape
    @property
    def num_rows(self) -> int:
        return int(self.weight.shape[0])

    @property
    def dim(self) -> int:
        return int(self.weight.shape[1])

    @property
    def dtype(self) -> np.dtype:
        """Row lane of the table."""
        return self.weight.dtype

    @property
    def nbytes(self) -> int:
        """Storage footprint of the table in bytes."""
        return int(self.weight.nbytes)

    # ---------------------------------------------------------------- forward
    def lookup(self, ids: np.ndarray) -> np.ndarray:
        """Single-hot lookup: returns ``(batch, d)`` rows for ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise IndexError(f"embedding id out of range for table {self.name}")
        return self.weight[ids]

    def lookup_pooled(
        self, ids: np.ndarray, offsets: np.ndarray, mode: str = "mean"
    ) -> np.ndarray:
        """Multi-hot lookup with pooling (EmbeddingBag semantics).

        Args:
            ids: flat 1-D array of ids for the whole batch.
            offsets: ``(batch + 1,)`` array; sample ``b`` owns
                ``ids[offsets[b]:offsets[b + 1]]``.  Empty bags pool to zero.
            mode: ``"mean"`` or ``"sum"``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise IndexError(f"embedding id out of range for table {self.name}")
        if _REG.enabled:
            _LOOKUPS.inc()
            _IDS_POOLED.add(ids.size)
        return pool_rows(self.weight, ids, offsets, mode=mode)

    # --------------------------------------------------------------- backward
    def grad_from_output(
        self, ids: np.ndarray, grad_out: np.ndarray
    ) -> SparseRowGrad:
        """Accumulate per-sample output gradients into unique row gradients."""
        ids = np.asarray(ids, dtype=np.int64)
        grad_out = np.asarray(grad_out, dtype=self.weight.dtype)
        uniq, rows = group_rows_sum(ids, grad_out, num_rows=self.num_rows)
        return SparseRowGrad(uniq, rows)

    def grad_from_pooled(
        self,
        ids: np.ndarray,
        offsets: np.ndarray,
        grad_out: np.ndarray,
        mode: str = "mean",
    ) -> SparseRowGrad:
        """Backward of :meth:`lookup_pooled`.

        Each id in bag ``b`` receives ``grad_out[b]`` (divided by bag size for
        mean pooling), then duplicates are accumulated — one spread
        (``np.repeat``) plus one duplicate-sparse scatter-add, no per-bag
        Python loop.
        """
        ids = np.asarray(ids, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        grad_out = np.asarray(grad_out, dtype=self.weight.dtype)
        sizes = np.diff(offsets)
        if int(sizes.sum()) != ids.shape[0]:
            raise ValueError("offsets do not cover the id stream")
        if mode == "mean":
            grad_out = grad_out / np.maximum(sizes, 1)[:, None]
        per_id = np.repeat(grad_out, sizes, axis=0)
        uniq, rows = group_rows_sum(ids, per_id, num_rows=self.num_rows)
        return SparseRowGrad(uniq, rows)

    # ----------------------------------------------------------------- update
    def apply_sparse_update(self, grad: SparseRowGrad, lr: float) -> None:
        """Plain SGD row update; marks rows as touched for delta tracking."""
        self.weight[grad.indices] -= lr * grad.rows
        self.mark_touched(grad.indices)

    def assign_rows(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite specific rows (used when applying pulled deltas)."""
        indices = np.asarray(indices, dtype=np.int64)
        self.weight[indices] = rows
        self.mark_touched(indices)

    # ------------------------------------------------------- delta accounting
    def mark_touched(self, indices: np.ndarray) -> None:
        """Stamp rows into the delta log (optimizers call this per step).

        Tracks in-place vocabulary growth: when the weight matrix has
        grown past the stamp lane, the lane grows with it (existing
        stamps survive), mirroring how the optimizer grows its row state.
        """
        if self._touched.num_rows < self.num_rows:
            self._touched.resize(self.num_rows)
        self._touched.stamp(np.asarray(indices, dtype=np.int64))

    def touched_rows(self) -> np.ndarray:
        """Sorted ids of rows modified since the last :meth:`reset_touched`."""
        return self._touched.ids()

    def drain_touched(self) -> np.ndarray:
        """Touched ids + reset in one pass (delta-publish hot path)."""
        return self._touched.drain()

    def touched_count(self) -> int:
        """Number of rows modified since the last reset."""
        return self._touched.count()

    def touched_fraction(self) -> float:
        """Fraction of the table modified since the last reset (Fig. 3a)."""
        return self._touched.fraction()

    def reset_touched(self) -> None:
        self._touched.clear()

    def copy(self) -> "EmbeddingTable":
        """Deep copy (weights only; touch log starts clean)."""
        dup = EmbeddingTable.__new__(EmbeddingTable)
        dup.weight = self.weight.copy()
        dup.name = self.name
        dup._touched = TouchedRows(self.num_rows)
        return dup

    def cast(self, policy) -> "EmbeddingTable":
        """Clone onto ``policy``'s row lane through one checked coercion.

        This is the publish-time downcast of the serving dataflow: the
        float64 train table stays authoritative; the returned table
        carries float32 rows (half the bytes) and a clean touch log.
        Raises if any weight exceeds the policy's downcast tolerance.
        """
        dup = EmbeddingTable.__new__(EmbeddingTable)
        dup.weight = np.array(
            policy.as_rows(self.weight, name=f"table {self.name}"), copy=True
        )
        dup.name = self.name
        dup._touched = TouchedRows(self.num_rows)
        return dup


@dataclass
class EmbeddingBagCollection:
    """Ordered collection of embedding tables, one per sparse feature field."""

    tables: list[EmbeddingTable] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tables)

    def __iter__(self):
        return iter(self.tables)

    def __getitem__(self, i: int) -> EmbeddingTable:
        return self.tables[i]

    @property
    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables)

    def lookup_all(self, sparse_ids: np.ndarray) -> list[np.ndarray]:
        """Single-hot lookup across all fields.

        Args:
            sparse_ids: ``(batch, num_fields)`` int array.

        Returns:
            list of ``(batch, d)`` arrays, one per field.
        """
        sparse_ids = np.asarray(sparse_ids, dtype=np.int64)
        if sparse_ids.shape[1] != len(self.tables):
            raise ValueError(
                f"expected {len(self.tables)} sparse fields, "
                f"got {sparse_ids.shape[1]}"
            )
        return [t.lookup(sparse_ids[:, f]) for f, t in enumerate(self.tables)]

    def touched_fraction(self) -> float:
        """Row-weighted average touched fraction across tables."""
        total = self.total_rows
        touched = sum(t.touched_count() for t in self.tables)
        return touched / total if total else 0.0

    def reset_touched(self) -> None:
        for t in self.tables:
            t.reset_touched()

    def copy(self) -> "EmbeddingBagCollection":
        return EmbeddingBagCollection([t.copy() for t in self.tables])

    def cast(self, policy) -> "EmbeddingBagCollection":
        """Collection clone on ``policy``'s row lane (checked downcast)."""
        return EmbeddingBagCollection([t.cast(policy) for t in self.tables])
