"""The DLRM model: embeddings + bottom MLP + dot interaction + top MLP.

The model follows Fig. 1 of the paper (and Naumov et al.'s reference DLRM):

* dense features -> bottom MLP -> a ``d``-dimensional dense vector,
* sparse features -> per-field embedding lookup,
* dense vector + embeddings -> pairwise dot interaction,
* interaction output -> top MLP -> logit -> sigmoid -> CTR.

Training minimises binary cross-entropy; the backward pass produces row-sparse
embedding gradients (the raw material of the paper's low-rank analysis) plus
dense grads for both MLPs.  The sparse backward accumulates duplicate ids
through :func:`repro.core.kernels.group_rows_sum` (duplicate-sparse
scatter-add) and the optimizer's row updates stamp the tables'
:class:`repro.core.kernels.TouchedRows` epoch lanes, so a full
``train_step -> touched-row drain -> delta publish`` cycle runs as whole-array
passes.

The forward path accepts an *embedding overlay*: a callable that may adjust
looked-up rows.  LiveUpdate uses this hook to serve ``W_base[i] + A[i] B``
for hot ids without mutating the base table (Section IV-A, inference path
step 3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..core.dtypes import SERVE, TRAIN, DTypePolicy, as_float_rows
from .embedding import EmbeddingBagCollection, EmbeddingTable, SparseRowGrad
from .interaction import DotInteraction
from .mlp import MLP, ActivationCache, DenseGrads

__all__ = ["DLRMConfig", "ForwardCache", "TrainStepResult", "DLRM", "sigmoid"]

# Overlay signature: (field_index, ids, base_rows) -> possibly adjusted rows.
EmbeddingOverlay = Callable[[int, np.ndarray, np.ndarray], np.ndarray]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function (lane-preserving: float32
    logits yield float32 probabilities)."""
    z = as_float_rows(z, name="logits")
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclass
class DLRMConfig:
    """Hyper-parameters of a DLRM instance.

    Attributes:
        num_dense: number of continuous input features.
        embedding_dim: shared dimension ``d`` of every table.
        table_sizes: vocabulary size per sparse field.
        bottom_mlp: hidden sizes of the bottom MLP (output forced to ``d``).
        top_mlp: hidden sizes of the top MLP (output forced to 1 logit).
        seed: RNG seed for parameter init.
        policy: dtype lane of the whole dense stack —
            :data:`repro.core.dtypes.TRAIN` (float64, the default) or
            :data:`repro.core.dtypes.SERVE` (float32 rows throughout).
    """

    num_dense: int = 4
    embedding_dim: int = 16
    table_sizes: tuple[int, ...] = (1000, 1000, 500)
    bottom_mlp: tuple[int, ...] = (32, 16)
    top_mlp: tuple[int, ...] = (64, 32)
    seed: int = 0
    policy: DTypePolicy = TRAIN

    def validate(self) -> None:
        if self.num_dense <= 0 or self.embedding_dim <= 0:
            raise ValueError("num_dense and embedding_dim must be positive")
        if not self.table_sizes:
            raise ValueError("at least one sparse field is required")


@dataclass
class ForwardCache:
    """Everything backward needs from a forward pass."""

    dense_in: np.ndarray
    sparse_ids: np.ndarray
    bottom_cache: ActivationCache
    stacked: np.ndarray
    top_cache: ActivationCache
    logits: np.ndarray
    probs: np.ndarray


@dataclass
class TrainStepResult:
    """Outputs of one mini-batch training step."""

    loss: float
    probs: np.ndarray
    embedding_grads: list[SparseRowGrad]
    bottom_grads: DenseGrads
    top_grads: DenseGrads


class DLRM:
    """A complete DLRM with exact NumPy forward/backward."""

    def __init__(self, config: DLRMConfig) -> None:
        config.validate()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.embedding_dim
        lane = config.policy.row_dtype
        self.embeddings = EmbeddingBagCollection(
            [
                EmbeddingTable(size, d, rng=rng, name=f"table_{f}", dtype=lane)
                for f, size in enumerate(config.table_sizes)
            ]
        )
        self.bottom = MLP(
            [config.num_dense, *config.bottom_mlp, d],
            rng=rng,
            final_relu=True,
            dtype=lane,
        )
        num_features = 1 + len(config.table_sizes)
        self.interaction = DotInteraction(num_features, d, dtype=lane)
        self.top = MLP(
            [self.interaction.output_dim, *config.top_mlp, 1],
            rng=rng,
            dtype=lane,
        )

    # ------------------------------------------------------------------ sizes
    @property
    def num_sparse_fields(self) -> int:
        return len(self.embeddings)

    @property
    def embedding_bytes(self) -> int:
        return self.embeddings.nbytes

    @property
    def dense_params(self) -> int:
        return self.bottom.num_params + self.top.num_params

    # ---------------------------------------------------------------- forward
    def forward(
        self,
        dense: np.ndarray,
        sparse_ids: np.ndarray,
        overlay: EmbeddingOverlay | None = None,
    ) -> ForwardCache:
        """Full forward pass returning probabilities and the backward cache.

        Args:
            dense: ``(batch, num_dense)`` continuous features.
            sparse_ids: ``(batch, num_fields)`` categorical ids.
            overlay: optional per-field adjustment applied to looked-up rows
                (LiveUpdate's hot-id LoRA path).
        """
        dense = self.config.policy.as_rows(dense, name="dense features")
        sparse_ids = np.asarray(sparse_ids, dtype=np.int64)
        bottom_out, bottom_cache = self.bottom.forward(dense)
        emb = []
        for f, table in enumerate(self.embeddings):
            rows = table.lookup(sparse_ids[:, f])
            if overlay is not None:
                rows = overlay(f, sparse_ids[:, f], rows)
            emb.append(rows)
        inter_out, stacked = self.interaction.forward(bottom_out, emb)
        logits, top_cache = self.top.forward(inter_out)
        probs = sigmoid(logits[:, 0])
        return ForwardCache(
            dense_in=dense,
            sparse_ids=sparse_ids,
            bottom_cache=bottom_cache,
            stacked=stacked,
            top_cache=top_cache,
            logits=logits,
            probs=probs,
        )

    def predict(
        self,
        dense: np.ndarray,
        sparse_ids: np.ndarray,
        overlay: EmbeddingOverlay | None = None,
    ) -> np.ndarray:
        """Inference-only path: returns ``(batch,)`` click probabilities."""
        return self.forward(dense, sparse_ids, overlay=overlay).probs

    # --------------------------------------------------------------- backward
    def backward(
        self, cache: ForwardCache, labels: np.ndarray
    ) -> TrainStepResult:
        """BCE backward pass from a cached forward."""
        # Labels join on the model's lane so the loss and every gradient
        # stay in one dtype instead of silently upcasting to float64.
        labels = np.asarray(labels, dtype=cache.probs.dtype).ravel()
        batch = labels.shape[0]
        probs = cache.probs
        eps = 1e-12
        loss = float(
            -(
                labels * np.log(probs + eps)
                + (1 - labels) * np.log(1 - probs + eps)
            ).mean()
        )
        # dL/dlogit for sigmoid + BCE, averaged over the batch.
        grad_logit = ((probs - labels) / batch)[:, None]
        grad_inter, top_grads = self.top.backward(cache.top_cache, grad_logit)
        grad_dense_vec, grad_embs = self.interaction.backward(
            cache.stacked, grad_inter
        )
        _, bottom_grads = self.bottom.backward(cache.bottom_cache, grad_dense_vec)
        emb_grads = [
            table.grad_from_output(cache.sparse_ids[:, f], grad_embs[f])
            for f, table in enumerate(self.embeddings)
        ]
        return TrainStepResult(
            loss=loss,
            probs=probs,
            embedding_grads=emb_grads,
            bottom_grads=bottom_grads,
            top_grads=top_grads,
        )

    def loss_and_grads(
        self, dense: np.ndarray, sparse_ids: np.ndarray, labels: np.ndarray
    ) -> TrainStepResult:
        """Convenience: forward + backward without applying updates."""
        return self.backward(self.forward(dense, sparse_ids), labels)

    def train_step(
        self,
        dense: np.ndarray,
        sparse_ids: np.ndarray,
        labels: np.ndarray,
        optimizer,
        update_dense: bool = True,
    ) -> TrainStepResult:
        """One SGD/Adagrad step over a mini-batch.

        Args:
            optimizer: object with ``step_sparse(table, grad)`` and
                ``step_dense(mlp, grads)`` methods.  Sparse steps are
                expected to mark updated rows on the table (both built-in
                optimizers do) so delta strategies see them.
            update_dense: set ``False`` to freeze MLPs (the paper's
                inference-side trainer only adapts embeddings).
        """
        result = self.loss_and_grads(dense, sparse_ids, labels)
        for table, grad in zip(self.embeddings, result.embedding_grads):
            optimizer.step_sparse(table, grad)
        if update_dense:
            optimizer.step_dense(self.bottom, result.bottom_grads)
            optimizer.step_dense(self.top, result.top_grads)
        return result

    # -------------------------------------------------------------- lifecycle
    def copy(self) -> "DLRM":
        """Deep copy used to fork training-cluster vs inference replicas."""
        dup = DLRM.__new__(DLRM)
        dup.config = self.config
        dup.embeddings = self.embeddings.copy()
        dup.bottom = self.bottom.copy()
        dup.top = self.top.copy()
        dup.interaction = DotInteraction(
            self.interaction.num_features,
            self.interaction.dim,
            dtype=self.interaction.dtype,
        )
        return dup

    def serving_copy(self, policy: DTypePolicy = SERVE) -> "DLRM":
        """Publish-time clone on the serving lane.

        Every parameter crosses the train -> serve boundary through one
        checked downcast (raising past the policy's tolerance); the
        returned model runs its whole dense stack — lookups, MLPs,
        interaction, sigmoid — in ``policy.row_dtype``, halving row
        bytes at float32.  The training model stays authoritative and
        untouched.
        """
        dup = DLRM.__new__(DLRM)
        dup.config = replace(self.config, policy=policy)
        dup.embeddings = self.embeddings.cast(policy)
        dup.bottom = self.bottom.cast(policy)
        dup.top = self.top.cast(policy)
        dup.interaction = DotInteraction(
            self.interaction.num_features,
            self.interaction.dim,
            dtype=policy.row_dtype,
        )
        return dup

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat parameter snapshot (checkpointing / drift measurement)."""
        state: dict[str, np.ndarray] = {}
        for f, table in enumerate(self.embeddings):
            state[f"embeddings.{f}.weight"] = table.weight.copy()
        for i, (w, b) in enumerate(zip(self.bottom.weights, self.bottom.biases)):
            state[f"bottom.{i}.weight"] = w.copy()
            state[f"bottom.{i}.bias"] = b.copy()
        for i, (w, b) in enumerate(zip(self.top.weights, self.top.biases)):
            state[f"top.{i}.weight"] = w.copy()
            state[f"top.{i}.bias"] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for f, table in enumerate(self.embeddings):
            table.weight[...] = state[f"embeddings.{f}.weight"]
        for i in range(self.bottom.num_layers):
            self.bottom.weights[i][...] = state[f"bottom.{i}.weight"]
            self.bottom.biases[i][...] = state[f"bottom.{i}.bias"]
        for i in range(self.top.num_layers):
            self.top.weights[i][...] = state[f"top.{i}.weight"]
            self.top.biases[i][...] = state[f"top.{i}.bias"]
