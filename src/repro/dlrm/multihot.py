"""Multi-hot sparse-feature support.

Section II-A: "for multi-hot inputs, embeddings are pooled (e.g., averaged)
to form a single vector."  Categorical fields like *watched videos* or
*liked pages* carry a variable-length bag of ids per sample; this module
provides the bag container plus a pooled forward/backward path that plugs
into the same interaction/top-MLP stack as single-hot fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import segment_pool
from .embedding import EmbeddingTable, SparseRowGrad

__all__ = ["MultiHotField", "PooledFieldLayer"]


@dataclass
class MultiHotField:
    """A batch of variable-length id bags for one categorical field.

    Attributes:
        ids: flat int array of all ids in the batch.
        offsets: ``(batch + 1,)`` boundaries; sample ``b`` owns
            ``ids[offsets[b]:offsets[b+1]]``.
    """

    ids: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be a 1-D array with >= 1 entry")
        if self.offsets[0] != 0 or self.offsets[-1] != self.ids.size:
            raise ValueError("offsets must start at 0 and end at len(ids)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    @property
    def batch_size(self) -> int:
        return int(self.offsets.size - 1)

    def bag_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    @classmethod
    def from_lists(cls, bags: list[list[int]]) -> "MultiHotField":
        """Build from a list of per-sample id lists."""
        ids = np.array(
            [i for bag in bags for i in bag], dtype=np.int64
        )
        offsets = np.zeros(len(bags) + 1, dtype=np.int64)
        np.cumsum([len(b) for b in bags], out=offsets[1:])
        return cls(ids=ids, offsets=offsets)

    @classmethod
    def sample(
        cls,
        sampler,
        batch_size: int,
        mean_bag: float,
        rng: np.random.Generator,
        max_bag: int = 32,
    ) -> "MultiHotField":
        """Draw Poisson-sized bags of Zipf-distributed ids."""
        sizes = np.clip(rng.poisson(mean_bag, size=batch_size), 1, max_bag)
        ids = sampler.sample(int(sizes.sum()))
        offsets = np.zeros(batch_size + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(ids=ids, offsets=offsets)


class PooledFieldLayer:
    """Forward/backward for one multi-hot field over an embedding table.

    The pooled vector feeds the interaction layer exactly like a single-hot
    embedding; the backward pass spreads the output gradient back over the
    bag (divided by bag size for mean pooling) and returns the row-sparse
    gradient that update strategies and the LoRA trainer consume.
    """

    def __init__(self, table: EmbeddingTable, mode: str = "mean") -> None:
        if mode not in ("mean", "sum"):
            raise ValueError("mode must be 'mean' or 'sum'")
        self.table = table
        self.mode = mode

    def forward(self, field: MultiHotField) -> np.ndarray:
        """Pooled ``(batch, d)`` embeddings."""
        return self.table.lookup_pooled(
            field.ids, field.offsets, mode=self.mode
        )

    def backward(
        self, field: MultiHotField, grad_out: np.ndarray
    ) -> SparseRowGrad:
        """Row-sparse gradient of the pooled lookup."""
        return self.table.grad_from_pooled(
            field.ids, field.offsets, grad_out, mode=self.mode
        )

    def forward_with_overlay(
        self, field: MultiHotField, adapter
    ) -> np.ndarray:
        """Pooled lookup through a LoRA adapter (``W + A B`` per id).

        Pooling commutes with the additive adapter, so the adapted pooled
        vector is ``pool(W[ids]) + pool(delta[ids])``; the delta rows are
        one masked batch gather inside the adapter and the pooling is one
        segment reduction — no per-bag loop.
        """
        base = self.forward(field)
        deltas = adapter.delta_rows(field.ids)
        return base + segment_pool(deltas, field.offsets, mode=self.mode)
