"""DLRM substrate: model, embeddings, optimizers, and metrics.

This subpackage is a from-scratch NumPy implementation of the Deep Learning
Recommendation Model (Naumov et al.) that the paper's serving system hosts.
"""

from .checkpoint import Checkpoint, embedding_drift, model_drift
from .hashing import FeatureHasher, HashingConfig, collision_rate
from .multihot import MultiHotField, PooledFieldLayer
from .embedding import EmbeddingBagCollection, EmbeddingTable, SparseRowGrad
from .interaction import DotInteraction
from .metrics import StreamingAUC, auc_roc, calibration_ratio, log_loss
from .mlp import MLP, ActivationCache, DenseGrads, clip_by_global_norm
from .model import DLRM, DLRMConfig, ForwardCache, TrainStepResult, sigmoid
from .optim import SGD, RowwiseAdagrad

__all__ = [
    "DLRM",
    "DLRMConfig",
    "ForwardCache",
    "TrainStepResult",
    "sigmoid",
    "EmbeddingTable",
    "EmbeddingBagCollection",
    "SparseRowGrad",
    "DotInteraction",
    "MLP",
    "ActivationCache",
    "DenseGrads",
    "clip_by_global_norm",
    "SGD",
    "RowwiseAdagrad",
    "Checkpoint",
    "FeatureHasher",
    "HashingConfig",
    "collision_rate",
    "MultiHotField",
    "PooledFieldLayer",
    "model_drift",
    "embedding_drift",
    "auc_roc",
    "log_loss",
    "calibration_ratio",
    "StreamingAUC",
]
