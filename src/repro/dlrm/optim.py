"""Optimizers for DLRM training.

Two flavours are provided:

* :class:`SGD` — plain stochastic gradient descent.
* :class:`RowwiseAdagrad` — the de-facto industry choice for embedding
  tables (used by TorchRec); keeps one accumulator scalar per row so that
  memory overhead stays O(|V|) instead of O(|V| x d).

Both understand the :class:`~repro.dlrm.embedding.SparseRowGrad` format so
that only touched rows pay update cost, matching production behaviour.
"""

from __future__ import annotations

import numpy as np

from .embedding import EmbeddingTable, SparseRowGrad
from .mlp import MLP, DenseGrads

__all__ = ["SGD", "RowwiseAdagrad"]


class SGD:
    """Plain SGD for dense modules and sparse embedding rows."""

    def __init__(self, lr: float = 0.01) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def step_dense(self, mlp: MLP, grads: DenseGrads) -> None:
        mlp.apply_grads(grads, self.lr)

    def step_sparse(self, table: EmbeddingTable, grad: SparseRowGrad) -> None:
        table.apply_sparse_update(grad, self.lr)


class RowwiseAdagrad:
    """Row-wise Adagrad for embedding tables.

    Each row ``i`` keeps a scalar accumulator ``s_i`` updated with the mean
    squared gradient of the row; the effective step is
    ``lr / sqrt(s_i + eps)``.  Dense modules fall back to full Adagrad with
    per-parameter accumulators.
    """

    def __init__(self, lr: float = 0.05, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.eps = eps
        # Accumulators are keyed by object identity so one optimizer can
        # drive many tables/MLPs, the way a training job owns all modules.
        self._row_state: dict[int, np.ndarray] = {}
        self._dense_state: dict[int, tuple[list[np.ndarray], list[np.ndarray]]] = {}

    # ------------------------------------------------------------ sparse path
    def _rows_for(self, table: EmbeddingTable) -> np.ndarray:
        key = id(table)
        state = self._row_state.get(key)
        if state is None or state.shape[0] != table.num_rows:
            state = np.zeros(table.num_rows)
            self._row_state[key] = state
        return state

    def step_sparse(self, table: EmbeddingTable, grad: SparseRowGrad) -> None:
        state = self._rows_for(table)
        g2 = (grad.rows ** 2).mean(axis=1)
        state[grad.indices] += g2
        scale = self.lr / np.sqrt(state[grad.indices] + self.eps)
        table.weight[grad.indices] -= scale[:, None] * grad.rows
        table._touched.update(int(i) for i in grad.indices)

    # ------------------------------------------------------------- dense path
    def step_dense(self, mlp: MLP, grads: DenseGrads) -> None:
        key = id(mlp)
        state = self._dense_state.get(key)
        if state is None:
            state = (
                [np.zeros_like(w) for w in mlp.weights],
                [np.zeros_like(b) for b in mlp.biases],
            )
            self._dense_state[key] = state
        acc_w, acc_b = state
        for w, gw, aw in zip(mlp.weights, grads.weights, acc_w):
            aw += gw ** 2
            w -= self.lr * gw / np.sqrt(aw + self.eps)
        for b, gb, ab in zip(mlp.biases, grads.biases, acc_b):
            ab += gb ** 2
            b -= self.lr * gb / np.sqrt(ab + self.eps)
