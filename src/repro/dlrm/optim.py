"""Optimizers for DLRM training.

Two flavours are provided:

* :class:`SGD` — plain stochastic gradient descent.
* :class:`RowwiseAdagrad` — the de-facto industry choice for embedding
  tables (used by TorchRec); keeps one accumulator scalar per row so that
  memory overhead stays O(|V|) instead of O(|V| x d).

Both understand the :class:`~repro.dlrm.embedding.SparseRowGrad` format so
that only touched rows pay update cost, matching production behaviour.
The sparse step is one fused gather -> update -> scatter pass, and touched
rows are stamped into the table's epoch lane — no per-id Python work.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..obs.metrics import registry as _obs_registry
from .embedding import EmbeddingTable, SparseRowGrad
from .mlp import MLP, DenseGrads, _param_views, clip_by_global_norm

__all__ = ["SGD", "RowwiseAdagrad"]

_REG = _obs_registry()
_ROWS_UPDATED = _REG.counter(
    "dlrm.optim.rows_updated", help="unique embedding rows updated sparsely"
)


class SGD:
    """Plain SGD for dense modules and sparse embedding rows.

    ``max_grad_norm`` enables global-norm clipping of dense grads (one
    flat-buffer norm + scale via
    :func:`~repro.dlrm.mlp.clip_by_global_norm`); ``None`` disables it.
    """

    def __init__(self, lr: float = 0.01, max_grad_norm: float | None = None) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if max_grad_norm is not None and max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive when set")
        self.lr = lr
        self.max_grad_norm = max_grad_norm

    def step_dense(self, mlp: MLP, grads: DenseGrads) -> None:
        if self.max_grad_norm is not None:
            grads, _ = clip_by_global_norm(grads, self.max_grad_norm)
        mlp.apply_grads(grads, self.lr)

    def step_sparse(self, table: EmbeddingTable, grad: SparseRowGrad) -> None:
        table.apply_sparse_update(grad, self.lr)
        if _REG.enabled:
            _ROWS_UPDATED.add(grad.indices.size)


class RowwiseAdagrad:
    """Row-wise Adagrad for embedding tables.

    Each row ``i`` keeps a scalar accumulator ``s_i`` updated with the mean
    squared gradient of the row; the effective step is
    ``lr / sqrt(s_i + eps)``.  Dense modules fall back to full Adagrad with
    per-parameter accumulators.

    Accumulators are keyed by the live module object through a
    ``WeakKeyDictionary`` so one optimizer can drive many tables/MLPs, the
    way a training job owns all modules.  Weak keying makes the association
    robust: a garbage-collected table drops its state with it (the former
    ``id(table)`` keys could alias a new object's id and silently hand it
    stale accumulators), ``copy()`` forks start with fresh state, and
    in-place refreshes (``load_state_dict``) keep their history.  When a
    table grows, row state grows with it instead of being zeroed.
    """

    def __init__(self, lr: float = 0.05, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.eps = eps
        self._row_state: "weakref.WeakKeyDictionary[EmbeddingTable, np.ndarray]" = (
            weakref.WeakKeyDictionary()
        )
        self._dense_state: "weakref.WeakKeyDictionary[MLP, tuple[list[np.ndarray], list[np.ndarray]]]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------ sparse path
    def _rows_for(self, table: EmbeddingTable) -> np.ndarray:
        state = self._row_state.get(table)
        if state is None:
            state = np.zeros(table.num_rows, dtype=np.float64)
            self._row_state[table] = state
        elif state.shape[0] != table.num_rows:
            # The table was resized in place (vocabulary growth): carry the
            # overlapping accumulator history instead of restarting it.
            grown = np.zeros(table.num_rows, dtype=np.float64)
            keep = min(state.shape[0], table.num_rows)
            grown[:keep] = state[:keep]
            state = grown
            self._row_state[table] = state
        return state

    def step_sparse(self, table: EmbeddingTable, grad: SparseRowGrad) -> None:
        """Fused gather -> accumulate -> scatter sparse update.

        ``grad.indices`` are unique by the :class:`SparseRowGrad` contract,
        so the accumulator gather/scatter pair is exact; the row scale and
        weight update reuse the gathered accumulator without re-probing.
        """
        state = self._rows_for(table)
        idx = grad.indices
        g2 = np.einsum("ij,ij->i", grad.rows, grad.rows) / grad.rows.shape[1]
        acc = state[idx] + g2
        state[idx] = acc
        table.weight[idx] -= (self.lr / np.sqrt(acc + self.eps))[:, None] * grad.rows
        table.mark_touched(idx)
        if _REG.enabled:
            _ROWS_UPDATED.add(idx.size)

    # ------------------------------------------------------------- dense path
    def step_dense(self, mlp: MLP, grads: DenseGrads) -> None:
        """Full Adagrad over one flat accumulator buffer.

        The per-layer accumulators are views over a single flat array
        mirroring the MLP's parameter layout, so grads produced by the
        fused :meth:`MLP.backward` update in one whole-buffer pass; grads
        built from plain lists fall back to the per-layer loop.
        """
        state = self._dense_state.get(mlp)
        if state is None:
            acc_flat = np.zeros(mlp.num_params, dtype=mlp.dtype)
            acc_w, acc_b = _param_views(
                acc_flat,
                [w.shape for w in mlp.weights],
                [b.shape for b in mlp.biases],
            )
            state = (acc_flat, acc_w, acc_b)
            self._dense_state[mlp] = state
        acc_flat, acc_w, acc_b = state
        gflat = grads._flat
        if (
            gflat is not None
            and gflat.size == acc_flat.size
            and gflat.dtype == acc_flat.dtype
        ):
            acc_flat += gflat ** 2
            mlp._params -= self.lr * gflat / np.sqrt(acc_flat + self.eps)
            return
        for w, gw, aw in zip(mlp.weights, grads.weights, acc_w):
            aw += gw ** 2
            w -= self.lr * gw / np.sqrt(aw + self.eps)
        for b, gb, ab in zip(mlp.biases, grads.biases, acc_b):
            ab += gb ** 2
            b -= self.lr * gb / np.sqrt(ab + self.eps)
