"""LiveUpdate: near-zero-overhead freshness for recommendation systems via
inference-side model updates (HPCA 2026 reproduction).

Subpackages:

* :mod:`repro.dlrm` — the DLRM model substrate (embeddings, MLPs, metrics).
* :mod:`repro.data` — Zipf workloads, drifting CTR streams, dataset specs.
* :mod:`repro.hardware` — CPU topology, L3/DRAM simulators, NUMA scheduling.
* :mod:`repro.cluster` — networks, parameter server, collectives, timelines.
* :mod:`repro.strategies` — NoUpdate / DeltaUpdate / QuickUpdate baselines.
* :mod:`repro.core` — the LiveUpdate contribution: LoRA adapters, dynamic
  rank adaptation, usage-based pruning, the inference-side trainer, sparse
  data-parallel sync, and the tiered update strategy.
* :mod:`repro.serving` — the co-located node simulator and QoS monitoring.
* :mod:`repro.obs` — the telemetry plane: metrics registry, sim-clock
  tracer, flight recorder, Prometheus/JSON exporters.
* :mod:`repro.experiments` — drivers for every paper figure and table.
"""

from .core.liveupdate import LiveUpdate, LiveUpdateConfig
from .core.trainer import LoRATrainer, TrainerConfig
from .dlrm.model import DLRM, DLRMConfig

__version__ = "0.1.0"

__all__ = [
    "DLRM",
    "DLRMConfig",
    "LiveUpdate",
    "LiveUpdateConfig",
    "LoRATrainer",
    "TrainerConfig",
    "__version__",
]
