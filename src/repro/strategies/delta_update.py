"""DeltaUpdate baseline: industry-standard streaming delta synchronization.

Every window, the training cluster publishes *all* embedding rows touched
since the previous publish, and the inference node pulls them over the
inter-cluster link.  Accuracy is the reference point of Table III (delta =
full semantic fidelity); cost is the highest of all compared methods because
>10% of rows change even in short windows (Fig. 3a).
"""

from __future__ import annotations

from ..cluster.nodes import InferenceNode, TrainingCluster
from .base import UpdateCost, UpdateStrategy

__all__ = ["DeltaUpdate"]


class DeltaUpdate(UpdateStrategy):
    """Push-all-changed-rows, pull-all-deltas, every window."""

    name = "DeltaUpdate"

    def __init__(
        self, trainer: TrainingCluster, server_node: InferenceNode
    ) -> None:
        super().__init__()
        self.trainer = trainer
        self.node = server_node

    def on_update_window(self, now: float) -> UpdateCost:
        push = self.trainer.publish_changed_rows()
        pull = self.node.pull_updates()
        # Dense layers ride along with the embedding delta; their volume is
        # negligible at production scale but we apply them for accuracy
        # fidelity in the scaled-down experiments.
        self.node.model.bottom = self.trainer.model.bottom.copy()
        self.node.model.top = self.trainer.model.top.copy()
        cost = UpdateCost(
            kind="delta",
            seconds=push.transfer_seconds + pull.transfer_seconds,
            bytes_moved=push.bytes_pushed + pull.bytes_pulled,
            rows=pull.rows_pulled,
        )
        return self.record(cost)
