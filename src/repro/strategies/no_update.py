"""NoUpdate baseline: serve the initial model forever.

Zero update cost, maximal staleness — the accuracy lower bound and
performance upper bound of Section V-A.
"""

from __future__ import annotations

from .base import UpdateCost, UpdateStrategy

__all__ = ["NoUpdate"]


class NoUpdate(UpdateStrategy):
    """Never updates the serving replica."""

    name = "NoUpdate"

    def on_update_window(self, now: float) -> UpdateCost:
        return self.record(UpdateCost.zero("no-update"))
