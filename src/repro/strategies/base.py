"""Common interface for model-update strategies.

A strategy decides how fresh parameters reach the serving replica.  The
experiment harness drives a shared protocol:

* :meth:`on_serving_batch` — observe every served batch (LiveUpdate logs it
  into its training buffer; baselines ignore it);
* :meth:`on_update_window` — the periodic (5/10/20-minute) update action;
* :meth:`on_full_sync` — the hourly full-parameter re-anchor (used by
  QuickUpdate and LiveUpdate to bound drift, per Fig. 8);
* :meth:`overlay` — optional embedding adjustment applied on the inference
  path (LiveUpdate's ``W_base[i] + A[i] B``).

Costs are returned as :class:`UpdateCost` records: bytes moved over the
inter-cluster link, the transfer (or local compute) seconds, and rows
touched — the raw numbers behind Fig. 14.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..data.synthetic import Batch

__all__ = ["UpdateCost", "UpdateStrategy"]


@dataclass
class UpdateCost:
    """Cost of one update action."""

    kind: str
    seconds: float = 0.0
    bytes_moved: float = 0.0
    rows: int = 0

    @staticmethod
    def zero(kind: str = "none") -> "UpdateCost":
        return UpdateCost(kind=kind)

    def __add__(self, other: "UpdateCost") -> "UpdateCost":
        return UpdateCost(
            kind=self.kind,
            seconds=self.seconds + other.seconds,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            rows=self.rows + other.rows,
        )


class UpdateStrategy(abc.ABC):
    """Base class; subclasses implement one update policy."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.cost_log: list[UpdateCost] = []

    # ------------------------------------------------------------- callbacks
    def on_serving_batch(self, batch: Batch) -> None:
        """Observe served traffic (default: ignore)."""

    def on_slot(self, now: float) -> None:
        """Fine-grained time tick between windows (default: nothing).

        LiveUpdate trains continuously here — its trainer runs at its own
        cadence inside the node, independent of the inter-cluster window.
        Baselines can only act at window boundaries because their updates
        ride the parameter-server path.
        """

    @abc.abstractmethod
    def on_update_window(self, now: float) -> UpdateCost:
        """Perform the periodic update; returns its cost."""

    def on_full_sync(self, now: float) -> UpdateCost:
        """Hourly full-parameter re-anchor (default: nothing)."""
        return UpdateCost.zero("full-sync-noop")

    def overlay(self):
        """Embedding overlay for the inference path (default: none)."""
        return None

    # ------------------------------------------------------------ accounting
    def record(self, cost: UpdateCost) -> UpdateCost:
        self.cost_log.append(cost)
        return cost

    @property
    def total_update_seconds(self) -> float:
        return sum(c.seconds for c in self.cost_log)

    @property
    def total_bytes_moved(self) -> float:
        return sum(c.bytes_moved for c in self.cost_log)
