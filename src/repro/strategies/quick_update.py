"""QuickUpdate baseline (Matam et al., NSDI'24).

Transfers only the top-``alpha`` fraction of changed rows ranked by update
magnitude (L2 of ``w_now - w_served``), supplemented by an hourly
full-parameter update to bound the drift accumulated from dropped rows.
The magnitude heuristic is precisely what loses the "semantically critical
but low-gradient" updates the paper calls out, so its accuracy lands between
NoUpdate and DeltaUpdate (Table III).

Cost model: the seed implementation kept a full ``weight.copy()`` reference
snapshot of every table (O(all rows) memory, copied again on every full
sync).  The serving node's own rows *are* that reference — a row the node
never received still carries its last-full-sync value, and a pushed row is
byte-identical on both sides — so selection now diffs the trainer against
the node over the touched-row set only, making every window O(changed rows)
in both time and memory.
"""

from __future__ import annotations

import numpy as np

from ..cluster.nodes import InferenceNode, TrainingCluster
from .base import UpdateCost, UpdateStrategy

__all__ = ["QuickUpdate"]


class QuickUpdate(UpdateStrategy):
    """Top-alpha%-by-magnitude delta synchronization.

    Args:
        trainer: the training-cluster actor.
        server_node: the serving replica receiving updates.
        alpha: fraction of changed rows to keep (paper evaluates 5%, 10%).
    """

    def __init__(
        self,
        trainer: TrainingCluster,
        server_node: InferenceNode,
        alpha: float = 0.05,
    ) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.trainer = trainer
        self.node = server_node
        self.alpha = alpha
        self.name = f"QuickUpdate-{int(round(alpha * 100))}%"

    # ------------------------------------------------------------- selection
    def _select_rows(self, field: int) -> np.ndarray:
        """Top-alpha% of changed rows by L2 magnitude for one table.

        Magnitude is measured against the serving node's copy of the row —
        the value at the node's last successful update of that row (or last
        full sync), exactly the reference the seed snapshot tracked.
        """
        table = self.trainer.model.embeddings[field]
        changed = table.touched_rows()
        if changed.size == 0:
            return changed
        served = self.node.model.embeddings[field].weight
        delta = table.weight[changed] - served[changed]
        magnitude = np.linalg.norm(delta, axis=1)
        keep = max(1, int(np.ceil(self.alpha * changed.size)))
        top = np.argpartition(magnitude, -keep)[-keep:]
        return changed[top]

    # -------------------------------------------------------------- protocol
    def on_update_window(self, now: float) -> UpdateCost:
        total_rows = 0
        for f, table in enumerate(self.trainer.model.embeddings):
            selected = self._select_rows(f)
            if selected.size == 0:
                continue
            rows = table.weight[selected]
            self.node.model.embeddings[f].assign_rows(selected, rows)
            total_rows += int(selected.size)
        # Rows NOT selected stay stale on the node, and the node's rows
        # remain the per-row reference for them; the training cluster's
        # touch log resets so next window measures fresh changes only.
        # Dense layers are NOT refreshed here: pairing fresh dense weights
        # with mostly-stale embeddings breaks their co-adaptation; dense
        # rides the hourly full sync instead.
        for table in self.trainer.model.embeddings:
            table.reset_touched()
        nbytes = total_rows * self.node.server.row_bytes
        cost = UpdateCost(
            kind="quick-delta",
            seconds=self.node.link.transfer_seconds(nbytes) if total_rows else 0.0,
            bytes_moved=nbytes,
            rows=total_rows,
        )
        return self.record(cost)

    def on_full_sync(self, now: float) -> UpdateCost:
        """Hourly full-parameter update (Fig. 8's drift limiter)."""
        self.node.adopt_model(self.trainer.model)
        for table in self.trainer.model.embeddings:
            table.reset_touched()
        nbytes = self.trainer.model.embedding_bytes
        cost = UpdateCost(
            kind="full-sync",
            seconds=self.node.link.transfer_seconds(nbytes),
            bytes_moved=nbytes,
            rows=sum(t.num_rows for t in self.trainer.model.embeddings),
        )
        return self.record(cost)
