"""Model-update strategies: the NoUpdate/DeltaUpdate/QuickUpdate baselines.

LiveUpdate itself lives in :mod:`repro.core.liveupdate` (it is the paper's
contribution, not a baseline) but implements the same
:class:`~repro.strategies.base.UpdateStrategy` interface.
"""

from .base import UpdateCost, UpdateStrategy
from .delta_update import DeltaUpdate
from .no_update import NoUpdate
from .quick_update import QuickUpdate

__all__ = [
    "UpdateStrategy",
    "UpdateCost",
    "NoUpdate",
    "DeltaUpdate",
    "QuickUpdate",
]
