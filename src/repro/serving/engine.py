"""Co-located serving + training node simulator.

Integrates the hardware substrate into one executable model of an inference
node that may also host the LoRA trainer.  Four configurations reproduce the
Fig. 16 ablation:

* ``inference_only``  — no trainer (latency lower bound);
* ``colocated_naive`` — trainer shares the L3 and memory path (w/o Opt);
* ``colocated_sched`` — CCD partitioning isolates the caches (w/ Scheduling);
* ``colocated_full``  — partitioning + shadow-buffer reuse
  (w/ Reuse+Scheduling).

The simulator is deliberately scaled down (table sizes and per-CCD L3 bytes
are laptop-scale) but keeps the *ratios* that drive the mechanism: the
inference hot set fits in the inference partition's L3, and the trainer's
irregular traffic is large enough to thrash a shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.zipf import ZipfSampler
from ..hardware.cache import CacheStats, LRUCache, simulate_interleaved
from ..hardware.latency import InferenceLatencyModel, percentile
from ..hardware.memory import MemoryBandwidthModel, MemoryTraffic
from ..hardware.numa import AdaptiveNumaPartitioner
from ..hardware.reuse import ShadowEmbeddingBuffer
from ..hardware.topology import EPYC_9684X_DUAL, NodeTopology

__all__ = ["NodeSimConfig", "WindowResult", "ColocatedNodeSimulator"]

MB = 1024 ** 2


@dataclass
class NodeSimConfig:
    """Scaled-down co-location simulation parameters.

    Attributes:
        num_rows: embedding rows on this node's partition.
        row_bytes: bytes per row.
        l3_bytes_per_ccd: simulated L3 slice (scaled so the hot set of a
            Zipf-skewed table occupies a few CCDs, like production).
        inference_zipf: skew of serving lookups.
        training_zipf: skew of trainer lookups (flatter: uniform sampling
            over the retention window revisits cold ids far more often).
        accesses_per_window: inference lookups simulated per window.
        training_ratio: trainer lookups as a fraction of inference lookups.
        batches_per_s: served batches per second (DRAM-traffic accounting).
        lookups_per_batch: aggregate embedding fetches per served batch.
        serving_bandwidth_gbps: memory-bandwidth share available to the
            serving path on its NUMA domain (the contended resource).
        naive_remote_fraction: without NUMA-aware allocation, this share of
            DRAM accesses lands on the remote socket.
        trainer_write_fraction: fraction of trainer traffic that is writes.
        reuse_capacity_rows: shadow-buffer capacity when reuse is enabled.
        seed: RNG seed.
    """

    num_rows: int = 200_000
    row_bytes: int = 128
    l3_bytes_per_ccd: int = int(0.25 * MB)
    inference_zipf: float = 0.9
    training_zipf: float = 0.15
    accesses_per_window: int = 100_000
    training_ratio: float = 12.0
    trainer_read_fraction: float = 0.4
    inference_burst: int = 256
    trainer_burst_every: int = 8
    batches_per_s: float = 2_000.0
    lookups_per_batch: int = 200_000
    serving_bandwidth_gbps: float = 60.0
    naive_remote_fraction: float = 0.5
    training_samples_per_s: float = 50_000.0
    training_lookups_per_sample: int = 320
    trainer_write_fraction: float = 0.5
    reuse_capacity_rows: int = 40_000
    seed: int = 0


@dataclass
class WindowResult:
    """Metrics of one simulated serving window."""

    config_name: str
    inference_hit_ratio: float
    training_hit_ratio: float
    reuse_ratio: float
    memory_traffic_gbps: float
    memory_utilization: float
    p50_ms: float
    p99_ms: float


class ColocatedNodeSimulator:
    """Runs serving windows under different isolation configurations."""

    def __init__(
        self,
        config: NodeSimConfig | None = None,
        topology: NodeTopology = EPYC_9684X_DUAL,
    ) -> None:
        self.config = config or NodeSimConfig()
        self.topology = topology
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        self._inference_sampler = ZipfSampler(
            cfg.num_rows, cfg.inference_zipf, rng=np.random.default_rng(cfg.seed + 1)
        )
        self._training_sampler = ZipfSampler(
            cfg.num_rows, cfg.training_zipf, rng=np.random.default_rng(cfg.seed + 2)
        )
        self.memory = MemoryBandwidthModel(peak_gbps=cfg.serving_bandwidth_gbps)
        self.latency = InferenceLatencyModel(
            memory=self.memory,
            lookups_per_query=cfg.lookups_per_batch,
            row_bytes=cfg.row_bytes,
            seed=cfg.seed,
        )

    # ------------------------------------------------------------- plumbing
    def _partition_l3(
        self, inference_ccds: int, training_ccds: int
    ) -> tuple[int, int]:
        per = self.config.l3_bytes_per_ccd
        return inference_ccds * per, training_ccds * per

    def _streams(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate (inference, trainer-read, trainer-write) access streams.

        Trainer *reads* re-visit ids the server recently looked up (the ring
        buffer holds served traffic), so they alias with inference rows —
        that aliasing is what the shadow buffer exploits.  Trainer *writes*
        (gradient rows, optimizer accumulators, LoRA slots) are private
        state with a flat, wide footprint — the cache polluter.
        """
        cfg = self.config
        inf = self._inference_sampler.sample(cfg.accesses_per_window)
        n_train = int(cfg.accesses_per_window * cfg.training_ratio)
        n_read = int(n_train * cfg.trainer_read_fraction)
        reads = self._rng.choice(inf, size=n_read, replace=True)
        writes = self._training_sampler.sample(n_train - n_read)
        return inf, reads, writes

    def _traffic(
        self,
        inf_hit: float,
        train_hit: float,
        training_on: bool,
        reuse_ratio: float = 0.0,
    ) -> MemoryTraffic:
        cfg = self.config
        traffic = MemoryBandwidthModel.inference_traffic(
            cfg.batches_per_s, cfg.lookups_per_batch, cfg.row_bytes, inf_hit
        )
        if training_on:
            effective_rate = cfg.training_samples_per_s * (1.0 - reuse_ratio)
            traffic = traffic + MemoryBandwidthModel.training_traffic(
                effective_rate,
                cfg.training_lookups_per_sample,
                cfg.row_bytes,
                train_hit,
                write_fraction=cfg.trainer_write_fraction,
            )
        return traffic

    def _result(
        self,
        name: str,
        inf_stats: CacheStats,
        train_stats: CacheStats | None,
        training_on: bool,
        reuse_ratio: float = 0.0,
        remote_fraction: float = 0.0,
        num_requests: int = 20_000,
    ) -> WindowResult:
        inf_hit = inf_stats.hit_ratio
        train_hit = train_stats.hit_ratio if train_stats else 0.0
        traffic = self._traffic(inf_hit, train_hit, training_on, reuse_ratio)
        samples = self.latency.sample_latencies(
            num_requests, inf_hit, traffic, remote_fraction
        )
        return WindowResult(
            config_name=name,
            inference_hit_ratio=inf_hit,
            training_hit_ratio=train_hit,
            reuse_ratio=reuse_ratio,
            memory_traffic_gbps=traffic.total_gbps,
            memory_utilization=self.memory.utilization(traffic),
            p50_ms=percentile(samples, 50),
            p99_ms=percentile(samples, 99),
        )

    # ------------------------------------------------------------ simulation
    def _run_window(
        self,
        name: str,
        training_on: bool,
        shared_cache: bool,
        reuse: bool,
        inference_ccds: int,
        training_ccds: int,
        remote_fraction: float = 0.0,
    ) -> WindowResult:
        """Burst-interleaved cache simulation of one serving window."""
        cfg = self.config
        if shared_cache:
            l3_total, _ = self._partition_l3(inference_ccds + training_ccds, 0)
            cache_inf = LRUCache(l3_total)
            cache_train = cache_inf
        else:
            l3_inf, l3_train = self._partition_l3(inference_ccds, training_ccds)
            cache_inf = LRUCache(l3_inf)
            cache_train = LRUCache(max(l3_train, 1))
        inf, reads, writes = self._streams()
        shadow = (
            ShadowEmbeddingBuffer(cfg.reuse_capacity_rows) if reuse else None
        )
        # Warm the serving cache to steady state: production servers have
        # been running for hours, so first-touch cold misses are not part
        # of the measured window.
        warm = self._inference_sampler.sample(cfg.accesses_per_window)
        for key in warm:
            cache_inf.access(int(key), cfg.row_bytes)
            if shadow is not None:
                shadow.publish(0, np.array([key]), np.zeros((1, 1)))
        inf_stats, train_stats = CacheStats(), CacheStats()
        absorbed = 0
        if shared_cache and training_on:
            # Naive co-location: trainer threads run *concurrently* with the
            # server on neighbouring cores, so accesses interleave at cache
            # granularity — each inference touch competes with ~ratio
            # trainer insertions, which is what evicts the hot set.
            return self._run_shared_fine(
                name, cache_inf, inf, reads, writes, remote_fraction
            )
        burst = cfg.inference_burst
        num_bursts = max(1, (len(inf) + burst - 1) // burst)
        # One trainer step is much longer than one served batch: it fires
        # every ``trainer_burst_every`` inference bursts and touches its
        # whole mini-batch footprint at once.
        num_trainer_bursts = max(1, num_bursts // cfg.trainer_burst_every)
        read_chunk = (len(reads) + num_trainer_bursts - 1) // num_trainer_bursts
        write_chunk = (len(writes) + num_trainer_bursts - 1) // num_trainer_bursts
        # Without reuse the trainer copies looked-up rows into its own
        # training arena, so even reads of the "same" embedding land on
        # different cache lines than the server's — hence the offsets.
        # Only the shadow buffer makes trainer reads alias server-warm lines.
        read_offset = 1 << 41
        write_offset = 1 << 40
        dummy_row = np.zeros((1, 1))
        trainer_step = 0
        for b in range(num_bursts):
            for key in inf[b * burst : (b + 1) * burst]:
                if cache_inf.access(int(key), cfg.row_bytes):
                    inf_stats.hits += 1
                else:
                    inf_stats.misses += 1
                if shadow is not None:
                    shadow.publish(0, np.array([key]), dummy_row)
            if not training_on or (b + 1) % cfg.trainer_burst_every:
                continue
            t = trainer_step
            trainer_step += 1
            for key in reads[t * read_chunk : (t + 1) * read_chunk]:
                if shadow is not None and shadow.lookup(0, int(key)) is not None:
                    absorbed += 1
                    train_stats.hits += 1
                elif cache_train.access(int(key) + read_offset, cfg.row_bytes):
                    train_stats.hits += 1
                else:
                    train_stats.misses += 1
            for key in writes[t * write_chunk : (t + 1) * write_chunk]:
                if cache_train.access(int(key) + write_offset, cfg.row_bytes):
                    train_stats.hits += 1
                else:
                    train_stats.misses += 1
        n_train = len(reads) + len(writes)
        reuse_ratio = absorbed / n_train if (reuse and n_train) else 0.0
        return self._result(
            name,
            inf_stats,
            train_stats if training_on else None,
            training_on=training_on,
            reuse_ratio=reuse_ratio,
            remote_fraction=remote_fraction,
        )

    def _run_shared_fine(
        self,
        name: str,
        cache: LRUCache,
        inf: np.ndarray,
        reads: np.ndarray,
        writes: np.ndarray,
        remote_fraction: float,
    ) -> WindowResult:
        """Per-access interleave of server and trainer over one shared L3."""
        cfg = self.config
        inf_stats, train_stats = CacheStats(), CacheStats()
        read_offset = 1 << 41
        write_offset = 1 << 40
        n_inf = len(inf)
        ir = iw = 0
        reads_per_step = len(reads) / max(n_inf, 1)
        writes_per_step = len(writes) / max(n_inf, 1)
        racc = wacc = 0.0
        for i in range(n_inf):
            if cache.access(int(inf[i]), cfg.row_bytes):
                inf_stats.hits += 1
            else:
                inf_stats.misses += 1
            racc += reads_per_step
            while racc >= 1.0 and ir < len(reads):
                if cache.access(int(reads[ir]) + read_offset, cfg.row_bytes):
                    train_stats.hits += 1
                else:
                    train_stats.misses += 1
                ir += 1
                racc -= 1.0
            wacc += writes_per_step
            while wacc >= 1.0 and iw < len(writes):
                if cache.access(int(writes[iw]) + write_offset, cfg.row_bytes):
                    train_stats.hits += 1
                else:
                    train_stats.misses += 1
                iw += 1
                wacc -= 1.0
        return self._result(
            name,
            inf_stats,
            train_stats,
            training_on=True,
            remote_fraction=remote_fraction,
        )

    # --------------------------------------------------------------- configs
    def run_inference_only(self, total_ccds: int = 12) -> WindowResult:
        """Lower bound: the whole L3 allocation serves inference."""
        return self._run_window(
            "inference_only",
            training_on=False,
            shared_cache=False,
            reuse=False,
            inference_ccds=total_ccds,
            training_ccds=0,
        )

    def run_colocated_naive(self, total_ccds: int = 12) -> WindowResult:
        """w/o Opt: trainer and server share one cache domain, and trainer
        pages are not NUMA-local (remote-socket penalty applies)."""
        return self._run_window(
            "colocated_naive",
            training_on=True,
            shared_cache=True,
            reuse=False,
            inference_ccds=total_ccds,
            training_ccds=0,
            remote_fraction=self.config.naive_remote_fraction,
        )

    def run_colocated_scheduled(
        self, inference_ccds: int = 10, training_ccds: int = 2
    ) -> WindowResult:
        """w/ Scheduling: disjoint CCD partitions, separate caches."""
        return self._run_window(
            "colocated_scheduled",
            training_on=True,
            shared_cache=False,
            reuse=False,
            inference_ccds=inference_ccds,
            training_ccds=training_ccds,
        )

    def run_colocated_full(
        self, inference_ccds: int = 10, training_ccds: int = 2
    ) -> WindowResult:
        """w/ Reuse+Scheduling: partitioning plus shadow-buffer reuse.

        Trainer reads first consult the shadow buffer of rows the server
        already fetched; only the remainder touches the training cache and
        DRAM.  Reused rows count as training cache hits — they are reads
        from pinned, cache-resident memory.
        """
        return self._run_window(
            "colocated_full",
            training_on=True,
            shared_cache=False,
            reuse=True,
            inference_ccds=inference_ccds,
            training_ccds=training_ccds,
        )

    # ------------------------------------------------------------- ablation
    def ablation(self) -> dict[str, WindowResult]:
        """All four Fig. 16 configurations with a fresh simulator state."""
        return {
            "Only Infer": self.run_inference_only(),
            "w/o Opt": self.run_colocated_naive(),
            "w/ Scheduling": self.run_colocated_scheduled(),
            "w/ Reuse+Scheduling": self.run_colocated_full(),
        }

    # ---------------------------------------------------- adaptive scheduling
    def measure_p99_for_partition(self, inference_ccds: int, training_ccds: int) -> float:
        """P99 under a given CCD split (Algorithm 2's measurement hook)."""
        result = self.run_colocated_scheduled(inference_ccds, training_ccds)
        return result.p99_ms

    def run_adaptive(
        self, partitioner: AdaptiveNumaPartitioner, cycles: int = 10
    ) -> list[WindowResult]:
        """Closed-loop Algorithm 2 over this simulator."""
        results = []
        for _ in range(cycles):
            state = partitioner.state
            if state.num_training:
                result = self.run_colocated_scheduled(
                    state.num_inference, state.num_training
                )
            else:
                # Nothing granted to training this cycle: serve inference
                # only instead of simulating a degenerate 1-byte trainer
                # cache.
                result = self.run_inference_only(state.num_inference)
            results.append(result)
            partitioner.observe(result.p99_ms)
        return results
