"""Co-located serving + training node simulator.

Integrates the hardware substrate into one executable model of an inference
node that may also host the LoRA trainer.  Four configurations reproduce the
Fig. 16 ablation:

* ``inference_only``  — no trainer (latency lower bound);
* ``colocated_naive`` — trainer shares the L3 and memory path (w/o Opt);
* ``colocated_sched`` — CCD partitioning isolates the caches (w/ Scheduling);
* ``colocated_full``  — partitioning + shadow-buffer reuse
  (w/ Reuse+Scheduling).

The simulator is deliberately scaled down (table sizes and per-CCD L3 bytes
are laptop-scale) but keeps the *ratios* that drive the mechanism: the
inference hot set fits in the inference partition's L3, and the trainer's
irregular traffic is large enough to thrash a shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.zipf import ZipfSampler
from ..hardware.cache import CacheStats
from ..hardware.latency import InferenceLatencyModel, percentile
from ..hardware.memory import MemoryBandwidthModel, MemoryTraffic
from ..hardware.numa import AdaptiveNumaPartitioner
from ..hardware.reuse import BatchedShadowReuse
from ..hardware.topology import EPYC_9684X_DUAL, NodeTopology
from ..hardware.vectorcache import BatchLRUCache, IntervalCache

__all__ = ["NodeSimConfig", "WindowResult", "ColocatedNodeSimulator"]

MB = 1024 ** 2


@dataclass
class NodeSimConfig:
    """Scaled-down co-location simulation parameters.

    Attributes:
        num_rows: embedding rows on this node's partition.
        row_bytes: bytes per row.
        l3_bytes_per_ccd: simulated L3 slice (scaled so the hot set of a
            Zipf-skewed table occupies a few CCDs, like production).
        inference_zipf: skew of serving lookups.
        training_zipf: skew of trainer lookups (flatter: uniform sampling
            over the retention window revisits cold ids far more often).
        accesses_per_window: inference lookups simulated per window.
        training_ratio: trainer lookups as a fraction of inference lookups.
        batches_per_s: served batches per second (DRAM-traffic accounting).
        lookups_per_batch: aggregate embedding fetches per served batch.
        serving_bandwidth_gbps: memory-bandwidth share available to the
            serving path on its NUMA domain (the contended resource).
        naive_remote_fraction: without NUMA-aware allocation, this share of
            DRAM accesses lands on the remote socket.
        trainer_write_fraction: fraction of trainer traffic that is writes.
        reuse_capacity_rows: shadow-buffer capacity when reuse is enabled.
        cache_policy: L3 model backing the window simulation.
            ``"interval"`` (default) is the CLOCK-style coarse-recency
            approximation — fully vectorized, hits are a conservative
            subset of LRU's, eviction counts unavailable; ``"lru"`` is the
            exact batched LRU (``BatchLRUCache``), bit-equal to the seed
            per-key simulation and the mode that reports eviction churn.
        seed: RNG seed.
    """

    num_rows: int = 200_000
    row_bytes: int = 128
    l3_bytes_per_ccd: int = int(0.25 * MB)
    inference_zipf: float = 0.9
    training_zipf: float = 0.15
    accesses_per_window: int = 100_000
    training_ratio: float = 12.0
    trainer_read_fraction: float = 0.4
    inference_burst: int = 256
    trainer_burst_every: int = 8
    batches_per_s: float = 2_000.0
    lookups_per_batch: int = 200_000
    serving_bandwidth_gbps: float = 60.0
    naive_remote_fraction: float = 0.5
    training_samples_per_s: float = 50_000.0
    training_lookups_per_sample: int = 320
    trainer_write_fraction: float = 0.5
    reuse_capacity_rows: int = 40_000
    cache_policy: str = "interval"
    seed: int = 0

    @classmethod
    def for_lane(cls, dim: int, policy, **overrides) -> "NodeSimConfig":
        """Config with ``row_bytes`` sized from a dtype-lane policy.

        ``policy`` is a :class:`repro.core.dtypes.DTypePolicy`;
        ``row_bytes`` becomes ``dim * itemsize`` of the lane's row dtype,
        so a float32 serving node charges half the DRAM traffic per
        lookup — and fits twice the rows per L3 slice — of a float64
        one, with everything else identical.  Other fields pass through
        ``overrides``.
        """
        if "row_bytes" in overrides:
            raise ValueError("row_bytes is derived from the policy")
        return cls(row_bytes=policy.row_nbytes(dim), **overrides)


@dataclass
class WindowResult:
    """Metrics of one simulated serving window.

    The access/eviction counters were added with the batched cache engine:
    ``inference_accesses`` / ``training_accesses`` count simulated cache
    touches per stream, and ``cache_evictions`` counts L3 lines displaced
    across the window's caches — the churn observable the freshness and
    memory experiments consume.
    """

    config_name: str
    inference_hit_ratio: float
    training_hit_ratio: float
    reuse_ratio: float
    memory_traffic_gbps: float
    memory_utilization: float
    p50_ms: float
    p99_ms: float
    inference_accesses: int = 0
    training_accesses: int = 0
    cache_evictions: int = 0


class ColocatedNodeSimulator:
    """Runs serving windows under different isolation configurations."""

    def __init__(
        self,
        config: NodeSimConfig | None = None,
        topology: NodeTopology = EPYC_9684X_DUAL,
    ) -> None:
        self.config = config or NodeSimConfig()
        self.topology = topology
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        self._inference_sampler = ZipfSampler(
            cfg.num_rows,
            cfg.inference_zipf,
            rng=np.random.default_rng(cfg.seed + 1),
            method="alias",
        )
        self._training_sampler = ZipfSampler(
            cfg.num_rows,
            cfg.training_zipf,
            rng=np.random.default_rng(cfg.seed + 2),
            method="alias",
        )
        self.memory = MemoryBandwidthModel(peak_gbps=cfg.serving_bandwidth_gbps)
        self.latency = InferenceLatencyModel(
            memory=self.memory,
            lookups_per_query=cfg.lookups_per_batch,
            row_bytes=cfg.row_bytes,
            seed=cfg.seed,
        )

    # ------------------------------------------------------------- plumbing
    def _make_cache(
        self, capacity_bytes: int, universe: int
    ) -> BatchLRUCache | IntervalCache:
        """One L3 slice under the configured cache policy."""
        policy = self.config.cache_policy
        if policy == "lru":
            return BatchLRUCache(capacity_bytes, universe=universe)
        if policy == "interval":
            return IntervalCache(capacity_bytes, universe=universe)
        raise ValueError(f"unknown cache_policy {policy!r}")

    def _partition_l3(
        self, inference_ccds: int, training_ccds: int
    ) -> tuple[int, int]:
        per = self.config.l3_bytes_per_ccd
        return inference_ccds * per, training_ccds * per

    def _streams(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate (inference, trainer-read, trainer-write) access streams.

        Trainer *reads* re-visit ids the server recently looked up (the ring
        buffer holds served traffic), so they alias with inference rows —
        that aliasing is what the shadow buffer exploits.  Trainer *writes*
        (gradient rows, optimizer accumulators, LoRA slots) are private
        state with a flat, wide footprint — the cache polluter.
        """
        cfg = self.config
        inf = self._inference_sampler.sample(cfg.accesses_per_window)
        n_train = int(cfg.accesses_per_window * cfg.training_ratio)
        n_read = int(n_train * cfg.trainer_read_fraction)
        reads = self._rng.choice(inf, size=n_read, replace=True)
        writes = self._training_sampler.sample(n_train - n_read)
        return inf, reads, writes

    def _traffic(
        self,
        inf_hit: float,
        train_hit: float,
        training_on: bool,
        reuse_ratio: float = 0.0,
    ) -> MemoryTraffic:
        cfg = self.config
        traffic = MemoryBandwidthModel.inference_traffic(
            cfg.batches_per_s, cfg.lookups_per_batch, cfg.row_bytes, inf_hit
        )
        if training_on:
            effective_rate = cfg.training_samples_per_s * (1.0 - reuse_ratio)
            traffic = traffic + MemoryBandwidthModel.training_traffic(
                effective_rate,
                cfg.training_lookups_per_sample,
                cfg.row_bytes,
                train_hit,
                write_fraction=cfg.trainer_write_fraction,
            )
        return traffic

    def _result(
        self,
        name: str,
        inf_stats: CacheStats,
        train_stats: CacheStats | None,
        training_on: bool,
        reuse_ratio: float = 0.0,
        remote_fraction: float = 0.0,
        num_requests: int = 20_000,
        evictions: int = 0,
    ) -> WindowResult:
        inf_hit = inf_stats.hit_ratio
        train_hit = train_stats.hit_ratio if train_stats else 0.0
        traffic = self._traffic(inf_hit, train_hit, training_on, reuse_ratio)
        samples = self.latency.sample_latencies(
            num_requests, inf_hit, traffic, remote_fraction
        )
        return WindowResult(
            config_name=name,
            inference_hit_ratio=inf_hit,
            training_hit_ratio=train_hit,
            reuse_ratio=reuse_ratio,
            memory_traffic_gbps=traffic.total_gbps,
            memory_utilization=self.memory.utilization(traffic),
            p50_ms=percentile(samples, 50),
            p99_ms=percentile(samples, 99),
            inference_accesses=inf_stats.accesses,
            training_accesses=train_stats.accesses if train_stats else 0,
            cache_evictions=evictions,
        )

    # ------------------------------------------------------------ simulation
    def _run_window(
        self,
        name: str,
        training_on: bool,
        shared_cache: bool,
        reuse: bool,
        inference_ccds: int,
        training_ccds: int,
        remote_fraction: float = 0.0,
    ) -> WindowResult:
        """Batched cache simulation of one serving window.

        The whole window runs as gather/scatter passes over
        :class:`~repro.hardware.vectorcache.BatchLRUCache` — one
        ``access_many`` per cache — instead of a Python loop per key.
        Partitioned caches never interact, so each consumes its own stream
        whole; only the shadow buffer couples the trainer to inference
        *time*, which :class:`~repro.hardware.reuse.BatchedShadowReuse`
        answers per trainer burst against the known publish prefix.

        Key spaces mirror the seed's offset scheme bijectively: without
        reuse the trainer copies looked-up rows into its own training
        arena, so even reads of the "same" embedding land on different
        cache lines than the server's — hence trainer reads/writes occupy
        disjoint id ranges (``[0, R)`` / ``[R, 2R)``) of the trainer
        cache's dense universe.
        """
        cfg = self.config
        num_rows = cfg.num_rows
        if shared_cache:
            l3_total, _ = self._partition_l3(inference_ccds + training_ccds, 0)
            cache_inf = self._make_cache(l3_total, 3 * num_rows)
            cache_train = cache_inf
        else:
            l3_inf, l3_train = self._partition_l3(inference_ccds, training_ccds)
            cache_inf = self._make_cache(l3_inf, num_rows)
            cache_train = self._make_cache(max(l3_train, 1), 2 * num_rows)
        inf, reads, writes = self._streams()
        # Warm the serving cache to steady state: production servers have
        # been running for hours, so first-touch cold misses are not part
        # of the measured window.
        warm = self._inference_sampler.sample(cfg.accesses_per_window)
        cache_inf.access_many(warm, cfg.row_bytes)
        if shared_cache and training_on:
            # Naive co-location: trainer threads run *concurrently* with the
            # server on neighbouring cores, so accesses interleave at cache
            # granularity — each inference touch competes with ~ratio
            # trainer insertions, which is what evicts the hot set.
            return self._run_shared_fine(
                name, cache_inf, inf, reads, writes, remote_fraction
            )
        inf_stats, train_stats = CacheStats(), CacheStats()
        evictions = cache_inf.access_many(
            inf, cfg.row_bytes, stats=inf_stats
        ).num_evictions
        absorbed = 0
        if training_on:
            burst = cfg.inference_burst
            num_bursts = max(1, (len(inf) + burst - 1) // burst)
            # One trainer step is much longer than one served batch: it
            # fires every ``trainer_burst_every`` inference bursts and
            # touches its whole mini-batch footprint at once.
            num_trainer_bursts = max(1, num_bursts // cfg.trainer_burst_every)
            read_chunk = (
                len(reads) + num_trainer_bursts - 1
            ) // num_trainer_bursts
            write_chunk = (
                len(writes) + num_trainer_bursts - 1
            ) // num_trainer_bursts
            fired = num_bursts // cfg.trainer_burst_every
            shadow = (
                BatchedShadowReuse(
                    np.concatenate([warm, inf]), cfg.reuse_capacity_rows
                )
                if reuse
                else None
            )
            pieces: list[np.ndarray] = []
            for t in range(fired):
                step_reads = reads[t * read_chunk : (t + 1) * read_chunk]
                if shadow is not None and step_reads.size:
                    # Shadow state as of the inference burst this trainer
                    # step follows: warm plus every burst published so far.
                    prefix = warm.size + min(
                        inf.size, (t + 1) * cfg.trainer_burst_every * burst
                    )
                    mask = shadow.absorbed(prefix, step_reads)
                    hits = int(mask.sum())
                    absorbed += hits
                    train_stats.hits += hits  # reused rows are pinned: hits
                    step_reads = step_reads[~mask]
                pieces.append(step_reads)
                pieces.append(
                    writes[t * write_chunk : (t + 1) * write_chunk] + num_rows
                )
            if pieces:
                evictions += cache_train.access_many(
                    np.concatenate(pieces), cfg.row_bytes, stats=train_stats
                ).num_evictions
        n_train = len(reads) + len(writes)
        reuse_ratio = absorbed / n_train if (reuse and n_train) else 0.0
        return self._result(
            name,
            inf_stats,
            train_stats if training_on else None,
            training_on=training_on,
            reuse_ratio=reuse_ratio,
            remote_fraction=remote_fraction,
            evictions=evictions,
        )

    def _run_shared_fine(
        self,
        name: str,
        cache: BatchLRUCache | IntervalCache,
        inf: np.ndarray,
        reads: np.ndarray,
        writes: np.ndarray,
        remote_fraction: float,
    ) -> WindowResult:
        """Per-access interleave of server and trainer over one shared L3.

        The seed walked the three streams with fractional float
        accumulators; the batched version materialises the *exact-rational*
        emission schedule those accumulators approximate — read ``r`` lands
        right after inference access ``ceil((r+1)/rate) - 1`` — so interior
        positions can differ from the seed by one slot where its float
        error crossed an emission boundary (statistically identical, not
        bit-equal).  The merged window then plays through the shared cache
        in a single ``access_many`` pass.
        """
        cfg = self.config
        num_rows = cfg.num_rows
        n_inf, n_r, n_w = len(inf), len(reads), len(writes)
        inf_stats, train_stats = CacheStats(), CacheStats()
        evictions = 0
        if n_inf:
            # Emission schedule in closed form (no sort): within a step the
            # order is inference access, then its reads, then its writes,
            # so every access's output slot is its own index plus the
            # counts of the other two streams emitted before it.
            i_idx = np.arange(n_inf, dtype=np.int64)
            r_idx = np.arange(n_r, dtype=np.int64)
            w_idx = np.arange(n_w, dtype=np.int64)
            # Step after which read r / write w is emitted.
            step_r = ((r_idx + 1) * n_inf + n_r - 1) // max(n_r, 1) - 1
            step_w = ((w_idx + 1) * n_inf + n_w - 1) // max(n_w, 1) - 1
            pos_inf = i_idx + (i_idx * n_r) // n_inf + (i_idx * n_w) // n_inf
            pos_r = (step_r + 1) + r_idx + (step_r * n_w) // n_inf
            pos_w = (step_w + 1) + ((step_w + 1) * n_r) // n_inf + w_idx
            total = n_inf + n_r + n_w
            merged = np.empty(total, dtype=np.int64)
            merged[pos_inf] = inf
            merged[pos_r] = reads + num_rows
            merged[pos_w] = writes + 2 * num_rows
            is_inf = np.zeros(total, dtype=bool)
            is_inf[pos_inf] = True
            result = cache.access_many(merged, cfg.row_bytes)
            evictions = result.num_evictions
            inf_mask = result.hit_mask[is_inf]
            train_mask = result.hit_mask[~is_inf]
            inf_stats = CacheStats(
                int(inf_mask.sum()), int(inf_mask.size - inf_mask.sum())
            )
            train_stats = CacheStats(
                int(train_mask.sum()), int(train_mask.size - train_mask.sum())
            )
        return self._result(
            name,
            inf_stats,
            train_stats,
            training_on=True,
            remote_fraction=remote_fraction,
            evictions=evictions,
        )

    # --------------------------------------------------------------- configs
    def run_inference_only(self, total_ccds: int = 12) -> WindowResult:
        """Lower bound: the whole L3 allocation serves inference."""
        return self._run_window(
            "inference_only",
            training_on=False,
            shared_cache=False,
            reuse=False,
            inference_ccds=total_ccds,
            training_ccds=0,
        )

    def run_colocated_naive(self, total_ccds: int = 12) -> WindowResult:
        """w/o Opt: trainer and server share one cache domain, and trainer
        pages are not NUMA-local (remote-socket penalty applies)."""
        return self._run_window(
            "colocated_naive",
            training_on=True,
            shared_cache=True,
            reuse=False,
            inference_ccds=total_ccds,
            training_ccds=0,
            remote_fraction=self.config.naive_remote_fraction,
        )

    def run_colocated_scheduled(
        self, inference_ccds: int = 10, training_ccds: int = 2
    ) -> WindowResult:
        """w/ Scheduling: disjoint CCD partitions, separate caches."""
        return self._run_window(
            "colocated_scheduled",
            training_on=True,
            shared_cache=False,
            reuse=False,
            inference_ccds=inference_ccds,
            training_ccds=training_ccds,
        )

    def run_colocated_full(
        self, inference_ccds: int = 10, training_ccds: int = 2
    ) -> WindowResult:
        """w/ Reuse+Scheduling: partitioning plus shadow-buffer reuse.

        Trainer reads first consult the shadow buffer of rows the server
        already fetched; only the remainder touches the training cache and
        DRAM.  Reused rows count as training cache hits — they are reads
        from pinned, cache-resident memory.
        """
        return self._run_window(
            "colocated_full",
            training_on=True,
            shared_cache=False,
            reuse=True,
            inference_ccds=inference_ccds,
            training_ccds=training_ccds,
        )

    # ------------------------------------------------------------- ablation
    def ablation(self) -> dict[str, WindowResult]:
        """All four Fig. 16 configurations with a fresh simulator state."""
        return {
            "Only Infer": self.run_inference_only(),
            "w/o Opt": self.run_colocated_naive(),
            "w/ Scheduling": self.run_colocated_scheduled(),
            "w/ Reuse+Scheduling": self.run_colocated_full(),
        }

    # ---------------------------------------------------- adaptive scheduling
    def measure_p99_for_partition(self, inference_ccds: int, training_ccds: int) -> float:
        """P99 under a given CCD split (Algorithm 2's measurement hook)."""
        result = self.run_colocated_scheduled(inference_ccds, training_ccds)
        return result.p99_ms

    def run_adaptive(
        self, partitioner: AdaptiveNumaPartitioner, cycles: int = 10
    ) -> list[WindowResult]:
        """Closed-loop Algorithm 2 over this simulator."""
        results = []
        for _ in range(cycles):
            state = partitioner.state
            if state.num_training:
                result = self.run_colocated_scheduled(
                    state.num_inference, state.num_training
                )
            else:
                # Nothing granted to training this cycle: serve inference
                # only instead of simulating a degenerate 1-byte trainer
                # cache.
                result = self.run_inference_only(state.num_inference)
            results.append(result)
            partitioner.observe(result.p99_ms)
        return results
