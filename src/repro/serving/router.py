"""Fleet request routing.

Production serving shards traffic across inference nodes — by consistent
hashing of a routing key (user/session) with load-aware spillover.  Routing
is what creates the *node-local traffic distributions* LiveUpdate's local
trainers adapt to, and what the EMT partitioning in Fig. 2 assumes.

Hashing is :func:`repro.core.kernels.splitmix64`, never the builtin
``hash()``: the builtin is salted per process (``PYTHONHASHSEED``), which
would give every fleet member a different ring layout and make routing
decisions irreproducible across processes.  The batch :meth:`route` path is
one vectorised hash + ``np.searchsorted`` over the ring; the scalar probe
loop is only taken when bounded-load capacity is configured *and* some node
would saturate within the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dtypes import as_uint64_keys
from ..core.kernels import hash_combine, splitmix64

__all__ = ["RouterStats", "ConsistentHashRouter"]

# Fixed salt for request-key hashing: key placement is independent of the
# ring seed so alternative ring layouts stay comparable (remap analysis).
_KEY_SEED = 0x517CC1B7


@dataclass
class RouterStats:
    """Routing outcome counters."""

    routed: int = 0
    spilled: int = 0

    @property
    def spill_ratio(self) -> float:
        total = self.routed + self.spilled
        return self.spilled / total if total else 0.0


class ConsistentHashRouter:
    """Consistent-hash ring with virtual nodes and load-aware spillover.

    Args:
        node_ids: physical inference nodes.
        virtual_nodes: ring points per physical node (smooths the split).
        capacity_qps: optional per-node capacity; when a node is saturated
            within the current accounting window, requests spill to the
            next node on the ring (bounded-load consistent hashing).
        seed: hash seed.
    """

    def __init__(
        self,
        node_ids: list[int],
        virtual_nodes: int = 64,
        capacity_qps: float | None = None,
        seed: int = 0,
    ) -> None:
        if not node_ids:
            raise ValueError("need at least one node")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.node_ids = list(node_ids)
        self.capacity_qps = capacity_qps
        nodes = np.repeat(np.asarray(self.node_ids, dtype=np.int64), virtual_nodes)
        replicas = np.tile(
            np.arange(virtual_nodes, dtype=np.int64), len(self.node_ids)
        )
        # deterministic ring position per (node, replica), stable across
        # processes; ties broken by node id for a reproducible ring order
        keys = hash_combine(nodes, replicas, seed) % np.uint64(1 << 32)
        order = np.lexsort((nodes, keys))
        self._ring_keys = keys[order]
        self._ring_nodes = nodes[order]
        # dense per-node position for array-based load accounting
        self._nodes_sorted = np.unique(np.asarray(self.node_ids, dtype=np.int64))
        self._ring_node_pos = np.searchsorted(self._nodes_sorted, self._ring_nodes)
        self._load = np.zeros(self._nodes_sorted.size, dtype=np.int64)
        self._replica_tables: dict[int, np.ndarray] = {}
        self.stats = RouterStats()

    # ---------------------------------------------------------------- basics
    @property
    def _window_load(self) -> dict[int, int]:
        """Current window's per-node request count (diagnostic view)."""
        return {
            int(n): int(l) for n, l in zip(self._nodes_sorted, self._load)
        }

    def _key_hashes(self, routing_keys: np.ndarray) -> np.ndarray:
        # Checked coercion: the old bare `.astype(np.int64)` accepted
        # float keys, and a float64 detour collapses every integer above
        # 2**53 onto its even neighbour — two distinct users silently
        # sharing a ring position.  Floats now raise; integer keys keep
        # their exact 64-bit pattern (uint64 included, wrap-identical to
        # the previous int64 round-trip).
        keys = as_uint64_keys(routing_keys, name="routing_keys")
        return splitmix64(keys, _KEY_SEED) % np.uint64(1 << 32)

    def _ring_indices(self, routing_keys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._ring_keys, self._key_hashes(routing_keys))
        idx[idx == self._ring_keys.size] = 0
        return idx

    def _route_probed(self, idx: int) -> int:
        """Scalar bounded-load probe starting at ring position ``idx``."""
        n = self._ring_nodes.size
        for probe in range(n):
            pos = int(self._ring_node_pos[(idx + probe) % n])
            if (
                self.capacity_qps is None
                or self._load[pos] < self.capacity_qps
            ):
                self._load[pos] += 1
                if probe == 0:
                    self.stats.routed += 1
                else:
                    self.stats.spilled += 1
                return int(self._nodes_sorted[pos])
        # everything saturated: take the home node anyway
        pos = int(self._ring_node_pos[idx])
        self._load[pos] += 1
        self.stats.spilled += 1
        return int(self._nodes_sorted[pos])

    def route_one(self, routing_key: int) -> int:
        """Route a single request key to a node id."""
        idx = int(self._ring_indices(np.array([int(routing_key)]))[0])
        return self._route_probed(idx)

    def route(self, routing_keys: np.ndarray) -> np.ndarray:
        """Vector routing; returns the node id per request.

        Fully vectorised whenever no node saturates within the batch; the
        sequential probe loop only runs when bounded-load spillover can
        actually occur.
        """
        keys = np.asarray(routing_keys).reshape(-1)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        idx = self._ring_indices(keys)
        home_counts = np.bincount(
            self._ring_node_pos[idx], minlength=self._nodes_sorted.size
        )
        if self.capacity_qps is not None and np.any(
            (self._load + home_counts > self.capacity_qps) & (home_counts > 0)
        ):
            return np.array(
                [self._route_probed(int(i)) for i in idx], dtype=np.int64
            )
        self._load += home_counts
        self.stats.routed += keys.size
        return self._ring_nodes[idx].copy()

    def reset_window(self) -> None:
        """Start a new load-accounting window (e.g. every second)."""
        self._load[:] = 0

    # ------------------------------------------------------------ replication
    def _replica_table(self, r: int) -> np.ndarray:
        """``(ring_size, r)`` successor-owner table, built once per ``r``.

        Row ``i`` lists the first ``r`` *distinct* node ids encountered
        walking the ring clockwise from ring slot ``i`` (the slot's own
        node first).  Built fully vectorized: for each node, one
        ``searchsorted`` gives the cyclic distance from every ring slot
        to that node's next slot; an argsort over those distances orders
        the nodes by ring proximity.  Distances are distinct per slot
        (each ring slot belongs to exactly one node), so the order — and
        therefore replica placement — is deterministic in every process.
        """
        cached = self._replica_tables.get(r)
        if cached is not None:
            return cached
        num_nodes = self._nodes_sorted.size
        if not 1 <= r <= num_nodes:
            raise ValueError(
                f"replica count {r} must be in [1, {num_nodes}]"
            )
        ring_size = self._ring_nodes.size
        slots = np.arange(ring_size, dtype=np.int64)
        dist = np.empty((ring_size, num_nodes), dtype=np.int64)
        for pos in range(num_nodes):
            owned = np.flatnonzero(self._ring_node_pos == pos)
            nxt = np.searchsorted(owned, slots, side="left")
            wrapped = nxt == owned.size
            nxt = np.where(wrapped, 0, nxt)
            dist[:, pos] = owned[nxt] + wrapped * ring_size - slots
        order = np.argsort(dist, axis=1)[:, :r]
        table = self._nodes_sorted[order]
        self._replica_tables[r] = table
        return table

    def replica_assign(self, routing_keys: np.ndarray, r: int) -> np.ndarray:
        """First ``r`` distinct owners clockwise from each key's position.

        Pure ring placement (no bounded-load spillover): column 0 equals
        :meth:`assign` on an uncapacitated router, and columns 1..r-1 are
        the successor owners a replicated store writes to.  Analysis-only:
        neither window load nor :attr:`stats` move.

        Parameters
        ----------
        routing_keys : numpy.ndarray
            Keys to place.
        r : int
            Distinct owners per key; must not exceed the node count.

        Returns
        -------
        numpy.ndarray of int64
            ``(len(routing_keys), r)`` owner node ids per key.
        """
        table = self._replica_table(r)
        keys = np.asarray(routing_keys).reshape(-1)
        if keys.size == 0:
            return np.empty((0, r), dtype=np.int64)
        return table[self._ring_indices(keys)]

    def replica_owner_table(self, r: int) -> np.ndarray:
        """The full ``(ring_size, r)`` successor-owner table for ``r``.

        One row per ring slot, listing the ``r`` distinct owners walking
        clockwise from it (slot's own node first).  Every possible
        replica set appears as some row, so coverage questions ("does a
        set of live nodes intersect every write quorum?") reduce to a
        vectorized membership test over this table instead of a
        per-key walk.  Read-only: callers must not mutate the result.
        """
        return self._replica_table(r)

    # -------------------------------------------------------------- analysis
    def assign(self, routing_keys: np.ndarray) -> np.ndarray:
        """The assignment :meth:`route` would produce from the current
        state, without consuming capacity or touching :attr:`stats`."""
        saved_routed = self.stats.routed
        saved_spilled = self.stats.spilled
        saved_load = self._load.copy()
        try:
            return self.route(routing_keys)
        finally:
            self.stats.routed = saved_routed
            self.stats.spilled = saved_spilled
            self._load = saved_load

    def load_split(self, routing_keys: np.ndarray) -> dict[int, float]:
        """Fraction of the given traffic landing on each node.

        Analysis only: routing state (window load, stats) is unchanged.
        """
        assignment = self.assign(np.asarray(routing_keys))
        total = len(assignment)
        return {
            int(n): float((assignment == n).sum()) / total
            for n in self.node_ids
        }

    def imbalance(self, routing_keys: np.ndarray) -> float:
        """Max-over-mean node share (1.0 = perfectly balanced)."""
        split = self.load_split(routing_keys)
        shares = np.array(list(split.values()))
        return float(shares.max() / shares.mean()) if shares.mean() else 0.0

    def remap_fraction(self, other: "ConsistentHashRouter", keys: np.ndarray) -> float:
        """Fraction of keys that change nodes between two ring layouts.

        Consistent hashing's selling point: adding/removing a node remaps
        only ~1/N of traffic, keeping node-local adaptation (and caches)
        warm for everyone else.  Side-effect-free on both routers.
        """
        mine = self.assign(np.asarray(keys))
        theirs = other.assign(np.asarray(keys))
        return float((mine != theirs).mean())
