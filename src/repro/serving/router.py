"""Fleet request routing.

Production serving shards traffic across inference nodes — by consistent
hashing of a routing key (user/session) with load-aware spillover.  Routing
is what creates the *node-local traffic distributions* LiveUpdate's local
trainers adapt to, and what the EMT partitioning in Fig. 2 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RouterStats", "ConsistentHashRouter"]


@dataclass
class RouterStats:
    """Routing outcome counters."""

    routed: int = 0
    spilled: int = 0

    @property
    def spill_ratio(self) -> float:
        total = self.routed + self.spilled
        return self.spilled / total if total else 0.0


class ConsistentHashRouter:
    """Consistent-hash ring with virtual nodes and load-aware spillover.

    Args:
        node_ids: physical inference nodes.
        virtual_nodes: ring points per physical node (smooths the split).
        capacity_qps: optional per-node capacity; when a node is saturated
            within the current accounting window, requests spill to the
            next node on the ring (bounded-load consistent hashing).
        seed: hash seed.
    """

    def __init__(
        self,
        node_ids: list[int],
        virtual_nodes: int = 64,
        capacity_qps: float | None = None,
        seed: int = 0,
    ) -> None:
        if not node_ids:
            raise ValueError("need at least one node")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.node_ids = list(node_ids)
        self.capacity_qps = capacity_qps
        rng = np.random.default_rng(seed)
        points = []
        for node in self.node_ids:
            for v in range(virtual_nodes):
                # deterministic ring position per (node, replica)
                h = hash((node, v, seed)) % (1 << 32)
                points.append((h, node))
        points.sort()
        self._ring_keys = np.array([p[0] for p in points], dtype=np.uint64)
        self._ring_nodes = np.array([p[1] for p in points], dtype=np.int64)
        self.stats = RouterStats()
        self._window_load: dict[int, int] = {n: 0 for n in self.node_ids}

    # ---------------------------------------------------------------- basics
    def _ring_lookup(self, key_hash: int) -> int:
        idx = int(np.searchsorted(self._ring_keys, key_hash % (1 << 32)))
        if idx == len(self._ring_keys):
            idx = 0
        return idx

    def route_one(self, routing_key: int) -> int:
        """Route a single request key to a node id."""
        idx = self._ring_lookup(hash((int(routing_key), "k")) % (1 << 32))
        for probe in range(len(self._ring_nodes)):
            node = int(self._ring_nodes[(idx + probe) % len(self._ring_nodes)])
            if (
                self.capacity_qps is None
                or self._window_load[node] < self.capacity_qps
            ):
                self._window_load[node] += 1
                if probe == 0:
                    self.stats.routed += 1
                else:
                    self.stats.spilled += 1
                return node
        # everything saturated: take the home node anyway
        node = int(self._ring_nodes[idx])
        self._window_load[node] += 1
        self.stats.spilled += 1
        return node

    def route(self, routing_keys: np.ndarray) -> np.ndarray:
        """Vector routing; returns the node id per request."""
        return np.array(
            [self.route_one(int(k)) for k in np.asarray(routing_keys)],
            dtype=np.int64,
        )

    def reset_window(self) -> None:
        """Start a new load-accounting window (e.g. every second)."""
        for node in self._window_load:
            self._window_load[node] = 0

    # -------------------------------------------------------------- analysis
    def load_split(self, routing_keys: np.ndarray) -> dict[int, float]:
        """Fraction of the given traffic landing on each node."""
        assignment = self.route(np.asarray(routing_keys))
        total = len(assignment)
        return {
            int(n): float((assignment == n).sum()) / total
            for n in self.node_ids
        }

    def imbalance(self, routing_keys: np.ndarray) -> float:
        """Max-over-mean node share (1.0 = perfectly balanced)."""
        split = self.load_split(routing_keys)
        shares = np.array(list(split.values()))
        return float(shares.max() / shares.mean()) if shares.mean() else 0.0

    def remap_fraction(self, other: "ConsistentHashRouter", keys: np.ndarray) -> float:
        """Fraction of keys that change nodes between two ring layouts.

        Consistent hashing's selling point: adding/removing a node remaps
        only ~1/N of traffic, keeping node-local adaptation (and caches)
        warm for everyone else.
        """
        mine = self.route(np.asarray(keys))
        theirs = other.route(np.asarray(keys))
        return float((mine != theirs).mean())
