"""QoS / SLA monitoring for the serving path.

Tracks per-window latency percentiles against the paper's SLAs (P99 < 20 ms
end-to-end; < 10 ms GPU inference time in the evaluation's stress setting)
and provides the measurement window Algorithm 2 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.latency import percentile
from ..obs.metrics import registry as _obs_registry
from ..obs.recorder import flight_recorder as _flight_recorder

__all__ = ["OUTCOMES", "SLAReport", "SLAMonitor"]

_REG = _obs_registry()
_LATENCY_MS = _REG.histogram(
    "serving.latency_ms",
    help="end-to-end request latency fed through SLAMonitor.observe",
    lo=1e-2,
    hi=1e5,
)
_REQUESTS = _REG.counter(
    "serving.requests", help="request latencies observed"
)
_WINDOWS = _REG.counter(
    "serving.sla.windows", help="monitoring windows closed"
)
_VIOLATIONS = _REG.counter(
    "serving.sla.violations", help="windows whose p99 broke the SLA target"
)
_SLA_HEDGED = _REG.counter(
    "serving.sla.hedged", help="requests answered with a hedged backup read"
)
_SLA_DEGRADED = _REG.counter(
    "serving.sla.degraded", help="requests served from bounded-staleness state"
)
_SLA_TIMED_OUT = _REG.counter(
    "serving.sla.timed_out", help="requests that exhausted their deadline"
)
_SLA_SHED = _REG.counter(
    "serving.sla.shed", help="requests shed by admission control"
)

#: Request outcome classes, in their fixed code order.  ``clean`` is a
#: plain successful answer; everything else records *how* the request
#: deviated — a hedged answer is still correct but cost a backup read, a
#: degraded one served stale-but-accounted state, ``timed_out`` and
#: ``shed`` returned no answer at all.  Tail latency alone cannot
#: distinguish "fast because healthy" from "fast because we gave up",
#: so the monitor counts these separately from the percentiles.
OUTCOMES = ("clean", "hedged", "degraded", "timed_out", "shed")

_OUTCOME_INDEX = {name: i for i, name in enumerate(OUTCOMES)}


@dataclass
class SLAReport:
    """Latency summary of one monitoring window.

    The ``num_*`` outcome counts partition ``num_requests``: every
    request in the window is exactly one of clean, hedged, degraded,
    timed-out, or shed.
    """

    window_id: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    violated: bool
    num_requests: int
    num_clean: int = 0
    num_hedged: int = 0
    num_degraded: int = 0
    num_timed_out: int = 0
    num_shed: int = 0

    @property
    def clean_fraction(self) -> float:
        """Share of the window answered cleanly (no hedge, no degrade)."""
        if not self.num_requests:
            return 0.0
        return self.num_clean / self.num_requests


class SLAMonitor:
    """Sliding-window tail-latency monitor on the shared telemetry plane.

    Every observed latency array is folded into the process-wide
    ``serving.latency_ms`` :class:`~repro.obs.metrics.Histogram` (one
    ``observe_many`` pass) and the ``serving.*`` counters, so dashboards
    and exporters see the same stream the monitor does.  Per-window
    *reports* still compute their percentiles from the window's raw
    samples — count-based windowing needs the raw slice anyway, and it
    keeps report values bit-identical to the pre-telemetry monitor (a
    property pinned by ``tests/test_serving.py``).  SLA violations file
    a post-mortem event in the process flight recorder.

    Args:
        p99_target_ms: SLA threshold (paper stress setting: 10 ms).
        window_requests: samples per monitoring window.
    """

    def __init__(
        self, p99_target_ms: float = 10.0, window_requests: int = 5000
    ) -> None:
        if p99_target_ms <= 0:
            raise ValueError("SLA target must be positive")
        self.p99_target_ms = p99_target_ms
        self.window_requests = window_requests
        self._current = np.empty(0, dtype=np.float64)
        self._current_codes = np.empty(0, dtype=np.int64)
        self.reports: list[SLAReport] = []
        self._window_id = 0

    def observe(
        self,
        latencies_ms: np.ndarray,
        outcomes: list[str] | np.ndarray | None = None,
    ) -> list[SLAReport]:
        """Feed request latencies; returns any windows completed by them.

        The pending tail and the incoming burst are sliced into
        ``window_requests``-sized windows in one pass — each completed
        window still produces its own :class:`SLAReport`, exactly as the
        per-value loop did.

        Parameters
        ----------
        latencies_ms : numpy.ndarray
            End-to-end request latencies.
        outcomes : sequence of str, optional
            One :data:`OUTCOMES` class per latency (``"clean"``,
            ``"hedged"``, ``"degraded"``, ``"timed_out"``, ``"shed"``).
            Omitted means all clean — the pre-resilience behaviour, and
            bit-identical reports to it.
        """
        values = np.asarray(latencies_ms, dtype=np.float64).ravel()
        if values.size == 0:
            return []
        if outcomes is None:
            codes = np.zeros(values.size, dtype=np.int64)
        else:
            codes = np.asarray(
                [_OUTCOME_INDEX[o] for o in outcomes], dtype=np.int64
            )
            if codes.size != values.size:
                raise ValueError(
                    f"{codes.size} outcomes for {values.size} latencies"
                )
        totals = np.bincount(codes, minlength=len(OUTCOMES))
        if _REG.enabled:
            _LATENCY_MS.observe_many(values)
            _REQUESTS.add(values.size)
            _SLA_HEDGED.add(int(totals[1]))
            _SLA_DEGRADED.add(int(totals[2]))
            _SLA_TIMED_OUT.add(int(totals[3]))
            _SLA_SHED.add(int(totals[4]))
        buf = (
            np.concatenate((self._current, values))
            if self._current.size
            else values
        )
        code_buf = (
            np.concatenate((self._current_codes, codes))
            if self._current_codes.size
            else codes
        )
        w = self.window_requests
        n_complete = buf.size // w
        completed = [
            self._close_window(
                buf[i * w : (i + 1) * w], code_buf[i * w : (i + 1) * w]
            )
            for i in range(n_complete)
        ]
        self._current = buf[n_complete * w :].copy()
        self._current_codes = code_buf[n_complete * w :].copy()
        return completed

    def _close_window(
        self, samples: np.ndarray, codes: np.ndarray
    ) -> SLAReport:
        self._window_id += 1
        p99 = percentile(samples, 99)
        counts = np.bincount(codes, minlength=len(OUTCOMES))
        report = SLAReport(
            window_id=self._window_id,
            p50_ms=percentile(samples, 50),
            p95_ms=percentile(samples, 95),
            p99_ms=p99,
            violated=bool(p99 > self.p99_target_ms),
            num_requests=samples.size,
            num_clean=int(counts[0]),
            num_hedged=int(counts[1]),
            num_degraded=int(counts[2]),
            num_timed_out=int(counts[3]),
            num_shed=int(counts[4]),
        )
        self.reports.append(report)
        if _REG.enabled:
            _WINDOWS.inc()
            if report.violated:
                _VIOLATIONS.inc()
                _flight_recorder().record(
                    "serving.sla",
                    "violation",
                    f"window {report.window_id} p99 "
                    f"{report.p99_ms:.3f} ms > {self.p99_target_ms:.3f} ms",
                    window_id=report.window_id,
                    p99_ms=round(report.p99_ms, 6),
                    target_ms=self.p99_target_ms,
                    num_requests=report.num_requests,
                )
        return report

    def current_p99(self) -> float:
        """P99 of the in-progress window (or last closed one if empty)."""
        if self._current.size:
            return percentile(self._current, 99)
        if self.reports:
            return self.reports[-1].p99_ms
        return float("nan")

    @property
    def violation_rate(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.violated for r in self.reports) / len(self.reports)
