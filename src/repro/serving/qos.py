"""QoS / SLA monitoring for the serving path.

Tracks per-window latency percentiles against the paper's SLAs (P99 < 20 ms
end-to-end; < 10 ms GPU inference time in the evaluation's stress setting)
and provides the measurement window Algorithm 2 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.latency import percentile
from ..obs.metrics import registry as _obs_registry
from ..obs.recorder import flight_recorder as _flight_recorder

__all__ = ["SLAReport", "SLAMonitor"]

_REG = _obs_registry()
_LATENCY_MS = _REG.histogram(
    "serving.latency_ms",
    help="end-to-end request latency fed through SLAMonitor.observe",
    lo=1e-2,
    hi=1e5,
)
_REQUESTS = _REG.counter(
    "serving.requests", help="request latencies observed"
)
_WINDOWS = _REG.counter(
    "serving.sla.windows", help="monitoring windows closed"
)
_VIOLATIONS = _REG.counter(
    "serving.sla.violations", help="windows whose p99 broke the SLA target"
)


@dataclass
class SLAReport:
    """Latency summary of one monitoring window."""

    window_id: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    violated: bool
    num_requests: int


class SLAMonitor:
    """Sliding-window tail-latency monitor on the shared telemetry plane.

    Every observed latency array is folded into the process-wide
    ``serving.latency_ms`` :class:`~repro.obs.metrics.Histogram` (one
    ``observe_many`` pass) and the ``serving.*`` counters, so dashboards
    and exporters see the same stream the monitor does.  Per-window
    *reports* still compute their percentiles from the window's raw
    samples — count-based windowing needs the raw slice anyway, and it
    keeps report values bit-identical to the pre-telemetry monitor (a
    property pinned by ``tests/test_serving.py``).  SLA violations file
    a post-mortem event in the process flight recorder.

    Args:
        p99_target_ms: SLA threshold (paper stress setting: 10 ms).
        window_requests: samples per monitoring window.
    """

    def __init__(
        self, p99_target_ms: float = 10.0, window_requests: int = 5000
    ) -> None:
        if p99_target_ms <= 0:
            raise ValueError("SLA target must be positive")
        self.p99_target_ms = p99_target_ms
        self.window_requests = window_requests
        self._current = np.empty(0, dtype=np.float64)
        self.reports: list[SLAReport] = []
        self._window_id = 0

    def observe(self, latencies_ms: np.ndarray) -> list[SLAReport]:
        """Feed request latencies; returns any windows completed by them.

        The pending tail and the incoming burst are sliced into
        ``window_requests``-sized windows in one pass — each completed
        window still produces its own :class:`SLAReport`, exactly as the
        per-value loop did.
        """
        values = np.asarray(latencies_ms, dtype=np.float64).ravel()
        if values.size == 0:
            return []
        if _REG.enabled:
            _LATENCY_MS.observe_many(values)
            _REQUESTS.add(values.size)
        buf = (
            np.concatenate((self._current, values))
            if self._current.size
            else values
        )
        w = self.window_requests
        n_complete = buf.size // w
        completed = [
            self._close_window(buf[i * w : (i + 1) * w])
            for i in range(n_complete)
        ]
        self._current = buf[n_complete * w :].copy()
        return completed

    def _close_window(self, samples: np.ndarray) -> SLAReport:
        self._window_id += 1
        p99 = percentile(samples, 99)
        report = SLAReport(
            window_id=self._window_id,
            p50_ms=percentile(samples, 50),
            p95_ms=percentile(samples, 95),
            p99_ms=p99,
            violated=bool(p99 > self.p99_target_ms),
            num_requests=samples.size,
        )
        self.reports.append(report)
        if _REG.enabled:
            _WINDOWS.inc()
            if report.violated:
                _VIOLATIONS.inc()
                _flight_recorder().record(
                    "serving.sla",
                    "violation",
                    f"window {report.window_id} p99 "
                    f"{report.p99_ms:.3f} ms > {self.p99_target_ms:.3f} ms",
                    window_id=report.window_id,
                    p99_ms=round(report.p99_ms, 6),
                    target_ms=self.p99_target_ms,
                    num_requests=report.num_requests,
                )
        return report

    def current_p99(self) -> float:
        """P99 of the in-progress window (or last closed one if empty)."""
        if self._current.size:
            return percentile(self._current, 99)
        if self.reports:
            return self.reports[-1].p99_ms
        return float("nan")

    @property
    def violation_rate(self) -> float:
        if not self.reports:
            return 0.0
        return sum(r.violated for r in self.reports) / len(self.reports)
