"""Co-located serving: the node simulator behind the performance-isolation
experiments, plus SLA monitoring."""

from .engine import ColocatedNodeSimulator, NodeSimConfig, WindowResult
from .qos import SLAMonitor, SLAReport
from .router import ConsistentHashRouter, RouterStats

__all__ = [
    "ColocatedNodeSimulator",
    "NodeSimConfig",
    "WindowResult",
    "SLAMonitor",
    "ConsistentHashRouter",
    "RouterStats",
    "SLAReport",
]
