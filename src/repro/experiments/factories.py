"""Canonical strategy factories for the comparison experiments.

Each factory builds one of the evaluated configurations from Table III /
Fig. 15: the three baselines, fixed-rank LiveUpdate ablations, and the full
dynamic-rank LiveUpdate.
"""

from __future__ import annotations

from ..cluster.nodes import InferenceNode, TrainingCluster
from ..core.liveupdate import LiveUpdate, LiveUpdateConfig
from ..core.trainer import TrainerConfig
from ..strategies import DeltaUpdate, NoUpdate, QuickUpdate
from ..strategies.base import UpdateStrategy

__all__ = [
    "no_update",
    "delta_update",
    "quick_update",
    "live_update",
    "standard_lineup",
]


def no_update(trainer: TrainingCluster, node: InferenceNode) -> UpdateStrategy:
    """Stale baseline: the Day-1 checkpoint serves unchanged."""
    return NoUpdate()


def delta_update(
    trainer: TrainingCluster, node: InferenceNode
) -> UpdateStrategy:
    """Full periodic delta shipping (the paper's DeltaUpdate baseline)."""
    return DeltaUpdate(trainer, node)


def quick_update(alpha: float = 0.05):
    """Factory-of-factory so the top-percent is configurable."""

    def build(trainer: TrainingCluster, node: InferenceNode) -> UpdateStrategy:
        return QuickUpdate(trainer, node, alpha=alpha)

    return build


def live_update(
    rank: int | None = None,
    lr: float = 0.25,
    steps_per_slot: int = 6,
    alpha: float = 0.8,
):
    """LiveUpdate factory.

    Args:
        rank: fixed LoRA rank (``None`` = dynamic rank adaptation).
        lr: adapter learning rate.
        steps_per_slot: trainer cadence between windows.
        alpha: PCA variance threshold when dynamic.
    """

    def build(trainer: TrainingCluster, node: InferenceNode) -> UpdateStrategy:
        trainer_config = TrainerConfig(
            rank=rank if rank is not None else 4,
            dynamic_rank=rank is None,
            alpha=alpha,
            lr=lr,
        )
        return LiveUpdate(
            node,
            trainer_cluster=trainer,
            trainer_config=trainer_config,
            config=LiveUpdateConfig(steps_per_slot=steps_per_slot),
        )

    return build


def standard_lineup() -> dict[str, object]:
    """The Table III lineup keyed by the paper's row labels."""
    return {
        "DeltaUpdate": delta_update,
        "NoUpdate": no_update,
        "QuickUpdate-5%": quick_update(0.05),
        "QuickUpdate-10%": quick_update(0.10),
        "LiveUpdate-8": live_update(rank=8),
        "LiveUpdate-16/64": live_update(rank=16),
        "LiveUpdate": live_update(rank=None),
    }
