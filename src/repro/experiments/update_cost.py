"""Production-scale update-cost model (Fig. 14 and the Fig. 8 timelines).

At 50 TB scale, update costs are pure arithmetic over data volumes, link
bandwidths, and local compute throughput:

* **DeltaUpdate** moves every changed row: ``ratio(window) * model_bytes``
  over the inter-cluster link, once per window.
* **QuickUpdate** moves the top-``alpha`` slice of the model per window,
  plus an hourly full-parameter sync.
* **LiveUpdate** moves nothing between clusters; its cost is the local LoRA
  training time over the window's cached samples (plus the same hourly full
  sync, which the paper's Fig. 14 accounts separately and we expose).

The changed-row ratio follows the saturating-exponential fit of Fig. 3a:
about 10% of rows change in 10 minutes, approaching ~35% for long windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.network import GBE_100, NetworkLink
from ..cluster.timeline import UpdateTimeline, simulate_periodic_updates
from ..data.datasets import DatasetSpec

__all__ = [
    "update_ratio",
    "ProductionCostModel",
    "CostRow",
    "fig14_grid",
    "fig8_timelines",
]


def update_ratio(
    window_s: float, r_max: float = 0.35, tau_s: float = 1784.0
) -> float:
    """Fraction of EMT rows changed within a window (Fig. 3a fit).

    ``ratio(600 s) ~= 0.10`` and saturates at ``r_max``: rows repeat, so
    longer windows do not change proportionally more rows.
    """
    if window_s < 0:
        raise ValueError("window must be non-negative")
    return r_max * (1.0 - math.exp(-window_s / tau_s))


@dataclass
class CostRow:
    """One bar of Fig. 14: a (method, window) cost over a one-hour horizon."""

    method: str
    window_s: float
    updates_per_hour: int
    volume_bytes_per_update: float
    total_cost_s: float

    @property
    def total_cost_min(self) -> float:
        return self.total_cost_s / 60.0


@dataclass
class ProductionCostModel:
    """Cost calculator for one dataset at production scale.

    Attributes:
        spec: dataset (supplies ``embedding_bytes`` and ingest volume).
        link: inter-cluster network.
        quick_alpha: QuickUpdate's transfer fraction of its reference
            changed-parameter set.
        quick_reference_window_s: QuickUpdate sizes its per-update budget
            from the changed set of this reference window, so its hourly
            cost scales linearly with update frequency (the paper's stated
            behaviour) rather than tracking the per-window delta.
        lora_train_rate: fleet-aggregate samples/second the co-located LoRA
            trainers sustain on idle inference CPUs.
        sample_fraction_trained: fraction of the window's cached samples the
            LoRA trainer actually consumes (mini-batch subsampling).
    """

    spec: DatasetSpec
    link: NetworkLink = GBE_100
    quick_alpha: float = 0.05
    quick_reference_window_s: float = 900.0
    lora_train_rate: float = 4.5e5
    sample_fraction_trained: float = 0.06

    # ---------------------------------------------------------- per-update
    def delta_volume(self, window_s: float) -> float:
        return update_ratio(window_s) * self.spec.embedding_bytes

    def quick_volume(self, window_s: float) -> float:
        """QuickUpdate's per-update budget: top-alpha of the reference
        changed set, never more than the actual delta of the window."""
        budget = self.quick_alpha * self.delta_volume(
            self.quick_reference_window_s
        )
        return min(budget, self.delta_volume(window_s))

    def delta_update_seconds(self, window_s: float) -> float:
        return self.link.transfer_seconds(self.delta_volume(window_s))

    def quick_update_seconds(self, window_s: float) -> float:
        return self.link.transfer_seconds(self.quick_volume(window_s))

    def lora_update_seconds(self, window_s: float) -> float:
        """Local training time for one window's worth of cached samples."""
        samples = (
            self.spec.requests_per_5min
            * (window_s / 300.0)
            * self.sample_fraction_trained
        )
        return samples / self.lora_train_rate

    # ------------------------------------------------------------- per-hour
    def hourly_cost(self, method: str, window_s: float) -> CostRow:
        """Total update time accumulated over one hour (Fig. 14's y-axis)."""
        updates = int(3600.0 / window_s)
        if method == "NoUpdate":
            per_update, volume = 0.0, 0.0
        elif method == "DeltaUpdate":
            per_update = self.delta_update_seconds(window_s)
            volume = self.delta_volume(window_s)
        elif method == "QuickUpdate":
            per_update = self.quick_update_seconds(window_s)
            volume = self.quick_volume(window_s)
        elif method == "LiveUpdate":
            per_update = self.lora_update_seconds(window_s)
            volume = 0.0
        else:
            raise ValueError(f"unknown method {method!r}")
        return CostRow(
            method=method,
            window_s=window_s,
            updates_per_hour=updates,
            volume_bytes_per_update=volume,
            total_cost_s=per_update * updates,
        )


def fig14_grid(
    specs: list[DatasetSpec],
    windows_s: tuple[float, ...] = (1200.0, 600.0, 300.0),
    methods: tuple[str, ...] = (
        "NoUpdate",
        "DeltaUpdate",
        "QuickUpdate",
        "LiveUpdate",
    ),
    link: NetworkLink = GBE_100,
) -> dict[str, list[CostRow]]:
    """The full Fig. 14 grid: per dataset, methods x update frequencies."""
    out: dict[str, list[CostRow]] = {}
    for spec in specs:
        model = ProductionCostModel(spec=spec, link=link)
        rows = [
            model.hourly_cost(method, w) for w in windows_s for method in methods
        ]
        out[spec.name] = rows
    return out


def fig8_timelines(
    spec: DatasetSpec,
    horizon_s: float = 3600.0,
    link: NetworkLink = GBE_100,
) -> dict[str, UpdateTimeline]:
    """The Fig. 8 update timelines of the three methods.

    DeltaUpdate attempts 15-minute updates but each transfer takes so long
    that updates serialize; QuickUpdate lands every ~6 minutes; LiveUpdate
    applies LoRA updates every ~3 minutes with sub-second latency.
    """
    model = ProductionCostModel(spec=spec, link=link)
    delta = simulate_periodic_updates(
        horizon_s,
        interval_s=900.0,
        update_duration_s=model.delta_update_seconds(900.0),
        kind="delta",
        volume_bytes=model.delta_volume(900.0),
    )
    quick = simulate_periodic_updates(
        horizon_s,
        interval_s=360.0,
        update_duration_s=model.quick_update_seconds(360.0),
        kind="delta",
        volume_bytes=model.quick_volume(360.0),
    )
    live = simulate_periodic_updates(
        horizon_s,
        interval_s=180.0,
        update_duration_s=model.lora_update_seconds(180.0) / 60.0,
        kind="lora",
    )
    return {"DeltaUpdate": delta, "QuickUpdate": quick, "LiveUpdate": live}
