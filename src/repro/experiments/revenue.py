"""Revenue-impact translation of AUC improvements.

Section V-C: industry studies (ByteDance, Tencent) find that 0.03-0.07%
AUC gains translate to 0.4-2.4% revenue; the paper scales LiveUpdate's
0.04-0.24% AUC gains to a projected +1.60-4.11% revenue.  This module
implements that conversion so accuracy results can be reported in the
paper's business terms.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RevenueModel", "PAPER_CONVERSION"]


@dataclass(frozen=True)
class RevenueModel:
    """Linear AUC-to-revenue conversion calibrated on industry reports.

    Attributes:
        revenue_per_auc_point: % revenue change per +1.00 percentage point
            of AUC.  The paper's cited band (0.03-0.07% AUC -> 0.4-2.4%
            revenue) corresponds to roughly 13-34 %/pp; the default uses
            the midpoint of the conversions implied by the paper's own
            projection (+0.04..0.24 pp -> +1.60..4.11%).
        annual_revenue_usd: business scale for absolute projections.
    """

    revenue_per_auc_point: float = 20.0
    annual_revenue_usd: float = 1e9

    def revenue_change_pct(self, auc_delta_pp: float) -> float:
        """% revenue change from an AUC delta in percentage points."""
        return self.revenue_per_auc_point * auc_delta_pp

    def revenue_change_usd(self, auc_delta_pp: float) -> float:
        return self.annual_revenue_usd * self.revenue_change_pct(auc_delta_pp) / 100.0

    @classmethod
    def from_calibration(
        cls,
        auc_gain_pp: float,
        revenue_gain_pct: float,
        annual_revenue_usd: float = 1e9,
    ) -> "RevenueModel":
        """Fit the conversion from one published (AUC, revenue) pair."""
        if auc_gain_pp <= 0:
            raise ValueError("calibration AUC gain must be positive")
        return cls(
            revenue_per_auc_point=revenue_gain_pct / auc_gain_pp,
            annual_revenue_usd=annual_revenue_usd,
        )


#: Conversion implied by the paper's own numbers: +0.24 pp AUC -> +4.11%
#: revenue at the top of the band.
PAPER_CONVERSION = RevenueModel.from_calibration(
    auc_gain_pp=0.24, revenue_gain_pct=4.11
)
