"""Gradient low-rank structure analysis (Fig. 6, O2 of the paper).

Trains a DLRM on the live stream, snapshots per-table gradient matrices at
intervals, and reports the cumulative PCA variance curves — reproducing the
observation that a handful of principal components capture >=80% of gradient
variance, with per-table spread (Fig. 6a smallest vs Fig. 6b largest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rank_adaptation import cumulative_variance, rank_for_variance
from ..dlrm.optim import RowwiseAdagrad
from .accuracy import AccuracyConfig, build_pretrained_world

__all__ = ["GradientSpectrum", "collect_gradient_spectra", "spread_extremes"]


@dataclass
class GradientSpectrum:
    """Cumulative variance curves of one table across training iterations."""

    table: int
    curves: list[np.ndarray]          # one per snapshot iteration
    ranks_at_alpha: list[int]         # Eq. 2 rank per snapshot

    @property
    def mean_rank(self) -> float:
        return float(np.mean(self.ranks_at_alpha))

    @property
    def rank_spread(self) -> int:
        """Spread between snapshots (Fig. 6's per-table variability)."""
        return max(self.ranks_at_alpha) - min(self.ranks_at_alpha)

    def mean_curve(self) -> np.ndarray:
        length = min(len(c) for c in self.curves)
        return np.mean([c[:length] for c in self.curves], axis=0)


def collect_gradient_spectra(
    config: AccuracyConfig | None = None,
    snapshots: int = 6,
    steps_per_snapshot: int = 20,
    alpha: float = 0.8,
) -> list[GradientSpectrum]:
    """Train on the stream, snapshotting gradient PCA curves per table."""
    config = config or AccuracyConfig()
    stream, model = build_pretrained_world(config)
    opt = RowwiseAdagrad(lr=config.train_lr)
    num_tables = len(model.embeddings)
    curves: list[list[np.ndarray]] = [[] for _ in range(num_tables)]
    ranks: list[list[int]] = [[] for _ in range(num_tables)]
    for _ in range(snapshots):
        grads_acc: list[list[np.ndarray]] = [[] for _ in range(num_tables)]
        for _ in range(steps_per_snapshot):
            batch = stream.next_batch(config.train_batch, duration_s=5.0)
            result = model.train_step(
                batch.dense, batch.sparse_ids, batch.labels, opt
            )
            for f, grad in enumerate(result.embedding_grads):
                grads_acc[f].append(grad.rows)
        for f in range(num_tables):
            matrix = np.concatenate(grads_acc[f], axis=0)
            curves[f].append(cumulative_variance(matrix))
            ranks[f].append(rank_for_variance(matrix, alpha))
    return [
        GradientSpectrum(table=f, curves=curves[f], ranks_at_alpha=ranks[f])
        for f in range(num_tables)
    ]


def spread_extremes(
    spectra: list[GradientSpectrum],
) -> tuple[GradientSpectrum, GradientSpectrum]:
    """The (smallest-spread, largest-spread) tables, as plotted in Fig. 6."""
    ordered = sorted(spectra, key=lambda s: s.rank_spread)
    return ordered[0], ordered[-1]
