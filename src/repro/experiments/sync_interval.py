"""LoRA sync-interval sensitivity (Fig. 9) and scalability (Fig. 19).

Fig. 9: multiple inference nodes train LoRA replicas on disjoint traffic
shards; syncing less often leaves each replica blind to the others' updates,
opening an accuracy gap versus a tightly synchronized fleet.

Fig. 19: synchronization time versus node count under the tree AllGather
cost model, with the paper's log-trend projection to 48 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.collectives import CollectiveCostModel, fit_log_trend
from ..cluster.network import INFINIBAND_EDR
from ..core.sync import SparseLoRASynchronizer
from ..core.trainer import LoRATrainer, TrainerConfig
from ..data.stream import InferenceLogBuffer
from ..dlrm.metrics import auc_roc
from .accuracy import AccuracyConfig, build_pretrained_world

__all__ = [
    "SyncIntervalResult",
    "sync_interval_sweep",
    "ScalabilityPoint",
    "scalability_curve",
]


@dataclass
class SyncIntervalResult:
    """Mean fleet AUC under one synchronization interval."""

    sync_interval: int
    mean_auc: float
    sync_rounds: int
    total_sync_seconds: float


def _fleet_auc(sync: SparseLoRASynchronizer, stream, eval_batch: int) -> float:
    """Average per-rank AUC on the shared (local) evaluation stream."""
    ev = stream.next_batch(eval_batch, local=True)
    aucs = []
    for trainer in sync.trainers:
        probs = trainer.model.predict(
            ev.dense, ev.sparse_ids, overlay=trainer.overlay()
        )
        aucs.append(auc_roc(ev.labels, probs))
    return float(np.mean(aucs))


def sync_interval_sweep(
    intervals: tuple[int, ...] = (4, 16, 64, 256),
    num_ranks: int = 4,
    total_steps: int = 256,
    config: AccuracyConfig | None = None,
    trainer_lr: float = 0.25,
) -> list[SyncIntervalResult]:
    """Fig. 9: accuracy gap as a function of the LoRA sync interval.

    Each rank trains on its own slice of traffic (disjoint batches), so a
    rank only learns about ids it served — until a sync round shares them.
    """
    config = config or AccuracyConfig()
    results: list[SyncIntervalResult] = []
    for interval in intervals:
        stream, base_model = build_pretrained_world(config)
        trainers = []
        for r in range(num_ranks):
            buf = InferenceLogBuffer(retention_s=600.0)
            trainers.append(
                LoRATrainer(
                    base_model.copy(),
                    buf,
                    TrainerConfig(
                        rank=8,
                        lr=trainer_lr,
                        dynamic_rank=False,
                        dynamic_prune=False,
                        seed=r,
                    ),
                )
            )
        sync = SparseLoRASynchronizer(trainers, sync_interval=interval)
        for step in range(total_steps):
            batches = []
            for _ in range(num_ranks):
                b = stream.next_batch(128, local=True)
                batches.append((b.dense, b.sparse_ids, b.labels))
            sync.step_all(batches)
            stream.advance(5.0)
        results.append(
            SyncIntervalResult(
                sync_interval=interval,
                mean_auc=_fleet_auc(sync, stream, eval_batch=4000),
                sync_rounds=sync.rounds,
                total_sync_seconds=sum(r.total_seconds for r in sync.reports),
            )
        )
    return results


@dataclass
class ScalabilityPoint:
    """Sync time at one cluster size (Fig. 19)."""

    num_nodes: int
    sync_seconds: float
    projected: bool


def scalability_curve(
    measured_nodes: tuple[int, ...] = (2, 4, 8, 16),
    projected_nodes: tuple[int, ...] = (24, 32, 48),
    merged_bytes: float = 2.0 * 1024 ** 3,
    syncs_per_window: int = 60,
) -> list[ScalabilityPoint]:
    """Fig. 19: merging-tree sync time vs node count + log projection.

    ``merged_bytes`` is the deduplicated LoRA delta exchanged per sync (the
    hot-id overlap across replicas keeps it roughly node-count-independent);
    the per-window training time includes ``syncs_per_window`` sync rounds.
    """
    cost = CollectiveCostModel(INFINIBAND_EDR)
    points = [
        ScalabilityPoint(
            num_nodes=n,
            sync_seconds=syncs_per_window * cost.tree_merge(n, merged_bytes),
            projected=False,
        )
        for n in measured_nodes
    ]
    xs = np.array(measured_nodes, dtype=float)
    ys = np.array([p.sync_seconds for p in points])
    intercept, slope = fit_log_trend(xs, ys)
    for n in projected_nodes:
        points.append(
            ScalabilityPoint(
                num_nodes=n,
                sync_seconds=intercept + slope * np.log2(n),
                projected=True,
            )
        )
    return points
