"""CPU utilisation and power experiments (Fig. 4, Fig. 5, Fig. 18).

These run entirely on the hardware substrate's power/load models: a diurnal
serving-load trace with peak CPU utilisation ~20% (Fig. 4), the modest power
delta of co-locating the trainer (Fig. 5 / 18a), and the utilisation uplift
of LiveUpdate converting idle cycles into training work (Fig. 18b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.power import CPUPowerModel, DiurnalLoadTrace, UtilizationSample
from ..serving.engine import WindowResult

__all__ = [
    "DayProfile",
    "simulate_day_profile",
    "PowerComparison",
    "power_comparison",
    "WindowUtilization",
    "utilization_from_windows",
]


@dataclass
class DayProfile:
    """One 24-hour utilisation/power trace."""

    label: str
    samples: list[UtilizationSample]

    @property
    def peak_utilization(self) -> float:
        return max(s.utilization for s in self.samples)

    @property
    def mean_utilization(self) -> float:
        return float(np.mean([s.utilization for s in self.samples]))

    @property
    def mean_power_w(self) -> float:
        return float(np.mean([s.power_w for s in self.samples]))

    @property
    def energy_kwh(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        interval_h = (self.samples[1].time_s - self.samples[0].time_s) / 3600.0
        return sum(s.power_w for s in self.samples) * interval_h / 1000.0


def simulate_day_profile(
    extra_utilization: float = 0.0,
    label: str = "inference-only",
    peak_utilization: float = 0.20,
    interval_s: float = 300.0,
    seed: int = 0,
) -> DayProfile:
    """Fig. 4 (extra=0) and Fig. 18b (extra=trainer load) day traces."""
    trace = DiurnalLoadTrace(peak_utilization=peak_utilization, seed=seed)
    power = CPUPowerModel()
    samples = trace.sample_day(
        interval_s=interval_s,
        power_model=power,
        extra_utilization=extra_utilization,
    )
    return DayProfile(label=label, samples=samples)


@dataclass
class PowerComparison:
    """Fig. 5 / Fig. 18a: inference-only vs co-located power."""

    inference_only: DayProfile
    colocated: DayProfile

    @property
    def mean_power_increase(self) -> float:
        """Fractional mean power increase from co-located training."""
        base = self.inference_only.mean_power_w
        return (self.colocated.mean_power_w - base) / base

    @property
    def peak_power_increase(self) -> float:
        peak_base = max(s.power_w for s in self.inference_only.samples)
        peak_co = max(s.power_w for s in self.colocated.samples)
        return (peak_co - peak_base) / peak_base


@dataclass
class WindowUtilization:
    """Memory-path utilisation summarised over simulated serving windows.

    The serving-window engine emits one :class:`~repro.serving.engine.
    WindowResult` per window; this aggregates the resource-side view the
    utilisation experiments care about — how hard the contended DRAM path
    runs and how the tail behaves while it does.
    """

    windows: int
    mean_memory_utilization: float
    peak_memory_utilization: float
    mean_traffic_gbps: float
    worst_p99_ms: float
    total_accesses: int

    @property
    def headroom(self) -> float:
        """Remaining fraction of the memory path at the mean operating point."""
        return 1.0 - self.mean_memory_utilization


def utilization_from_windows(results: list[WindowResult]) -> WindowUtilization:
    """Fold serving-window results into one utilisation summary.

    Used by the Fig. 18 bench to report the DRAM-side cost of harvesting
    idle cycles, and by :func:`repro.experiments.memory.bandwidth_pressure`
    for the Fig. 10 headroom argument.
    """
    if not results:
        raise ValueError("need at least one window result")
    utils = np.array([r.memory_utilization for r in results])
    return WindowUtilization(
        windows=len(results),
        mean_memory_utilization=float(utils.mean()),
        peak_memory_utilization=float(utils.max()),
        mean_traffic_gbps=float(
            np.mean([r.memory_traffic_gbps for r in results])
        ),
        worst_p99_ms=float(max(r.p99_ms for r in results)),
        total_accesses=sum(
            r.inference_accesses + r.training_accesses for r in results
        ),
    )


def power_comparison(
    trainer_utilization: float = 0.10, seed: int = 0
) -> PowerComparison:
    """Build the before/after power comparison of Fig. 5.

    The paper measures ~20% higher CPU power when the LoRA trainer runs
    alongside inference; ``trainer_utilization`` is the extra CPU load the
    trainer contributes (idle cycles put to work).
    """
    return PowerComparison(
        inference_only=simulate_day_profile(0.0, "inference-only", seed=seed),
        colocated=simulate_day_profile(
            trainer_utilization, "inference+training", seed=seed
        ),
    )
