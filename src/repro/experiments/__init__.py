"""Experiment drivers: one module per paper figure/table family.

* :mod:`.accuracy` — Table III, Fig. 15 (and the shared serving harness)
* :mod:`.factories` — canonical strategy lineup
* :mod:`.update_cost` — Fig. 14, Fig. 8
* :mod:`.freshness` — Fig. 3a, Fig. 3b, Fig. 12
* :mod:`.utilization` — Fig. 4, Fig. 5, Fig. 18
* :mod:`.lowrank` — Fig. 6
* :mod:`.memory` — Fig. 17
* :mod:`.sync_interval` — Fig. 9, Fig. 19
"""

from .accuracy import (
    AccuracyConfig,
    StrategyRun,
    TimelinePoint,
    auc_improvement_table,
    build_pretrained_world,
    run_comparison,
    run_strategy,
)
from .factories import (
    delta_update,
    live_update,
    no_update,
    quick_update,
    standard_lineup,
)
from .freshness import (
    DecayPoint,
    UpdateRatioPoint,
    access_distribution,
    measure_update_ratio,
    staleness_decay_curve,
)
from .lowrank import GradientSpectrum, collect_gradient_spectra, spread_extremes
from .memory import MemoryFootprint, measure_memory_footprints
from .sync_interval import (
    ScalabilityPoint,
    SyncIntervalResult,
    scalability_curve,
    sync_interval_sweep,
)
from .revenue import PAPER_CONVERSION, RevenueModel
from .update_cost import (
    CostRow,
    ProductionCostModel,
    fig8_timelines,
    fig14_grid,
    update_ratio,
)
from .utilization import (
    DayProfile,
    PowerComparison,
    power_comparison,
    simulate_day_profile,
)

__all__ = [
    "AccuracyConfig",
    "StrategyRun",
    "TimelinePoint",
    "build_pretrained_world",
    "run_strategy",
    "run_comparison",
    "auc_improvement_table",
    "no_update",
    "delta_update",
    "quick_update",
    "live_update",
    "standard_lineup",
    "update_ratio",
    "ProductionCostModel",
    "CostRow",
    "fig14_grid",
    "fig8_timelines",
    "UpdateRatioPoint",
    "measure_update_ratio",
    "DecayPoint",
    "staleness_decay_curve",
    "access_distribution",
    "GradientSpectrum",
    "collect_gradient_spectra",
    "spread_extremes",
    "MemoryFootprint",
    "measure_memory_footprints",
    "SyncIntervalResult",
    "sync_interval_sweep",
    "ScalabilityPoint",
    "scalability_curve",
    "DayProfile",
    "simulate_day_profile",
    "PowerComparison",
    "power_comparison",
    "RevenueModel",
    "PAPER_CONVERSION",
]
