"""Accuracy-timeline experiment harness (Table III, Fig. 15, Fig. 3b).

Drives all update strategies through an identical simulated serving horizon:

* a *training cluster* trains its replica on every fresh batch;
* an *inference node* serves traffic with (possibly stale) parameters;
* every ``slot_s`` seconds the world drifts and one serve/train round runs;
* every ``update_interval_s`` the strategy performs its update action;
* every ``full_sync_interval_s`` the hourly full-parameter re-anchor fires.

Because each strategy is driven by a freshly seeded but identically
sequenced stream, the served/evaluated batches are bit-identical across
strategies — AUC differences are attributable to the update policy alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cluster.nodes import InferenceNode, TrainingCluster
from ..cluster.shardstore import ShardedParameterStore
from ..data.synthetic import DriftingCTRStream, StreamConfig
from ..dlrm.metrics import auc_roc
from ..dlrm.model import DLRM, DLRMConfig
from ..dlrm.optim import RowwiseAdagrad
from ..strategies.base import UpdateStrategy

__all__ = [
    "AccuracyConfig",
    "TimelinePoint",
    "StrategyRun",
    "build_pretrained_world",
    "run_strategy",
    "run_comparison",
    "auc_improvement_table",
]


@dataclass
class AccuracyConfig:
    """Shared settings of one accuracy experiment.

    Defaults give a ~1-hour horizon with 10-minute update windows, matching
    Table III's setup; Fig. 15 uses a 2-hour horizon with 5-minute windows.
    """

    table_sizes: tuple[int, ...] = (2000, 2000, 1000)
    num_dense: int = 4
    embedding_dim: int = 16
    bottom_mlp: tuple[int, ...] = (32,)
    top_mlp: tuple[int, ...] = (64, 32)
    horizon_s: float = 3600.0
    slot_s: float = 30.0
    update_interval_s: float = 600.0
    full_sync_interval_s: float = 3600.0
    pretrain_steps: int = 300
    train_batch: int = 256
    serve_batch: int = 512
    eval_window: int = 6     # slots per sliding AUC window
    train_lr: float = 0.05
    seed: int = 0
    num_shards: int = 8      # parameter-plane shards
    stream_overrides: dict = field(default_factory=dict)


@dataclass
class TimelinePoint:
    """One sliding-window AUC observation."""

    time_s: float
    auc: float


@dataclass
class StrategyRun:
    """Complete result of one strategy over the horizon."""

    name: str
    timeline: list[TimelinePoint]
    mean_auc: float
    update_seconds: float
    bytes_moved: float

    def mean_auc_after(self, t0: float) -> float:
        vals = [p.auc for p in self.timeline if p.time_s >= t0 and not np.isnan(p.auc)]
        return float(np.mean(vals)) if vals else float("nan")


def _make_stream(config: AccuracyConfig) -> DriftingCTRStream:
    return DriftingCTRStream(
        StreamConfig(
            table_sizes=config.table_sizes,
            num_dense=config.num_dense,
            seed=config.seed,
            **config.stream_overrides,
        )
    )


def _make_model(config: AccuracyConfig, seed_offset: int = 0) -> DLRM:
    return DLRM(
        DLRMConfig(
            num_dense=config.num_dense,
            embedding_dim=config.embedding_dim,
            table_sizes=config.table_sizes,
            bottom_mlp=config.bottom_mlp,
            top_mlp=config.top_mlp,
            seed=config.seed + seed_offset,
        )
    )


def build_pretrained_world(
    config: AccuracyConfig,
) -> tuple[DriftingCTRStream, DLRM]:
    """Pretrain the Day-1 checkpoint all strategies start from.

    Returns a stream positioned at the end of pre-training and the trained
    model (the shared "model version 0" of Fig. 8).
    """
    stream = _make_stream(config)
    model = _make_model(config)
    opt = RowwiseAdagrad(lr=config.train_lr)
    for _ in range(config.pretrain_steps):
        batch = stream.next_batch(config.train_batch, duration_s=1.0)
        model.train_step(batch.dense, batch.sparse_ids, batch.labels, opt)
    for table in model.embeddings:
        table.reset_touched()
    return stream, model


# A strategy factory receives the freshly built actors and returns the
# strategy to exercise.
StrategyFactory = Callable[[TrainingCluster, InferenceNode], UpdateStrategy]


def run_strategy(
    config: AccuracyConfig, factory: StrategyFactory
) -> StrategyRun:
    """Run one strategy over the full horizon.

    The world (stream + Day-1 model) is rebuilt from the config seed, so
    every strategy sees the same data in the same order.
    """
    stream, base_model = build_pretrained_world(config)
    server = ShardedParameterStore(
        num_shards=config.num_shards,
        row_bytes=config.embedding_dim * 8,
        row_dim=config.embedding_dim,
    )
    trainer_cluster = TrainingCluster(
        base_model.copy(), server, lr=config.train_lr
    )
    node = InferenceNode(base_model.copy(), server)
    strategy = factory(trainer_cluster, node)

    slots = int(config.horizon_s / config.slot_s)
    slots_per_update = max(1, int(config.update_interval_s / config.slot_s))
    slots_per_full = max(1, int(config.full_sync_interval_s / config.slot_s))
    window_labels: list[np.ndarray] = []
    window_scores: list[np.ndarray] = []
    timeline: list[TimelinePoint] = []

    for slot in range(1, slots + 1):
        now = slot * config.slot_s
        # The training cluster ingests the freshest *global* interactions.
        train_batch = stream.next_batch(config.train_batch)
        trainer_cluster.train_on(train_batch)
        # The node serves (and is scored on) its local traffic shard.
        serve_batch = stream.next_batch(config.serve_batch, local=True)
        probs = node.predict(serve_batch, overlay=strategy.overlay())
        strategy.on_serving_batch(serve_batch)
        window_labels.append(serve_batch.labels)
        window_scores.append(probs)
        if len(window_labels) > config.eval_window:
            window_labels.pop(0)
            window_scores.pop(0)
        auc = auc_roc(
            np.concatenate(window_labels), np.concatenate(window_scores)
        )
        timeline.append(TimelinePoint(time_s=now, auc=auc))
        strategy.on_slot(now)
        stream.advance(config.slot_s)
        if slot % slots_per_update == 0:
            strategy.on_update_window(now)
        if slot % slots_per_full == 0 and slot != slots:
            strategy.on_full_sync(now)

    valid = [p.auc for p in timeline if not np.isnan(p.auc)]
    return StrategyRun(
        name=strategy.name,
        timeline=timeline,
        mean_auc=float(np.mean(valid)) if valid else float("nan"),
        update_seconds=strategy.total_update_seconds,
        bytes_moved=strategy.total_bytes_moved,
    )


def run_comparison(
    config: AccuracyConfig, factories: dict[str, StrategyFactory]
) -> dict[str, StrategyRun]:
    """Run several strategies under identical conditions."""
    return {name: run_strategy(config, f) for name, f in factories.items()}


def auc_improvement_table(
    runs: dict[str, StrategyRun], baseline: str = "DeltaUpdate"
) -> dict[str, float]:
    """Mean-AUC delta versus the baseline, in percentage points (Table III)."""
    if baseline not in runs:
        raise KeyError(f"baseline {baseline!r} missing from runs")
    base = runs[baseline].mean_auc
    return {
        name: (run.mean_auc - base) * 100.0 for name, run in runs.items()
    }
