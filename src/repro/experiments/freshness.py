"""Freshness characterisation experiments (Fig. 3a, Fig. 3b, Fig. 12).

* :func:`measure_update_ratio` trains a model over N-minute windows and
  reports the fraction of embedding rows touched per window (Fig. 3a).
* :func:`staleness_decay_curve` freezes a trained model and measures AUC as
  the world drifts, with optional periodic refreshes to show the sharp
  recovery of Fig. 3b.
* :func:`access_distribution` produces the access CDF of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.synthetic import DriftingCTRStream
from ..data.zipf import access_cdf
from ..dlrm.metrics import auc_roc
from ..dlrm.optim import RowwiseAdagrad
from .accuracy import AccuracyConfig, build_pretrained_world

__all__ = [
    "UpdateRatioPoint",
    "measure_update_ratio",
    "DecayPoint",
    "staleness_decay_curve",
    "access_distribution",
    "CacheChurnPoint",
    "cache_churn_profile",
]


@dataclass
class UpdateRatioPoint:
    """Fraction of embedding rows updated within one training window."""

    window_minutes: float
    window_index: int
    updated_fraction: float


def measure_update_ratio(
    config: AccuracyConfig | None = None,
    window_minutes: tuple[float, ...] = (10.0, 30.0, 60.0),
    windows_per_setting: int = 4,
    batches_per_minute: int = 2,
) -> list[UpdateRatioPoint]:
    """Fig. 3a: % of EMT rows changed over 10/30/60-minute windows."""
    config = config or AccuracyConfig()
    out: list[UpdateRatioPoint] = []
    for minutes in window_minutes:
        stream, model = build_pretrained_world(config)
        opt = RowwiseAdagrad(lr=config.train_lr)
        for w in range(windows_per_setting):
            for table in model.embeddings:
                table.reset_touched()
            num_batches = int(minutes * batches_per_minute)
            for _ in range(num_batches):
                batch = stream.next_batch(
                    config.train_batch, duration_s=60.0 / batches_per_minute
                )
                model.train_step(batch.dense, batch.sparse_ids, batch.labels, opt)
            out.append(
                UpdateRatioPoint(
                    window_minutes=minutes,
                    window_index=w,
                    updated_fraction=model.embeddings.touched_fraction(),
                )
            )
    return out


@dataclass
class DecayPoint:
    """AUC at a given staleness age."""

    minutes_stale: float
    auc: float
    refreshed: bool


def staleness_decay_curve(
    config: AccuracyConfig | None = None,
    horizon_minutes: float = 60.0,
    step_minutes: float = 5.0,
    refresh_every_minutes: float | None = None,
    eval_batch: int = 4000,
    eval_repeats: int = 3,
) -> list[DecayPoint]:
    """Fig. 3b: AUC decay under staleness, with optional refresh recovery.

    With ``refresh_every_minutes`` set, a shadow model trains continuously
    and the serving model adopts it at each refresh — producing the sawtooth
    recovery the paper shows at update points.
    """
    config = config or AccuracyConfig()
    stream, model = build_pretrained_world(config)
    shadow = model.copy()
    opt = RowwiseAdagrad(lr=config.train_lr)
    out: list[DecayPoint] = []
    steps = int(horizon_minutes / step_minutes)
    for i in range(1, steps + 1):
        # World drifts; the shadow trainer keeps up.
        batches = max(1, int(step_minutes))
        for _ in range(batches):
            batch = stream.next_batch(
                config.train_batch, duration_s=step_minutes * 60.0 / batches
            )
            shadow.train_step(batch.dense, batch.sparse_ids, batch.labels, opt)
        refreshed = False
        if refresh_every_minutes is not None:
            elapsed = i * step_minutes
            if elapsed % refresh_every_minutes < step_minutes * 0.5:
                model.load_state_dict(shadow.state_dict())
                refreshed = True
        aucs = []
        for _ in range(eval_repeats):
            ev = stream.eval_batch(eval_batch)
            aucs.append(auc_roc(ev.labels, model.predict(ev.dense, ev.sparse_ids)))
        out.append(
            DecayPoint(
                minutes_stale=i * step_minutes,
                auc=float(np.mean(aucs)),
                refreshed=refreshed,
            )
        )
    return out


@dataclass
class CacheChurnPoint:
    """Hot-set freshness of one serving window under co-location.

    Staleness has a serving-side cost too: every trainer write that lands
    next to the server displaces L3 lines the hot set would have reused.
    ``evictions_per_access`` is that churn, normalised so windows of
    different sizes compare.
    """

    window_index: int
    inference_hit_ratio: float
    training_hit_ratio: float
    evictions_per_access: float


def cache_churn_profile(
    sim=None, windows: int = 4, config=None
) -> list[CacheChurnPoint]:
    """Run consecutive co-located windows and report the hot set's churn.

    Consumes :class:`repro.serving.engine.WindowResult` directly.  Uses
    the exact-LRU cache policy because eviction accounting is only defined
    there (the default interval policy expires entries implicitly).

    Args:
        sim: an existing :class:`~repro.serving.engine.
            ColocatedNodeSimulator`; one is built from ``config`` when
            omitted.
        windows: how many consecutive windows to simulate.
        config: ``NodeSimConfig`` overrides for the built simulator.
    """
    from dataclasses import replace

    from ..serving.engine import ColocatedNodeSimulator, NodeSimConfig

    if sim is None:
        cfg = config or NodeSimConfig(
            num_rows=20_000,
            accesses_per_window=10_000,
            training_ratio=4.0,
            l3_bytes_per_ccd=int(0.025 * 1024 ** 2),
        )
        # Copy rather than mutate: the caller's config keeps its policy.
        sim = ColocatedNodeSimulator(replace(cfg, cache_policy="lru"))
    elif sim.config.cache_policy != "lru":
        raise ValueError(
            "cache_churn_profile needs cache_policy='lru': the interval "
            "policy expires entries implicitly and reports no evictions"
        )
    out: list[CacheChurnPoint] = []
    for w in range(windows):
        result = sim.run_colocated_full()
        accesses = max(
            1, result.inference_accesses + result.training_accesses
        )
        out.append(
            CacheChurnPoint(
                window_index=w,
                inference_hit_ratio=result.inference_hit_ratio,
                training_hit_ratio=result.training_hit_ratio,
                evictions_per_access=result.cache_evictions / accesses,
            )
        )
    return out


def access_distribution(
    stream: DriftingCTRStream | None = None,
    field: int = 0,
    num_samples: int = 200_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 12: CDF of embedding accesses vs fraction of sorted indices."""
    if stream is None:
        config = AccuracyConfig()
        stream, _ = build_pretrained_world(config)
    counts = stream.access_counts(field, num_samples=num_samples)
    return access_cdf(counts)
