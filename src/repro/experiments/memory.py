"""Memory-optimization effectiveness (Fig. 17) and adapter footprints.

Compares the LoRA memory footprint under three configurations:

* **Fixed Rank** — rank 16/64-style adapters with a full-length table
  (every vocabulary row gets a slot): the baseline.
* **+ Dynamic Rank** — rank chosen by PCA (Eq. 2), table still full-length:
  the paper measures 80-89% savings from this step alone.
* **+ Pruning** — rank adaptation plus usage-based pruning (Algorithm 1):
  total savings reach 97-99%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.stream import InferenceLogBuffer
from ..core.trainer import LoRATrainer, TrainerConfig
from ..serving.engine import WindowResult
from .accuracy import AccuracyConfig, build_pretrained_world

__all__ = [
    "MemoryFootprint",
    "measure_memory_footprints",
    "BandwidthPressure",
    "bandwidth_pressure",
]


@dataclass
class MemoryFootprint:
    """Adapter bytes under one configuration."""

    label: str
    adapter_bytes: int
    base_bytes: int

    @property
    def fraction_of_base(self) -> float:
        return self.adapter_bytes / self.base_bytes

    def savings_vs(self, other: "MemoryFootprint") -> float:
        """Fractional reduction relative to another configuration."""
        return 1.0 - self.adapter_bytes / other.adapter_bytes


@dataclass
class BandwidthPressure:
    """Fig. 10's DRAM-pressure view of one serving-window configuration."""

    label: str
    traffic_gbps: float
    utilization: float
    p99_ms: float

    @classmethod
    def from_window(cls, label: str, result: WindowResult) -> "BandwidthPressure":
        return cls(
            label=label,
            traffic_gbps=result.memory_traffic_gbps,
            utilization=result.memory_utilization,
            p99_ms=result.p99_ms,
        )


def bandwidth_pressure(
    results: dict[str, WindowResult]
) -> list[BandwidthPressure]:
    """Summarise serving windows for the Fig. 10 headroom argument.

    The point of Fig. 10 is that inference alone leaves DRAM bandwidth
    headroom and even naive co-location does not saturate the channels —
    the latency damage is queueing and cache contention.  The returned
    rows carry exactly the three observables that argument needs, in the
    order the windows were given.
    """
    return [
        BandwidthPressure.from_window(label, result)
        for label, result in results.items()
    ]


def _train_trainer(
    config: AccuracyConfig, trainer_config: TrainerConfig, slots: int = 40
) -> LoRATrainer:
    stream, model = build_pretrained_world(config)
    buffer = InferenceLogBuffer(retention_s=600.0)
    trainer = LoRATrainer(model, buffer, trainer_config)
    for _ in range(slots):
        buffer.append(stream.next_batch(512, local=True))
        for _ in range(4):
            trainer.train_step()
        stream.advance(30.0)
    return trainer


def measure_memory_footprints(
    config: AccuracyConfig | None = None,
    fixed_rank: int = 16,
    slots: int = 40,
) -> list[MemoryFootprint]:
    """Run the three Fig. 17 configurations and report adapter footprints."""
    config = config or AccuracyConfig()
    base_bytes = None
    results: list[MemoryFootprint] = []

    fixed = _train_trainer(
        config,
        TrainerConfig(
            rank=fixed_rank,
            dynamic_rank=False,
            dynamic_prune=False,
            capacity_fraction=1.0,  # a slot for every row: the naive layout
        ),
        slots=slots,
    )
    base_bytes = fixed.model.embedding_bytes
    results.append(
        MemoryFootprint("Fixed Rank", fixed.memory_bytes(), base_bytes)
    )

    dyn_rank = _train_trainer(
        config,
        TrainerConfig(
            rank=4,
            dynamic_rank=True,
            dynamic_prune=False,
            capacity_fraction=1.0,
        ),
        slots=slots,
    )
    results.append(
        MemoryFootprint("+ Dynamic Rank", dyn_rank.memory_bytes(), base_bytes)
    )

    full = _train_trainer(
        config,
        TrainerConfig(rank=4, dynamic_rank=True, dynamic_prune=True),
        slots=slots,
    )
    results.append(
        MemoryFootprint("+ Pruning", full.memory_bytes(), base_bytes)
    )
    return results
