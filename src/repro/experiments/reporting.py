"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's figures and
tables report; this module keeps that output consistent and readable.
"""

from __future__ import annotations

__all__ = ["format_table", "banner"]


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned fixed-width table."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def banner(title: str) -> str:
    """Section header used before each reproduced figure/table."""
    bar = "=" * max(len(title), 20)
    return f"\n{bar}\n{title}\n{bar}"
