"""Co-located serving: performance isolation on one inference node.

Exercises the hardware substrate: the Fig. 16 isolation ablation, then the
Algorithm-2 adaptive NUMA partitioner reacting to a latency excursion.

Run:  python examples/colocated_serving.py   (~20 s)
"""

from repro.experiments.reporting import banner, format_table
from repro.hardware import AdaptiveNumaPartitioner, EPYC_9684X_DUAL
from repro.serving import ColocatedNodeSimulator, NodeSimConfig, SLAMonitor


def isolation_ablation(sim: ColocatedNodeSimulator) -> None:
    results = sim.ablation()
    only = results["Only Infer"]
    rows = [
        [
            name,
            f"{r.inference_hit_ratio * 100:.0f}%",
            f"{r.training_hit_ratio * 100:.0f}%",
            f"{r.p99_ms:.1f} ms",
            f"{r.p99_ms / only.p99_ms:.2f}x",
        ]
        for name, r in results.items()
    ]
    print(banner("Isolation ablation (Fig. 16 mechanism)"))
    print(
        format_table(
            ["configuration", "inf L3 hit", "train L3 hit", "P99", "vs baseline"],
            rows,
        )
    )


def adaptive_partitioning(sim: ColocatedNodeSimulator) -> None:
    partitioner = AdaptiveNumaPartitioner(
        EPYC_9684X_DUAL,
        t_high_ms=10.5,
        t_low_ms=9.0,
        min_inference_ccds=6,
        max_training_ccds=8,
        initial_training_ccds=8,
    )
    monitor = SLAMonitor(p99_target_ms=20.0)
    print(banner("Algorithm 2: adaptive CCD rebalancing"))
    sim.run_adaptive(partitioner, cycles=8)
    rows = [
        [
            event.cycle,
            f"{event.p99_ms:.1f} ms",
            event.action,
            event.state.num_inference,
            event.state.num_training,
        ]
        for event in partitioner.history
    ]
    print(
        format_table(
            ["cycle", "observed P99", "action", "inference CCDs", "training CCDs"],
            rows,
        )
    )
    print(f"SLA violations observed: {monitor.violation_rate * 100:.0f}%")


def main():
    sim = ColocatedNodeSimulator(NodeSimConfig(seed=3))
    isolation_ablation(sim)
    adaptive_partitioning(sim)


if __name__ == "__main__":
    main()
