"""Freshness comparison: the Table III lineup on a 1-hour serving horizon.

Runs NoUpdate / DeltaUpdate / QuickUpdate / LiveUpdate through the identical
serving timeline and prints mean AUC, the delta versus DeltaUpdate, and the
network bytes each strategy consumed.

Run:  python examples/freshness_comparison.py          (~25 s)
      python examples/freshness_comparison.py --fast   (~10 s)
"""

import sys

from repro.experiments import (
    AccuracyConfig,
    auc_improvement_table,
    run_comparison,
    standard_lineup,
)
from repro.experiments.reporting import banner, format_table


def main(fast: bool = False):
    config = AccuracyConfig(
        horizon_s=1800.0 if fast else 3600.0,
        update_interval_s=600.0,
    )
    lineup = standard_lineup()
    if fast:
        for key in ("QuickUpdate-10%", "LiveUpdate-16/64"):
            lineup.pop(key)

    print(f"running {len(lineup)} strategies over {config.horizon_s / 60:.0f} "
          "simulated minutes (identical traffic for all) ...")
    runs = run_comparison(config, lineup)
    improvements = auc_improvement_table(runs)

    rows = [
        [
            name,
            f"{run.mean_auc:.4f}",
            f"{improvements[name]:+.3f} pp",
            f"{run.bytes_moved / 1e6:.2f} MB",
            f"{run.update_seconds:.2f} s",
        ]
        for name, run in runs.items()
    ]
    print(banner("Average AUC vs DeltaUpdate (10-minute update windows)"))
    print(
        format_table(
            ["strategy", "mean AUC", "vs Delta", "net bytes", "update time"],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Table III): NoUpdate << QuickUpdate < "
        "DeltaUpdate < LiveUpdate, with LiveUpdate moving zero bytes."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
