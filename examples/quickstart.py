"""Quickstart: staleness hurts, inference-side LoRA updates fix it.

Builds a DLRM, trains it on a drifting CTR stream, lets it go stale, then
attaches a LiveUpdate trainer that adapts the serving replica from its own
traffic — no parameter-server pull involved.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LiveUpdate, LiveUpdateConfig, TrainerConfig
from repro.cluster import InferenceNode, ParameterServer
from repro.data import DriftingCTRStream, StreamConfig
from repro.dlrm import DLRM, DLRMConfig, RowwiseAdagrad, auc_roc

TABLE_SIZES = (2000, 2000, 1000)


def evaluate(node, stream, overlay=None, repeats=3):
    """Mean AUC on the node's local traffic shard."""
    scores = []
    for _ in range(repeats):
        batch = stream.eval_batch(4000, local=True)
        probs = node.predict(batch, overlay=overlay)
        scores.append(auc_roc(batch.labels, probs))
    return float(np.mean(scores))


def main():
    # 1. A drifting world and a DLRM trained on it ("Day-1 checkpoint").
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=4, seed=7)
    )
    model = DLRM(
        DLRMConfig(
            num_dense=4,
            embedding_dim=16,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(32,),
            top_mlp=(64, 32),
            seed=0,
        )
    )
    optimizer = RowwiseAdagrad(lr=0.05)
    print("pre-training the Day-1 checkpoint ...")
    for _ in range(300):
        batch = stream.next_batch(256, duration_s=1.0)
        model.train_step(batch.dense, batch.sparse_ids, batch.labels, optimizer)

    # 2. Deploy it on an inference node and measure fresh accuracy.
    node = InferenceNode(model.copy(), ParameterServer(row_bytes=128))
    fresh = evaluate(node, stream)
    print(f"fresh AUC:                 {fresh:.4f}")

    # 3. The world drifts for 45 minutes; the model goes stale.
    stream.advance(2700.0)
    stale = evaluate(node, stream)
    print(f"stale AUC (45 min later):  {stale:.4f}   (delta {stale - fresh:+.4f})")

    # 4. Attach LiveUpdate: the node trains LoRA adapters from the traffic
    #    it serves.  Zero bytes cross the inter-cluster network.
    live = LiveUpdate(
        node,
        trainer_cluster=None,  # purely local operation for this demo
        trainer_config=TrainerConfig(rank=8, lr=0.25),
        config=LiveUpdateConfig(steps_per_slot=4),
    )
    print("serving + adapting for 10 simulated minutes ...")
    for _ in range(20):
        served = stream.next_batch(512, local=True)
        live.on_serving_batch(served)
        live.on_slot(now=stream.now)
        stream.advance(30.0)
    cost = live.on_update_window(now=stream.now)

    adapted = evaluate(node, stream, overlay=live.overlay())
    base_now = evaluate(node, stream)
    print(f"AUC with LoRA overlay:     {adapted:.4f}   (recovered {adapted - base_now:+.4f})")
    print(
        f"update cost: {cost.seconds * 1000:.0f} ms of local CPU, "
        f"{cost.bytes_moved:.0f} bytes over the network"
    )
    print(
        f"adapter memory: {live.adapter_memory_bytes() / 1024:.0f} KB "
        f"({live.adapter_memory_fraction() * 100:.2f}% of the EMTs)"
    )


if __name__ == "__main__":
    main()
