"""Multi-node LoRA synchronization through the sharded parameter plane.

Four inference nodes adapt LoRA replicas on their own traffic and
synchronize with the sparse priority-merge protocol (Algorithm 3).  Each
round's merged adapter rows are also published — as ONE version bump — to a
:class:`ShardedParameterStore` through the synchronizer's batched
:class:`ShardClient`, and a late-joining observer client catches up with
O(changed) delta pulls instead of a fresh all-to-all exchange.  Shows how
replica divergence collapses at each sync, what the delta protocol moves,
and the tree-merge communication cost behind the Fig. 19 scaling.

Run:  python examples/multi_node_sync.py   (~15 s)
"""

import numpy as np

from repro.cluster import ShardClient, ShardedParameterStore
from repro.core import SparseLoRASynchronizer, LoRATrainer, TrainerConfig
from repro.data import DriftingCTRStream, InferenceLogBuffer, StreamConfig
from repro.dlrm import DLRM, DLRMConfig, RowwiseAdagrad, auc_roc
from repro.experiments.reporting import banner, format_table
from repro.experiments.sync_interval import scalability_curve

TABLE_SIZES = (1500, 1000)
NUM_RANKS = 4
LORA_RANK = 8


def main():
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=4, seed=11)
    )
    base = DLRM(
        DLRMConfig(
            num_dense=4,
            embedding_dim=16,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(32,),
            top_mlp=(32,),
            seed=0,
        )
    )
    optimizer = RowwiseAdagrad(lr=0.05)
    for _ in range(200):
        b = stream.next_batch(256, duration_s=1.0)
        base.train_step(b.dense, b.sparse_ids, b.labels, optimizer)

    trainers = [
        LoRATrainer(
            base.copy(),
            InferenceLogBuffer(600.0),
            TrainerConfig(rank=LORA_RANK, lr=0.2, dynamic_rank=False, seed=r),
        )
        for r in range(NUM_RANKS)
    ]
    # The parameter plane the merged adapter rows publish into: splitmix64
    # shard placement, per-shard delta logs, byte-identical in any process.
    store = ShardedParameterStore(
        num_shards=4, row_bytes=LORA_RANK * 8, row_dim=LORA_RANK
    )
    sync = SparseLoRASynchronizer(trainers, sync_interval=16, store=store)
    # A late joiner / external observer session with its own sync point.
    observer = ShardClient(store)
    lora_tables = [f"lora_a/{f}" for f in range(sync.num_fields)]

    print(banner(f"{NUM_RANKS}-node fleet, sync every 16 steps"))
    rows = []
    for step in range(64):
        batches = []
        for _ in range(NUM_RANKS):
            b = stream.next_batch(128, local=True)
            batches.append((b.dense, b.sparse_ids, b.labels))
        sync.step_all(batches)
        stream.advance(5.0)
        if (step + 1) % 8 == 0:
            ev = stream.next_batch(2000, local=True)
            fleet_auc = np.mean(
                [
                    auc_roc(
                        ev.labels,
                        t.model.predict(ev.dense, ev.sparse_ids, overlay=t.overlay()),
                    )
                    for t in trainers
                ]
            )
            rows.append(
                [
                    step + 1,
                    f"{sync.replica_divergence(0):.3f}",
                    f"{fleet_auc:.4f}",
                    sync.rounds,
                    observer.staleness_versions(),
                ]
            )
    print(
        format_table(
            ["step", "replica divergence", "fleet AUC", "syncs", "obs lag"],
            rows,
        )
    )

    total_sync = sum(r.total_seconds for r in sync.reports)
    print(f"\ntotal modelled sync time: {total_sync * 1000:.1f} ms "
          f"over {sync.rounds} rounds")

    print(banner("Observer catch-up through the shard store"))
    deltas, pull = observer.pull_tables(lora_tables)
    pushed = sum(r.rows for r in sync.publish_reports)
    print(
        f"store version {store.version} across {store.num_shards} shards, "
        f"{len(store):,} resident rows"
    )
    print(
        f"one batched pull caught up {pull.rows:,} changed rows "
        f"({pull.bytes / 1024:.1f} KiB, {pull.seconds * 1000:.2f} ms modelled) "
        f"vs {pushed:,} rows published over {len(sync.publish_reports)} rounds"
    )
    for table in lora_tables:
        ids, _ = deltas[table]
        print(f"  {table}: {ids.size} changed adapter rows")

    report = store.add_shard()
    print(
        f"add_shard -> {store.num_shards} shards moved only "
        f"{report.moved_fraction:.1%} of rows (consistent-hash key ranges)"
    )

    print(banner("Tree-merge scaling (Fig. 19)"))
    points = scalability_curve()
    print(
        format_table(
            ["nodes", "sync s/window", "kind"],
            [
                [p.num_nodes, f"{p.sync_seconds:.1f}", "proj" if p.projected else "meas"]
                for p in points
            ],
        )
    )


if __name__ == "__main__":
    main()
