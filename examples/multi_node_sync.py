"""Multi-node LoRA synchronization (Algorithm 3).

Four inference nodes adapt LoRA replicas on their own traffic and
synchronize with the sparse priority-merge protocol.  Shows how replica
divergence grows between syncs and collapses at each round, and the
tree-merge communication cost behind the Fig. 19 scaling.

Run:  python examples/multi_node_sync.py   (~15 s)
"""

import numpy as np

from repro.core import SparseLoRASynchronizer, LoRATrainer, TrainerConfig
from repro.data import DriftingCTRStream, InferenceLogBuffer, StreamConfig
from repro.dlrm import DLRM, DLRMConfig, RowwiseAdagrad, auc_roc
from repro.experiments.reporting import banner, format_table
from repro.experiments.sync_interval import scalability_curve

TABLE_SIZES = (1500, 1000)
NUM_RANKS = 4


def main():
    stream = DriftingCTRStream(
        StreamConfig(table_sizes=TABLE_SIZES, num_dense=4, seed=11)
    )
    base = DLRM(
        DLRMConfig(
            num_dense=4,
            embedding_dim=16,
            table_sizes=TABLE_SIZES,
            bottom_mlp=(32,),
            top_mlp=(32,),
            seed=0,
        )
    )
    optimizer = RowwiseAdagrad(lr=0.05)
    for _ in range(200):
        b = stream.next_batch(256, duration_s=1.0)
        base.train_step(b.dense, b.sparse_ids, b.labels, optimizer)

    trainers = [
        LoRATrainer(
            base.copy(),
            InferenceLogBuffer(600.0),
            TrainerConfig(rank=8, lr=0.2, dynamic_rank=False, seed=r),
        )
        for r in range(NUM_RANKS)
    ]
    sync = SparseLoRASynchronizer(trainers, sync_interval=16)

    print(banner(f"{NUM_RANKS}-node fleet, sync every 16 steps"))
    rows = []
    for step in range(64):
        batches = []
        for _ in range(NUM_RANKS):
            b = stream.next_batch(128, local=True)
            batches.append((b.dense, b.sparse_ids, b.labels))
        sync.step_all(batches)
        stream.advance(5.0)
        if (step + 1) % 8 == 0:
            ev = stream.next_batch(2000, local=True)
            fleet_auc = np.mean(
                [
                    auc_roc(
                        ev.labels,
                        t.model.predict(ev.dense, ev.sparse_ids, overlay=t.overlay()),
                    )
                    for t in trainers
                ]
            )
            rows.append(
                [
                    step + 1,
                    f"{sync.replica_divergence(0):.3f}",
                    f"{fleet_auc:.4f}",
                    sync.rounds,
                ]
            )
    print(format_table(["step", "replica divergence", "fleet AUC", "syncs"], rows))

    total_sync = sum(r.total_seconds for r in sync.reports)
    print(f"\ntotal modelled sync time: {total_sync * 1000:.1f} ms "
          f"over {sync.rounds} rounds")

    print(banner("Tree-merge scaling (Fig. 19)"))
    points = scalability_curve()
    print(
        format_table(
            ["nodes", "sync s/window", "kind"],
            [
                [p.num_nodes, f"{p.sync_seconds:.1f}", "proj" if p.projected else "meas"]
                for p in points
            ],
        )
    )


if __name__ == "__main__":
    main()
