"""Tiered embedding serving with consistency checking and bursty load.

Demonstrates the remaining serving substrates: the HBM/DRAM/remote tiered
embedding store (Section II-B's hybrid hierarchy), request arrival bursts,
and the fleet consistency checker (requirement 3 of Section II-C).

Run:  python examples/tiered_serving.py
"""

import numpy as np

from repro.cluster import (
    InferenceNode,
    ParameterServer,
    check_prediction_consistency,
    parameter_divergence,
)
from repro.data import ArrivalConfig, RequestArrivalProcess, ZipfSampler
from repro.dlrm import DLRM, DLRMConfig
from repro.experiments.reporting import banner, format_table
from repro.hardware import TieredEmbeddingStore, TieredStoreConfig


def tiered_lookup_demo():
    """Hot-in-HBM placement vs no placement under Zipf traffic."""
    rng = np.random.default_rng(0)
    num_rows, dim = 50_000, 16
    weight = rng.normal(size=(num_rows, dim))
    sampler = ZipfSampler(num_rows, exponent=1.4, rng=rng)
    traffic = sampler.sample(30_000)

    configs = {
        "no HBM tier": TieredStoreConfig(
            hbm_capacity_rows=1, promote_on_access=False
        ),
        "LRU promotion": TieredStoreConfig(hbm_capacity_rows=5000),
        "preloaded hot set": TieredStoreConfig(
            hbm_capacity_rows=5000, promote_on_access=False
        ),
    }
    rows = []
    for name, cfg in configs.items():
        store = TieredEmbeddingStore(weight, cfg)
        if name == "preloaded hot set":
            store.preload_hot(sampler.hot_ids(0.10))
        store.lookup(traffic)
        rows.append(
            [
                name,
                f"{store.stats.hbm_hit_ratio * 100:.1f}%",
                f"{store.mean_lookup_latency_us():.2f} us",
            ]
        )
    print(banner("Tiered embedding store (HBM + DRAM hierarchy)"))
    print(format_table(["placement", "HBM hit ratio", "mean lookup"], rows))


def bursty_load_demo():
    """Burstiness of the arrival process (the P99 stressor)."""
    calm = RequestArrivalProcess(
        ArrivalConfig(base_qps=2000, burst_rate_per_hour=0.0, seed=1)
    )
    bursty = RequestArrivalProcess(
        ArrivalConfig(
            base_qps=2000, burst_rate_per_hour=6.0, burst_multiplier=4.0, seed=1
        )
    )
    print(banner("Request arrival burstiness"))
    print(
        format_table(
            ["process", "peak/mean over 1 h"],
            [
                ["calm (Poisson)", f"{calm.peak_to_mean():.2f}"],
                ["with burst episodes", f"{bursty.peak_to_mean():.2f}"],
            ],
        )
    )


def consistency_demo():
    """Fleet consistency probe before and after a replica diverges."""
    model = DLRM(
        DLRMConfig(num_dense=4, embedding_dim=16, table_sizes=(2000, 1000))
    )
    server = ParameterServer(row_bytes=128)
    fleet_models = [model.copy() for _ in range(3)]
    nodes = [InferenceNode(m, server, node_id=i) for i, m in enumerate(fleet_models)]

    rng = np.random.default_rng(2)
    from repro.data import Batch

    probe = Batch(
        timestamp=0.0,
        dense=rng.normal(size=(64, 4)),
        sparse_ids=rng.integers(0, 1000, size=(64, 2)),
        labels=rng.integers(0, 2, size=64).astype(float),
    )
    print(banner("Replica consistency probe"))
    report = check_prediction_consistency([n.model for n in nodes], probe)
    print("fresh fleet: ", report.summary)

    # one replica silently drifts (e.g. missed an update)
    fleet_models[1].embeddings[0].weight[:100] += 0.05
    report = check_prediction_consistency([n.model for n in nodes], probe)
    print("after drift: ", report.summary)
    div = parameter_divergence([n.model for n in nodes])
    print("divergence by component:", {k: round(v, 4) for k, v in div.items()})


def main():
    tiered_lookup_demo()
    bursty_load_demo()
    consistency_demo()


if __name__ == "__main__":
    main()
