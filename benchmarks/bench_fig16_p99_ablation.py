"""Fig. 16 — P99 latency ablation of the performance-isolation techniques.

Paper result: naive co-location (w/o Opt) more than doubles P99 latency;
NUMA-aware scheduling restores the SLA; adding embedding reuse makes the
full system nearly indistinguishable from inference-only serving.
"""

from repro.experiments.reporting import banner, format_table
from repro.serving.engine import ColocatedNodeSimulator


def test_fig16_p99_ablation(once):
    sim = ColocatedNodeSimulator()
    results = once(sim.ablation)
    only = results["Only Infer"]
    rows = [
        [
            name,
            f"{r.p50_ms:.1f} ms",
            f"{r.p99_ms:.1f} ms",
            f"{r.p99_ms / only.p99_ms:.2f}x",
        ]
        for name, r in results.items()
    ]
    print(banner("Fig. 16: P99 latency by isolation configuration"))
    print(format_table(["configuration", "P50", "P99", "vs Only Infer"], rows))

    naive = results["w/o Opt"]
    sched = results["w/ Scheduling"]
    full = results["w/ Reuse+Scheduling"]
    # naive co-location more than doubles P99 (paper: >2x)
    assert naive.p99_ms > 2.0 * only.p99_ms
    # scheduling restores latency to near the lower bound
    assert sched.p99_ms < 1.15 * only.p99_ms
    # the full system is nearly indistinguishable from inference-only
    assert full.p99_ms < 1.10 * only.p99_ms
    assert full.p99_ms <= sched.p99_ms * 1.02
