"""Fig. 3a — fraction of embedding rows updated per training window.

Paper result: even 10-minute windows modify >10% of EMT rows, and the ratio
grows (sub-linearly) with the window length.
"""

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.freshness import measure_update_ratio
from repro.experiments.reporting import banner, format_table


def test_fig03a_update_ratio(once):
    config = AccuracyConfig(pretrain_steps=150)
    points = once(
        lambda: measure_update_ratio(
            config, window_minutes=(10.0, 30.0, 60.0), windows_per_setting=3
        )
    )
    by_window = {}
    for p in points:
        by_window.setdefault(p.window_minutes, []).append(p.updated_fraction)
    rows = [
        [f"{int(w)} min", f"{min(v):.3f}", f"{max(v):.3f}",
         f"{sum(v) / len(v):.3f}"]
        for w, v in sorted(by_window.items())
    ]
    print(banner("Fig. 3a: embedding update ratio per window"))
    print(format_table(["window", "min", "max", "mean"], rows))

    means = [sum(v) / len(v) for _, v in sorted(by_window.items())]
    assert means[0] > 0.10          # >10% even at 10 minutes (paper)
    assert means[0] < means[1] < means[2]  # grows with window length
