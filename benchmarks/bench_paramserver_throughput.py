"""Parameter-plane throughput: seed dict store vs sharded delta-log store.

Measures publish and ``pull_delta`` rows/sec at production-ish row counts,
comparing the repository's original dict-based ``ParameterServer`` (kept
here verbatim as the reference) against
:class:`repro.cluster.shardstore.ShardedParameterStore`.  The interesting
case is the steady state of Section II-B's delta protocol: a large resident
table where each window touches ~1% of rows.  The dict store pays an
O(all-rows) scan per pull; the sharded store slices per-shard delta logs,
so its pull cost tracks the delta size, not the table size.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_paramserver_throughput.py
    PYTHONPATH=src python benchmarks/bench_paramserver_throughput.py \
        --rows 100000 --delta-fraction 0.01 --check-speedup 10

``--check-speedup X`` exits non-zero unless the sharded store's
``pull_delta`` is at least ``X`` times faster than the dict reference (the
CI smoke gate).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cluster.shardstore import ShardedParameterStore

DIM = 16


class DictParameterServer:
    """The seed implementation: one Python dict entry per row.

    ``pull_delta`` scans every key of every table; ``_shard_of`` is omitted
    (its builtin-``hash()`` placement was nondeterministic anyway and stats
    don't affect throughput).
    """

    def __init__(self, row_bytes: int = DIM * 8) -> None:
        self.row_bytes = row_bytes
        self.version = 0
        self._rows: dict[tuple[str, int], np.ndarray] = {}
        self._row_version: dict[tuple[str, int], int] = {}

    def publish_batch(self, table, indices, rows) -> int:
        indices = np.asarray(indices, dtype=np.int64)
        self.version += 1
        for i, row in zip(indices, rows):
            key = (table, int(i))
            self._rows[key] = np.array(row, dtype=np.float64, copy=True)
            self._row_version[key] = self.version
        return self.version

    def pull_delta(self, table, since_version):
        hits = [
            (key[1], self._rows[key])
            for key, ver in self._row_version.items()
            if key[0] == table and ver > since_version
        ]
        if not hits:
            return np.array([], dtype=np.int64), np.zeros((0, 1)), self.version
        hits.sort(key=lambda kv: kv[0])
        indices = np.array([h[0] for h in hits], dtype=np.int64)
        rows = np.stack([h[1] for h in hits])
        return indices, rows, self.version


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_store(store, num_rows: int, delta_rows: int, rng) -> dict[str, float]:
    """Fill the store, then measure windowed publish + delta-pull rates."""
    all_ids = np.arange(num_rows)
    base = rng.normal(size=(num_rows, DIM))
    fill_s = _best_seconds(
        lambda: store.publish_batch("emb", all_ids, base), repeats=1
    )

    # steady state: measure publish and pull separately on fixed deltas
    hot = rng.choice(num_rows, size=delta_rows, replace=False)
    publish_s = _best_seconds(
        lambda: store.publish_batch("emb", hot, base[hot])
    )
    since = store.version - 1
    idx, _, _ = store.pull_delta("emb", since)
    assert idx.size == delta_rows, (idx.size, delta_rows)
    pull_s = _best_seconds(lambda: store.pull_delta("emb", since))
    return {
        "fill_rows_per_s": num_rows / fill_s,
        "publish_rows_per_s": delta_rows / publish_s,
        "pull_rows_per_s": delta_rows / pull_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--delta-fraction", type=float, default=0.01)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        help="fail unless the sharded pull_delta speedup reaches this factor",
    )
    args = parser.parse_args(argv)
    if args.rows < 1000:
        parser.error("--rows must be at least 1000")
    delta_rows = max(1, int(args.rows * args.delta_fraction))

    dict_store = DictParameterServer()
    sharded = ShardedParameterStore(
        num_shards=args.shards, row_bytes=DIM * 8, row_dim=DIM
    )
    ref = bench_store(dict_store, args.rows, delta_rows, np.random.default_rng(7))
    vec = bench_store(sharded, args.rows, delta_rows, np.random.default_rng(7))

    # same windowed delta must come back from both stores
    rng = np.random.default_rng(11)
    ids = rng.choice(args.rows, size=delta_rows, replace=False)
    rows = rng.normal(size=(delta_rows, DIM))
    since_ref, since_vec = dict_store.version, sharded.version
    dict_store.publish_batch("emb", ids, rows)
    sharded.publish_batch("emb", ids, rows)
    ref_idx, ref_rows, _ = dict_store.pull_delta("emb", since_ref)
    vec_idx, vec_rows, _ = sharded.pull_delta("emb", since_vec)
    np.testing.assert_array_equal(ref_idx, vec_idx)
    np.testing.assert_allclose(ref_rows, vec_rows)

    print(
        f"parameter-plane throughput @ {args.rows:,} resident rows, "
        f"{delta_rows:,}-row deltas (rows/sec)"
    )
    print(f"{'operation':<22} {'dict store':>14} {'sharded store':>14} {'speedup':>9}")
    speedups = {}
    for key, label in (
        ("fill_rows_per_s", "bulk fill publish"),
        ("publish_rows_per_s", "windowed publish"),
        ("pull_rows_per_s", "pull_delta (1%)"),
    ):
        speedups[key] = vec[key] / ref[key]
        print(
            f"{label:<22} {ref[key]:>14,.0f} {vec[key]:>14,.0f} "
            f"{speedups[key]:>8.1f}x"
        )

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "paramserver",
        shape=f"{args.rows} rows, {delta_rows}-row deltas, {args.shards} shards",
        ids_per_sec=vec["pull_rows_per_s"],
        speedup=speedups["pull_rows_per_s"],
        extra={f"speedup_{k.split('_')[0]}": v for k, v in speedups.items()},
    )

    if args.check_speedup is not None:
        if speedups["pull_rows_per_s"] < args.check_speedup:
            print(
                f"FAIL: pull_delta speedup "
                f"{speedups['pull_rows_per_s']:.1f}x below "
                f"{args.check_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: pull_delta speedup >= {args.check_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
