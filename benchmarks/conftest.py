"""Shared benchmark configuration.

Each ``bench_*`` file regenerates one figure or table from the paper.  The
experiments run exactly once per session (``pedantic`` with one round) and
print their series so the output can be compared with the paper side by
side.  Set ``REPRO_FAST=1`` to shrink the heavy accuracy benches.
"""

import os

import pytest

FAST = bool(int(os.environ.get("REPRO_FAST", "0")))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn):
        return run_once(benchmark, fn)

    return _run
