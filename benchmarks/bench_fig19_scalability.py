"""Fig. 19 — LoRA sync time vs inference-node count, with projection.

Paper result: synchronization time grows O(log N) thanks to the tree-based
exchange; projected training+sync time stays under 10 minutes out to 48
nodes.
"""

import numpy as np

from repro.cluster.collectives import fit_log_trend
from repro.experiments.reporting import banner, format_table
from repro.experiments.sync_interval import scalability_curve


def test_fig19_scalability(once):
    points = once(scalability_curve)
    rows = [
        [
            p.num_nodes,
            f"{p.sync_seconds:.1f} s",
            "projected" if p.projected else "measured",
        ]
        for p in points
    ]
    print(banner("Fig. 19: sync time vs inference-node count"))
    print(format_table(["nodes", "sync time / window", "kind"], rows))

    measured = [p for p in points if not p.projected]
    xs = np.array([p.num_nodes for p in measured], dtype=float)
    ys = np.array([p.sync_seconds for p in measured])
    intercept, slope = fit_log_trend(xs, ys)
    residual = ys - (intercept + slope * np.log2(xs))
    print(f"log-fit: t = {intercept:.2f} + {slope:.2f} * log2(N), "
          f"max residual {np.abs(residual).max():.3f}s")

    # logarithmic scaling: the log2 fit is essentially exact
    assert np.abs(residual).max() < 0.05 * ys.max()
    # projection to 48 nodes stays under the 10-minute freshness budget
    at48 = next(p for p in points if p.num_nodes == 48)
    assert at48.sync_seconds < 600
