"""Fig. 5 — CPU power of co-located training vs inference-only.

Paper result: running the LoRA trainer alongside inference costs only ~20%
more CPU power than inference-only operation.
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.utilization import power_comparison


def test_fig05_cpu_power(once):
    pc = once(power_comparison)
    rows = [
        [
            "inference-only",
            f"{pc.inference_only.mean_power_w:.0f} W",
            f"{pc.inference_only.energy_kwh:.1f} kWh/day",
        ],
        [
            "inference+training",
            f"{pc.colocated.mean_power_w:.0f} W",
            f"{pc.colocated.energy_kwh:.1f} kWh/day",
        ],
    ]
    print(banner("Fig. 5: CPU power, inference-only vs co-located training"))
    print(format_table(["configuration", "mean power", "energy"], rows))
    print(f"mean power increase: {pc.mean_power_increase * 100:.1f}%")
    assert 0.10 < pc.mean_power_increase < 0.30  # the paper's ~20%
