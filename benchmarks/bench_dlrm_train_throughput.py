"""DLRM train-step throughput: vectorized model plane vs seed per-bag loops.

Measures ids/sec for one multi-hot embedding train step — pooled forward,
pooled backward, row-wise Adagrad update and touched-row drain (the delta
publish prep) — comparing the vectorized path
(:mod:`repro.dlrm.embedding` + :mod:`repro.dlrm.optim` over
:mod:`repro.core.kernels` segment reductions and the ``TouchedRows``
epoch lane) against the seed per-bag/per-id reference implementations the
repository started from (Python loop per bag, ``np.add.at`` accumulation,
one Python ``set`` insert per touched row).

The id stream is Zipf-distributed (the paper's access skew) and bags are
Poisson-sized; ``--mean-bag`` controls how much per-bag Python overhead
the seed pays per id.  The CI gate uses short bags (mean 2), the shape of
high-cardinality user-history fields where the per-bag loop is the
bottleneck being removed; the standalone run also prints longer-bag
shapes for the full picture.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dlrm_train_throughput.py
    PYTHONPATH=src python benchmarks/bench_dlrm_train_throughput.py \
        --ids 100000 --check-speedup 10

``--check-speedup X`` exits non-zero unless the gated composite train
step is at least ``X`` times faster than the seed loop (the CI smoke
gate).  Every stage is equivalence-asserted against the sequential
reference before anything is timed.

The seed loop is interpreter-bound and steady; the vectorized side runs
at memory bandwidth, so on a contended host its measured ratio can swing
~20% between runs (the CI gate therefore runs on a fresh job).  Ratios,
not absolute ids/sec, are the signal.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.dtypes import SERVE
from repro.data.zipf import ZipfSampler
from repro.dlrm.embedding import EmbeddingTable
from repro.dlrm.optim import RowwiseAdagrad

LR = 0.05
EPS = 1e-8
MODE = "mean"


def _pin_allocator() -> None:
    """Keep glibc from mmap/munmap-cycling the benchmark's big arrays.

    Both composites allocate tens of MB of transients per step; with the
    default glibc thresholds every block above 128 KiB is mmapped and
    returned to the kernel on free, so each timing round re-pays the page
    faults instead of measuring the kernels.  Raising the mmap/trim
    thresholds (the runtime equivalent of ``MALLOC_MMAP_THRESHOLD_``)
    makes rounds reuse the arena.  No-op off glibc.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None)
        m_trim_threshold, m_mmap_threshold = -1, -3  # malloc.h constants
        libc.mallopt(m_mmap_threshold, 1 << 30)
        libc.mallopt(m_trim_threshold, 1 << 30)
    except (OSError, AttributeError):
        pass  # not glibc (musl, macOS): nothing to tune


# --------------------------------------------------------------- seed reference
def ref_lookup_pooled(weight, ids, offsets):
    """Seed forward: one Python iteration per bag."""
    batch = offsets.shape[0] - 1
    out = np.zeros((batch, weight.shape[1]))
    rows = weight[ids] if ids.size else np.zeros((0, weight.shape[1]))
    for b in range(batch):
        lo, hi = offsets[b], offsets[b + 1]
        if hi <= lo:
            continue
        seg = rows[lo:hi]
        out[b] = seg.sum(axis=0)
        if MODE == "mean":
            out[b] /= hi - lo
    return out


def ref_grad_from_pooled(dim, ids, offsets, grad_out):
    """Seed backward: per-bag spread + ``np.add.at`` accumulation."""
    per_id = np.zeros((ids.shape[0], dim))
    batch = offsets.shape[0] - 1
    for b in range(batch):
        lo, hi = offsets[b], offsets[b + 1]
        if hi <= lo:
            continue
        g = grad_out[b]
        if MODE == "mean":
            g = g / (hi - lo)
        per_id[lo:hi] = g
    uniq, inverse = np.unique(ids, return_inverse=True)
    rows = np.zeros((uniq.shape[0], dim))
    np.add.at(rows, inverse, per_id)
    return uniq, rows


def ref_train_step(weight, state, touched, ids, offsets, grad_out):
    """Seed composite: forward + backward + Adagrad + set-touch + drain."""
    pooled = ref_lookup_pooled(weight, ids, offsets)
    uniq, rows = ref_grad_from_pooled(weight.shape[1], ids, offsets, grad_out)
    g2 = (rows ** 2).mean(axis=1)
    state[uniq] += g2
    scale = LR / np.sqrt(state[uniq] + EPS)
    weight[uniq] -= scale[:, None] * rows
    touched.update(int(i) for i in uniq)
    drained = np.array(sorted(touched), dtype=np.int64)
    touched.clear()
    return pooled, uniq, rows, drained


def vec_train_step(table, opt, ids, offsets, grad_out):
    """Vectorized composite over the same inputs."""
    pooled = table.lookup_pooled(ids, offsets, mode=MODE)
    grad = table.grad_from_pooled(ids, offsets, grad_out, mode=MODE)
    opt.step_sparse(table, grad)
    drained = table.drain_touched()
    return pooled, grad.indices, grad.rows, drained


# -------------------------------------------------------------------- workload
def make_workload(num_ids, num_rows, dim, mean_bag, max_bag, rng):
    sampler = ZipfSampler(num_rows, exponent=0.9, rng=rng, method="alias")
    sizes = np.clip(rng.poisson(mean_bag, size=num_ids // max(mean_bag, 1) + 1), 1, max_bag)
    sizes = sizes[np.cumsum(sizes) <= num_ids]
    ids = sampler.sample(int(sizes.sum()))
    offsets = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    grad_out = rng.normal(size=(sizes.size, dim))
    return ids, offsets, grad_out


def _rates(ref_fn, vec_fn, num_ids, repeats, attempts=3):
    """Best ids/sec for both composites over several measurement windows.

    Each side runs its rounds back-to-back — the steady state of a
    training loop, where consecutive steps reuse the same warm arena and
    caches — with one untimed warm-up call first (the same protocol as
    the other throughput gates).  The whole block repeats ``attempts``
    times and each side keeps its best window: the seed loop is
    interpreter-bound and steady, while the vectorized side runs at
    memory bandwidth and is the only one punished by transient host
    contention, so a single noisy window would otherwise understate it.
    """
    best = [float("inf"), float("inf")]
    for fn in (ref_fn, vec_fn):
        fn()  # warm the allocator arena and caches before timing
    for _ in range(attempts):
        for side, fn in enumerate((ref_fn, vec_fn)):
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best[side] = min(best[side], time.perf_counter() - t0)
    return num_ids / best[0], num_ids / best[1]


def bench_shape(num_ids, num_rows, dim, mean_bag, max_bag, repeats, rng):
    """Equivalence-check then time both composites for one bag shape."""
    ids, offsets, grad_out = make_workload(
        num_ids, num_rows, dim, mean_bag, max_bag, rng
    )
    table = EmbeddingTable(num_rows, dim, rng=np.random.default_rng(0))
    opt = RowwiseAdagrad(lr=LR, eps=EPS)

    # -- equivalence: one step from identical initial state
    seed_weight = table.weight.copy()
    seed_state = np.zeros(num_rows)
    seed_touched: set[int] = set()
    s_pooled, s_uniq, s_rows, s_drained = ref_train_step(
        seed_weight, seed_state, seed_touched, ids, offsets, grad_out
    )
    v_pooled, v_uniq, v_rows, v_drained = vec_train_step(
        table, opt, ids, offsets, grad_out
    )
    np.testing.assert_allclose(v_pooled, s_pooled, rtol=1e-9, atol=1e-11)
    np.testing.assert_array_equal(v_uniq, s_uniq)
    np.testing.assert_allclose(v_rows, s_rows, rtol=1e-9, atol=1e-11)
    np.testing.assert_array_equal(v_drained, s_drained)
    np.testing.assert_allclose(table.weight, seed_weight, rtol=1e-9, atol=1e-11)
    np.testing.assert_allclose(
        opt._row_state[table], seed_state, rtol=1e-9, atol=1e-11
    )

    ref, vec = _rates(
        lambda: ref_train_step(
            seed_weight, seed_state, seed_touched, ids, offsets, grad_out
        ),
        lambda: vec_train_step(table, opt, ids, offsets, grad_out),
        ids.size,
        repeats,
    )
    return ids.size, offsets.size - 1, ref, vec


def bench_serving_lane(num_ids, num_rows, dim, mean_bag, max_bag, repeats, rng):
    """Float32 serving-lane pooled lookup vs the float64 train lane.

    Serving only reads; after the publish-time :meth:`EmbeddingTable.cast`
    downcast the gather touches half the bytes per row.  Both lanes run
    the identical pooled lookup over the same Zipf id stream, and the
    float32 pool is first checked against the float64 pool within the
    serving tolerance.  Returns ``(f64 ids/sec, f32 ids/sec)``.
    """
    ids, offsets, _ = make_workload(
        num_ids, num_rows, dim, mean_bag, max_bag, rng
    )
    table64 = EmbeddingTable(num_rows, dim, rng=np.random.default_rng(3))
    table32 = table64.cast(SERVE)

    pooled64 = table64.lookup_pooled(ids, offsets, mode=MODE)
    pooled32 = table32.lookup_pooled(ids, offsets, mode=MODE)
    np.testing.assert_allclose(
        pooled32.astype(np.float64), pooled64, rtol=1e-5, atol=1e-6
    )

    return _rates(
        lambda: table64.lookup_pooled(ids, offsets, mode=MODE),
        lambda: table32.lookup_pooled(ids, offsets, mode=MODE),
        ids.size,
        repeats,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ids", type=int, default=100_000)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument(
        "--mean-bag", type=int, default=2,
        help="mean Poisson bag size of the gated shape",
    )
    parser.add_argument("--max-bag", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        help="fail unless the gated composite reaches this speedup factor",
    )
    args = parser.parse_args(argv)
    if args.ids < 1024:
        parser.error("--ids must be at least 1024")
    _pin_allocator()
    rng = np.random.default_rng(7)

    shapes = [(args.mean_bag, args.max_bag)]
    if args.check_speedup is None:  # standalone: show the full sweep
        shapes += [(4, 16), (8, 32)]

    print(
        f"dlrm train-step throughput @ {args.ids:,} ids/batch, "
        f"{args.rows:,} x {args.dim} table (ids/sec)"
    )
    header = f"{'bag shape':<16} {'bags':>7} {'seed loop':>12} {'vectorized':>12} {'speedup':>9}"
    print(header)
    gated_speedup = None
    gated_throughput = None
    for mean_bag, max_bag in shapes:
        n_ids, n_bags, ref, vec = bench_shape(
            args.ids, args.rows, args.dim, mean_bag, max_bag, args.repeats, rng
        )
        speedup = vec / ref
        if gated_speedup is None:
            gated_speedup = speedup
        label = f"mean {mean_bag} max {max_bag}"
        print(f"{label:<16} {n_bags:>7,} {ref:>12,.0f} {vec:>12,.0f} {speedup:>8.1f}x")
        if gated_throughput is None:
            gated_throughput = vec

    # Serving-lane comparison: read-only pooled lookups on the float32
    # lane vs the float64 train lane.  Informational — the train-step
    # gate above is judged on the float64 composite only.
    lane64, lane32 = bench_serving_lane(
        args.ids, args.rows, args.dim, args.mean_bag, args.max_bag,
        args.repeats, rng,
    )
    lane_ratio = lane32 / lane64
    print(
        f"{'serve lookup':<16} {'':>7} {lane64:>12,.0f} {lane32:>12,.0f} "
        f"{lane_ratio:>8.2f}x  (float64 lane vs float32 lane)"
    )

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "dlrm_train",
        shape=(
            f"{args.ids} ids/batch, {args.rows}x{args.dim} table, "
            f"mean bag {args.mean_bag}"
        ),
        ids_per_sec=gated_throughput,
        speedup=gated_speedup,
        extra={
            "serve_f64_ids_per_sec": float(lane64),
            "serve_f32_ids_per_sec": float(lane32),
            "serve_lane_ratio": float(lane_ratio),
        },
    )

    if args.check_speedup is not None:
        if gated_speedup < args.check_speedup:
            print(
                f"FAIL: composite train-step speedup {gated_speedup:.1f}x "
                f"below {args.check_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: composite train-step speedup >= {args.check_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
