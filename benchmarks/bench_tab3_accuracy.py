"""Table III — average AUC improvement over DeltaUpdate (1 h, 10-min updates).

Paper result (percentage points vs DeltaUpdate):
  NoUpdate -0.19..-2.24, QuickUpdate-5% ~ -0.05..-0.07,
  QuickUpdate-10% ~ -0.03..-0.05, LiveUpdate variants +0.04..+0.24.

Shape reproduced here: NoUpdate << QuickUpdate-5% <= QuickUpdate-10% <
DeltaUpdate(0) < LiveUpdate variants (all positive).  Magnitudes are larger
than the paper's because the synthetic drift is compressed into the horizon.
"""

from repro.experiments.accuracy import (
    AccuracyConfig,
    auc_improvement_table,
    run_comparison,
)
from repro.experiments.factories import standard_lineup
from repro.experiments.reporting import banner, format_table

from conftest import FAST


def test_tab3_auc_improvement(once):
    cfg = AccuracyConfig(
        horizon_s=1800.0 if FAST else 3600.0,
        update_interval_s=600.0,
    )
    lineup = standard_lineup()
    if FAST:
        for k in ("QuickUpdate-10%", "LiveUpdate-16/64"):
            lineup.pop(k)
    runs = once(lambda: run_comparison(cfg, lineup))
    table = auc_improvement_table(runs)
    rows = [
        [name, f"{runs[name].mean_auc:.4f}", f"{table[name]:+.3f}",
         f"{runs[name].bytes_moved / 1e6:.1f} MB"]
        for name in runs
    ]
    print(banner("Table III: avg AUC improvement over DeltaUpdate (1 h)"))
    print(format_table(["strategy", "mean AUC", "delta (pp)", "bytes moved"], rows))

    assert table["NoUpdate"] < -0.15
    assert table["NoUpdate"] < table["QuickUpdate-5%"] < 0.0
    if "QuickUpdate-10%" in table:
        assert table["QuickUpdate-5%"] <= table["QuickUpdate-10%"] + 0.05
    for name, value in table.items():
        if name.startswith("LiveUpdate"):
            assert value > 0.0, f"{name} must beat DeltaUpdate"
            assert runs[name].bytes_moved == 0.0
