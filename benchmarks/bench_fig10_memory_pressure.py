"""Fig. 10 — DDR memory pressure during inference.

Paper result: inference alone does not saturate DRAM bandwidth (headroom
exists), yet co-location still hurts latency — the damage is queueing and
cache contention, not raw bandwidth exhaustion.
"""

from repro.experiments.memory import bandwidth_pressure
from repro.experiments.reporting import banner, format_table
from repro.serving.engine import ColocatedNodeSimulator


def test_fig10_memory_pressure(once):
    sim = ColocatedNodeSimulator()

    def run():
        return {
            "inference only": sim.run_inference_only(),
            "co-located (naive)": sim.run_colocated_naive(),
        }

    results = once(run)
    rows = [
        [
            row.label,
            f"{row.traffic_gbps:.1f} GB/s",
            f"{row.utilization * 100:.0f}%",
            f"{row.p99_ms:.1f} ms",
        ]
        for row in bandwidth_pressure(results)
    ]
    print(banner("Fig. 10: DDR pressure during inference"))
    print(format_table(["configuration", "traffic", "utilization", "P99"], rows))

    inf = results["inference only"]
    naive = results["co-located (naive)"]
    # inference alone leaves bandwidth headroom...
    assert inf.memory_utilization < 0.6
    # ...and even naive co-location does not fully saturate the channels,
    assert naive.memory_utilization < 0.9
    # yet latency still degrades badly (the contention mechanism).
    assert naive.p99_ms > 1.5 * inf.p99_ms
