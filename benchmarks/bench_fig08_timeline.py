"""Fig. 8 — model-update timelines of the three methods over one hour.

Paper result: LiveUpdate delivers by far the most model versions (sub-second
updates every ~3 minutes); DeltaUpdate's transfers serialize and deliver the
fewest; QuickUpdate sits in between.
"""

from repro.data.datasets import BD_TB
from repro.experiments.reporting import banner, format_table
from repro.experiments.update_cost import fig8_timelines


def test_fig08_update_timelines(once):
    timelines = once(lambda: fig8_timelines(BD_TB))
    rows = [
        [
            name,
            tl.updates_delivered,
            f"{tl.average_staleness() / 60:.1f} min",
            f"{tl.max_staleness() / 60:.1f} min",
            f"{tl.total_update_seconds / 60:.1f} min",
        ]
        for name, tl in timelines.items()
    ]
    print(banner("Fig. 8: update timelines over one hour (BD-TB)"))
    print(
        format_table(
            ["method", "versions", "avg staleness", "max staleness", "busy"],
            rows,
        )
    )
    assert (
        timelines["LiveUpdate"].updates_delivered
        > timelines["QuickUpdate"].updates_delivered
        > timelines["DeltaUpdate"].updates_delivered
    )
    assert (
        timelines["LiveUpdate"].average_staleness()
        < timelines["QuickUpdate"].average_staleness()
        < timelines["DeltaUpdate"].average_staleness()
    )
