"""Fig. 18 — CPU power (a) and utilisation (b) before/after LiveUpdate.

Paper result: LiveUpdate converts idle cycles into training work — mean
utilisation rises while the power overhead stays modest, and inference GPU
P99 stays under the 10 ms stress SLA.
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.utilization import (
    power_comparison,
    utilization_from_windows,
)
from repro.serving.engine import ColocatedNodeSimulator


def test_fig18_power_and_utilization(once):
    def run():
        pc = power_comparison()
        sim = ColocatedNodeSimulator()
        full = sim.run_colocated_full()
        return pc, full

    pc, full = once(run)
    window_view = utilization_from_windows([full])
    rows = [
        [
            "inference-only",
            f"{pc.inference_only.mean_utilization * 100:.1f}%",
            f"{pc.inference_only.mean_power_w:.0f} W",
        ],
        [
            "with LiveUpdate",
            f"{pc.colocated.mean_utilization * 100:.1f}%",
            f"{pc.colocated.mean_power_w:.0f} W",
        ],
    ]
    print(banner("Fig. 18: CPU utilisation and power, before/after LiveUpdate"))
    print(format_table(["configuration", "mean util", "mean power"], rows))
    print(
        f"power increase {pc.mean_power_increase * 100:.1f}%  |  "
        f"optimized co-located P99 = {window_view.worst_p99_ms:.1f} ms  |  "
        f"DRAM headroom {window_view.headroom * 100:.0f}% over "
        f"{window_view.total_accesses:,} simulated accesses"
    )

    # utilisation rises: idle cycles become useful work
    assert (
        pc.colocated.mean_utilization
        > pc.inference_only.mean_utilization + 0.05
    )
    # power overhead stays modest
    assert pc.mean_power_increase < 0.30
    # serving is not degraded by the harvested cycles (optimized config)
    sim_only = ColocatedNodeSimulator().run_inference_only()
    assert full.p99_ms < 1.10 * sim_only.p99_ms
