"""Fig. 3b — accuracy decays with staleness and recovers at updates.

Paper result: AUC declines as serving proceeds without updates and sharply
recovers when a model update lands.
"""

import numpy as np

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.freshness import staleness_decay_curve
from repro.experiments.reporting import banner, format_table


def test_fig03b_staleness_decay(once):
    config = AccuracyConfig(pretrain_steps=250)

    def run():
        frozen = staleness_decay_curve(
            config, horizon_minutes=60, step_minutes=5
        )
        refreshed = staleness_decay_curve(
            config, horizon_minutes=60, step_minutes=5,
            refresh_every_minutes=20,
        )
        return frozen, refreshed

    frozen, refreshed = once(run)
    rows = [
        [f"{int(f.minutes_stale)} min", f"{f.auc:.4f}", f"{r.auc:.4f}",
         "<- update" if r.refreshed else ""]
        for f, r in zip(frozen, refreshed)
    ]
    print(banner("Fig. 3b: AUC vs staleness (no updates vs 20-min updates)"))
    print(format_table(["age", "frozen AUC", "refreshed AUC", ""], rows))

    # decay: frozen model loses accuracy over the hour
    early = np.mean([p.auc for p in frozen[:3]])
    late = np.mean([p.auc for p in frozen[-3:]])
    assert late < early - 0.01
    # recovery: periodic refresh retains more accuracy than frozen serving
    assert np.mean([p.auc for p in refreshed[-6:]]) > np.mean(
        [p.auc for p in frozen[-6:]]
    )
