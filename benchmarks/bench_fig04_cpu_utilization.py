"""Fig. 4 — 24-hour CPU utilisation in the inference cluster.

Paper result: utilisation stays low all day, peaking at only ~20% — the idle
headroom LiveUpdate harvests.

Drives `repro.experiments.utilization.simulate_day_profile` over one
simulated day of the diurnal load trace.  Knobs: ``peak_utilization``
(the trace's ceiling), ``interval_s`` (sample spacing; 900 s here keeps
the bench fast), ``seed``.  Expected output shape: a 24-hour curve with a
mid-day plateau near the ~20% peak, a deep overnight trough, and mean
utilisation well below the peak — the gap is exactly the idle-cycle
budget Fig. 18b later converts into training work.
"""

from repro.experiments.reporting import banner, format_table
from repro.experiments.utilization import simulate_day_profile


def test_fig04_cpu_utilization(once):
    profile = once(lambda: simulate_day_profile(interval_s=900.0))
    rows = [
        [f"{s.time_s / 3600:04.1f} h", f"{s.utilization * 100:.1f}%"]
        for s in profile.samples[::4]
    ]
    print(banner("Fig. 4: CPU utilization over 24 h (inference cluster)"))
    print(format_table(["hour", "utilization"], rows))
    print(
        f"peak={profile.peak_utilization * 100:.1f}%  "
        f"mean={profile.mean_utilization * 100:.1f}%"
    )
    assert profile.peak_utilization <= 0.21
    assert profile.mean_utilization < 0.20
