"""Ablation — fixed LoRA rank vs accuracy and adapter memory.

Not a paper figure, but the design choice behind Table III's LiveUpdate-8 /
LiveUpdate-16/64 rows: more rank buys little accuracy once the intrinsic
update rank is covered, while memory grows linearly.
"""

from repro.experiments.accuracy import AccuracyConfig, run_strategy
from repro.experiments.factories import delta_update, live_update
from repro.experiments.reporting import banner, format_table


def test_ablation_fixed_rank(once):
    cfg = AccuracyConfig(
        horizon_s=1200.0, update_interval_s=600.0, pretrain_steps=200
    )

    def run():
        out = {"DeltaUpdate": run_strategy(cfg, delta_update)}
        for rank in (2, 4, 8, 16):
            out[f"rank-{rank}"] = run_strategy(cfg, live_update(rank=rank))
        return out

    runs = once(run)
    base = runs["DeltaUpdate"].mean_auc
    rows = [
        [name, f"{r.mean_auc:.4f}", f"{(r.mean_auc - base) * 100:+.3f}"]
        for name, r in runs.items()
    ]
    print(banner("Ablation: fixed LoRA rank vs accuracy"))
    print(format_table(["config", "mean AUC", "vs Delta (pp)"], rows))

    # every rank >= 4 should beat the DeltaUpdate baseline
    for rank in (4, 8, 16):
        assert runs[f"rank-{rank}"].mean_auc > base
    # diminishing returns: rank 16 is not dramatically better than rank 4
    gain_4 = runs["rank-4"].mean_auc - base
    gain_16 = runs["rank-16"].mean_auc - base
    assert gain_16 < 2.5 * gain_4
