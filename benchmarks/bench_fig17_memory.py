"""Fig. 17 — effectiveness of the memory-optimization techniques.

Paper result: dynamic rank adaptation alone saves 80-89% of the fixed-rank
LoRA footprint; adding usage-based pruning brings total savings to 97-99%,
landing at roughly 1-3% of the base embedding tables.
"""

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.memory import measure_memory_footprints
from repro.experiments.reporting import banner, format_table


def test_fig17_memory_optimizations(once):
    config = AccuracyConfig(pretrain_steps=150)
    footprints = once(lambda: measure_memory_footprints(config, slots=30))
    fixed, dyn_rank, full = footprints
    rows = [
        [
            f.label,
            f"{f.adapter_bytes / 1024:.0f} KB",
            f"{f.fraction_of_base * 100:.2f}%",
            f"{f.savings_vs(fixed) * 100:.1f}%",
        ]
        for f in footprints
    ]
    print(banner("Fig. 17: LoRA memory by optimization level"))
    print(
        format_table(
            ["configuration", "adapter size", "% of EMTs", "savings vs fixed"],
            rows,
        )
    )

    assert dyn_rank.savings_vs(fixed) > 0.5      # paper: 80-89%
    assert full.savings_vs(fixed) > 0.9          # paper: 97-99%
    assert full.fraction_of_base < 0.05          # paper: ~1-3% of EMTs
