"""Fig. 11 — L3 hit ratios before/after the isolation optimizations.

Paper result: without optimization both workloads' hit rates collapse
(<10% in the paper's testbed); (a) data reuse lifts the trainer's hit
ratio, (b) CCD scheduling restores the server's hit ratio.
"""

from repro.experiments.reporting import banner, format_table
from repro.serving.engine import ColocatedNodeSimulator


def test_fig11_l3_hit_ratios(once):
    sim = ColocatedNodeSimulator()
    results = once(sim.ablation)
    rows = [
        [
            name,
            f"{r.inference_hit_ratio * 100:.1f}%",
            f"{r.training_hit_ratio * 100:.1f}%",
            f"{r.reuse_ratio * 100:.1f}%",
        ]
        for name, r in results.items()
    ]
    print(banner("Fig. 11: L3 hit ratio by configuration"))
    print(
        format_table(
            ["configuration", "inference L3 hit", "training L3 hit", "reuse"],
            rows,
        )
    )
    naive = results["w/o Opt"]
    sched = results["w/ Scheduling"]
    full = results["w/ Reuse+Scheduling"]
    only = results["Only Infer"]
    # Fig. 11b: scheduling restores the inference hit ratio
    assert naive.inference_hit_ratio < 0.7 * only.inference_hit_ratio
    assert sched.inference_hit_ratio > 0.95 * only.inference_hit_ratio
    # Fig. 11a: reuse lifts the trainer's effective hit ratio
    assert full.training_hit_ratio > sched.training_hit_ratio
    assert full.reuse_ratio > 0.2
