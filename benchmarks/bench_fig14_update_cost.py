"""Fig. 14 — hourly update cost across datasets and update frequencies.

Paper result: DeltaUpdate is prohibitive (near or beyond the full hour at
5-minute cadence); QuickUpdate scales linearly with frequency; LiveUpdate is
flat (~3 min) and ~2x cheaper than QuickUpdate at the 5-minute interval.
"""

from repro.data.datasets import AVAZU_TB, BD_TB, CRITEO_TB
from repro.experiments.reporting import banner, format_table
from repro.experiments.update_cost import fig14_grid


def test_fig14_update_cost(once):
    grid = once(lambda: fig14_grid([AVAZU_TB, CRITEO_TB, BD_TB]))
    for dataset, rows in grid.items():
        table = [
            [
                row.method,
                f"{row.window_s / 60:.0f} min",
                row.updates_per_hour,
                f"{row.volume_bytes_per_update / 1024 ** 4:.2f} TB",
                f"{row.total_cost_min:.1f} min",
            ]
            for row in rows
        ]
        print(banner(f"Fig. 14: hourly update cost — {dataset}"))
        print(
            format_table(
                ["method", "interval", "updates/h", "vol/update", "total cost"],
                table,
            )
        )

    for dataset, rows in grid.items():
        cost = {
            (r.method, r.window_s): r.total_cost_s for r in rows
        }
        # DeltaUpdate at 5-min cadence is prohibitive
        assert cost[("DeltaUpdate", 300.0)] > 35 * 60
        # LiveUpdate ~2x cheaper than QuickUpdate at 5-min frequency
        assert cost[("QuickUpdate", 300.0)] > 1.8 * cost[("LiveUpdate", 300.0)]
        # LiveUpdate's cost is frequency-independent
        live = [cost[("LiveUpdate", w)] for w in (300.0, 600.0, 1200.0)]
        assert max(live) / min(live) < 1.05
        # QuickUpdate scales ~linearly with update frequency
        assert cost[("QuickUpdate", 300.0)] > 3.5 * cost[("QuickUpdate", 1200.0)]
