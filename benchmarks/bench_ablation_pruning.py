"""Ablation — pruning aggressiveness (hot_fraction behind tau_prune).

The paper pins tau to the top-10% access boundary.  Retaining fewer ids
saves memory but eventually costs accuracy; this bench sweeps the boundary.
"""

from repro.core.trainer import LoRATrainer, TrainerConfig
from repro.data.stream import InferenceLogBuffer
from repro.dlrm.metrics import auc_roc
from repro.experiments.accuracy import AccuracyConfig, build_pretrained_world
from repro.experiments.reporting import banner, format_table

import numpy as np


def _run_fraction(hot_fraction: float, config: AccuracyConfig):
    stream, model = build_pretrained_world(config)
    buffer = InferenceLogBuffer(600.0)
    trainer = LoRATrainer(
        model,
        buffer,
        TrainerConfig(
            rank=8,
            lr=0.25,
            dynamic_rank=False,
            dynamic_prune=True,
            hot_fraction=hot_fraction,
            adapt_interval=16,
        ),
    )
    for _ in range(40):
        buffer.append(stream.next_batch(512, local=True))
        for _ in range(4):
            trainer.train_step()
        stream.advance(30.0)
    evs = [stream.next_batch(3000, local=True) for _ in range(2)]
    auc = np.mean(
        [
            auc_roc(
                e.labels,
                model.predict(e.dense, e.sparse_ids, overlay=trainer.overlay()),
            )
            for e in evs
        ]
    )
    frac = trainer.memory_bytes() / model.embedding_bytes
    return float(auc), frac


def test_ablation_pruning_boundary(once):
    config = AccuracyConfig(pretrain_steps=200)
    fractions = (0.02, 0.10, 0.30)

    def run():
        return {hf: _run_fraction(hf, config) for hf in fractions}

    results = once(run)
    rows = [
        [f"top {hf * 100:.0f}%", f"{auc:.4f}", f"{mem * 100:.2f}%"]
        for hf, (auc, mem) in results.items()
    ]
    print(banner("Ablation: pruning boundary (hot fraction)"))
    print(format_table(["retained ids", "AUC", "adapter mem / EMT"], rows))

    # memory grows with the retained fraction
    mems = [results[hf][1] for hf in fractions]
    assert mems[0] < mems[1] < mems[2]
    # the paper's 10% setting loses little accuracy vs retaining 30%
    assert results[0.10][0] > results[0.30][0] - 0.01
