"""Replication overhead and crash-recovery cost of the parameter plane.

Two questions a deployment of Section II-B's delta protocol with R-way
replication has to answer:

1. **What does durability cost on the write path?**  Publishing under
   ``replication=3`` writes three copies of every row, but the
   shard-grouped scatter amortizes placement hashing, dedup and slot
   lookups across replicas, so the overhead over a single-copy store
   should stay well below the naive 3x.
2. **How fast does a revived replica heal?**  After a kill + missed
   windows + revive, ``plan_repair``/``repair`` copies only the rows the
   dead shard actually missed — recovery cost tracks the outage's delta
   volume, not the resident table size.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replication_recovery.py
    PYTHONPATH=src python benchmarks/bench_replication_recovery.py \
        --rows 100000 --check-overhead 2

``--check-overhead X`` exits non-zero if the steady-state windowed
publish against a 1e5-row replicated store costs more than ``X`` times
the single-copy store (the CI gate from ISSUE 9).  Results land in
``BENCH_replication_recovery.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.cluster.shardstore import ShardedParameterStore

DIM = 16


def _best_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh_store(num_shards: int, replication: int) -> ShardedParameterStore:
    return ShardedParameterStore(
        num_shards=num_shards,
        row_bytes=DIM * 8,
        row_dim=DIM,
        replication=replication,
    )


def bench_publish_pair(
    num_shards: int, replication: int, num_rows: int, delta_rows: int, rng
) -> tuple[dict[str, float], dict[str, float]]:
    """Publish rates for ``R=1`` vs ``R=replication``, interleaved.

    Three regimes per store: first insertion into a fresh store (cold
    fill, pays slot-table growth and so approaches the raw R-times
    data-volume ratio), a full-table republish into the warm store
    (pure data-movement bound), and the 1%-delta windowed publish that
    is the protocol's actual steady state — the ≤2x gate measures that
    one, against a resident table of ``num_rows`` rows.  Single-copy and
    replicated timings alternate round-robin so clock drift and cache
    warmth hit both sides equally.
    """
    all_ids = np.arange(num_rows)
    base = rng.normal(size=(num_rows, DIM))
    hot = rng.choice(num_rows, size=delta_rows, replace=False)
    stores = [
        _fresh_store(num_shards, 1),
        _fresh_store(num_shards, replication),
    ]
    results: list[dict[str, float]] = []
    for store in stores:
        fill_s = _best_seconds(
            lambda: store.publish_batch("emb", all_ids, base), repeats=1
        )
        results.append({"fill_rows_per_s": num_rows / fill_s})
    timings = {id(store): {"steady": [], "windowed": []} for store in stores}
    for _ in range(5):
        for store in stores:
            t0 = time.perf_counter()
            store.publish_batch("emb", all_ids, base)
            timings[id(store)]["steady"].append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            store.publish_batch("emb", hot, base[hot])
            timings[id(store)]["windowed"].append(time.perf_counter() - t0)
    for store, result in zip(stores, results):
        result["steady_rows_per_s"] = num_rows / min(
            timings[id(store)]["steady"]
        )
        result["publish_rows_per_s"] = delta_rows / min(
            timings[id(store)]["windowed"]
        )
    return results[0], results[1]


def bench_recovery(
    num_shards: int,
    replication: int,
    num_rows: int,
    delta_rows: int,
    outage_windows: int,
    rng,
) -> dict[str, float]:
    """Kill a shard, publish through the outage, revive, time the repair."""
    store = _fresh_store(num_shards, replication)
    all_ids = np.arange(num_rows)
    store.publish_batch("emb", all_ids, rng.normal(size=(num_rows, DIM)))
    victim = store.shard_ids[0]
    store.kill_shard(victim)
    for _ in range(outage_windows):
        hot = rng.choice(num_rows, size=delta_rows, replace=False)
        store.publish_batch("emb", hot, rng.normal(size=(delta_rows, DIM)))
    store.revive_shard(victim)
    t0 = time.perf_counter()
    plan = store.plan_repair()
    report = store.repair(plan)
    repair_s = time.perf_counter() - t0
    assert report.shards_healed == [victim], report
    assert store.replication_lag == 0
    return {
        "rows_repaired": float(report.rows_copied),
        "bytes_repaired": float(report.bytes_copied),
        "repair_s": repair_s,
        "repair_rows_per_s": report.rows_copied / max(repair_s, 1e-9),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--delta-fraction", type=float, default=0.01)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--replication", type=int, default=3)
    parser.add_argument("--outage-windows", type=int, default=5)
    parser.add_argument(
        "--check-overhead",
        type=float,
        default=None,
        help="fail if the replicated windowed publish against a resident "
        "--rows-row table costs more than this multiple of single-copy",
    )
    args = parser.parse_args(argv)
    if args.rows < 1000:
        parser.error("--rows must be at least 1000")
    if args.replication < 2:
        parser.error("--replication must be at least 2 to measure overhead")
    delta_rows = max(1, int(args.rows * args.delta_fraction))

    single, replicated = bench_publish_pair(
        args.shards,
        args.replication,
        args.rows,
        delta_rows,
        np.random.default_rng(7),
    )
    overhead = {
        key: single[key] / replicated[key]
        for key in (
            "fill_rows_per_s",
            "steady_rows_per_s",
            "publish_rows_per_s",
        )
    }
    recovery = bench_recovery(
        args.shards,
        args.replication,
        args.rows,
        delta_rows,
        args.outage_windows,
        np.random.default_rng(11),
    )

    print(
        f"replication overhead @ {args.rows:,} rows, "
        f"R={args.replication}, {args.shards} shards (rows/sec)"
    )
    print(f"{'operation':<22} {'R=1':>14} {f'R={args.replication}':>14} {'overhead':>9}")
    for key, label in (
        ("fill_rows_per_s", f"cold fill ({args.rows:,})"),
        ("steady_rows_per_s", f"steady publish ({args.rows:,})"),
        ("publish_rows_per_s", f"windowed publish ({delta_rows:,})"),
    ):
        print(
            f"{label:<22} {single[key]:>14,.0f} {replicated[key]:>14,.0f} "
            f"{overhead[key]:>8.2f}x"
        )
    print(
        f"recovery: {recovery['rows_repaired']:,.0f} rows "
        f"({recovery['bytes_repaired'] / 1e6:.1f} MB) healed in "
        f"{recovery['repair_s'] * 1e3:.1f} ms "
        f"({recovery['repair_rows_per_s']:,.0f} rows/s)"
    )

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "replication_recovery",
        shape=(
            f"{args.rows} rows, R={args.replication}, {args.shards} shards, "
            f"{args.outage_windows} outage windows"
        ),
        ids_per_sec=replicated["steady_rows_per_s"],
        extra={
            "fill_overhead_x": overhead["fill_rows_per_s"],
            "steady_overhead_x": overhead["steady_rows_per_s"],
            "publish_overhead_x": overhead["publish_rows_per_s"],
            "rows_repaired": recovery["rows_repaired"],
            "bytes_repaired": recovery["bytes_repaired"],
            "repair_s": recovery["repair_s"],
            "repair_rows_per_s": recovery["repair_rows_per_s"],
        },
    )

    if args.check_overhead is not None:
        if overhead["publish_rows_per_s"] > args.check_overhead:
            print(
                f"FAIL: replicated windowed-publish overhead "
                f"{overhead['publish_rows_per_s']:.2f}x above "
                f"{args.check_overhead}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: replicated windowed-publish overhead "
            f"{overhead['publish_rows_per_s']:.2f}x <= {args.check_overhead}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
