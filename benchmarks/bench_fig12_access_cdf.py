"""Fig. 12 — CDF of embedding access distribution.

Paper result: the top 10% of indices account for 93.8% of accesses.

Samples ``num_samples`` lookups from the pretrained world's serving
stream (`repro.experiments.freshness.access_distribution`), sorts indices
hot-to-cold and prints the cumulative access share at 1/5/10/20/50% of
the index space.  Knobs: ``AccuracyConfig`` (table sizes / skew) and the
sample count in the test body.  Expected output shape: a sharply concave
CDF whose 10% point lands near the paper's 93.8% (the asserted band), with
`repro.data.zipf.zipf_head_share` printed alongside as the analytic check.
"""

import numpy as np

from repro.data.zipf import zipf_head_share
from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.freshness import access_distribution
from repro.experiments.reporting import banner, format_table


def test_fig12_access_cdf(once):
    config = AccuracyConfig(pretrain_steps=10)

    def run():
        from repro.experiments.accuracy import build_pretrained_world

        stream, _ = build_pretrained_world(config)
        return access_distribution(stream, field=0, num_samples=300_000)

    idx_frac, acc_frac = once(run)
    marks = [0.01, 0.05, 0.10, 0.25, 0.50]
    rows = []
    for m in marks:
        j = np.searchsorted(idx_frac, m)
        rows.append([f"top {m * 100:.0f}%", f"{acc_frac[j] * 100:.1f}%"])
    print(banner("Fig. 12: CDF of embedding accesses"))
    print(format_table(["index fraction", "access share"], rows))

    j10 = np.searchsorted(idx_frac, 0.10)
    share10 = acc_frac[j10]
    analytic = zipf_head_share(1.4, len(idx_frac), 0.10)
    print(f"top-10% share: measured={share10:.3f} analytic={analytic:.3f} paper=0.938")
    assert share10 > 0.90  # paper: 93.8%
    assert np.all(np.diff(acc_frac) >= -1e-12)
