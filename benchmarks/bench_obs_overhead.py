"""Telemetry overhead gate: instrumented vs bare hot paths stay within 3%.

The observability plane (:mod:`repro.obs`) instruments the repo's two
hottest composites — the vectorized DLRM train step (pooled forward,
pooled backward, fused row-wise Adagrad, touched-row drain) and the
batched serving-window cache engine — behind a single
``registry().enabled`` flag.  The contract is that this instrumentation
is *batched*: one counter ``add`` per array, one ``observe_many`` per
latency batch, never per-item Python (enforced statically by the
``obs-discipline`` lint rule).  This benchmark measures what that costs.

Both workloads are timed with telemetry enabled and disabled in
*interleaved* best-of-N windows (on/off alternate inside every attempt,
so drift in host contention hits both sides equally), and the relative
slowdown of the instrumented side is reported.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --check-overhead 3

``--check-overhead X`` exits non-zero if either composite slows down by
more than ``X``% with telemetry on (the CI gate uses 3).  Min-of-N
timing makes the comparison robust to one-sided noise; negative deltas
(instrumented measured faster, pure jitter) clamp to zero.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.dlrm.embedding import EmbeddingTable
from repro.dlrm.optim import RowwiseAdagrad
from repro.obs import registry, set_enabled


def _best_and_samples(fn, repeats: int) -> tuple[float, list[float]]:
    """One timing window: best seconds plus every sample."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return min(samples), samples


def measure_pair(fn, repeats: int, attempts: int) -> tuple[float, float, list[float]]:
    """Best instrumented/bare seconds for ``fn``, interleaved per attempt.

    The on/off order flips every attempt: consecutive identical runs of
    these composites drift ~15% as the allocator arena and caches settle,
    so a fixed order would systematically charge the warm-up tail to
    whichever side always ran first.  Returns ``(t_on, t_off,
    on_samples)``; telemetry is left enabled.
    """
    fn()  # warm caches and the allocator arena outside the timers
    best = {True: float("inf"), False: float("inf")}
    on_samples: list[float] = []
    try:
        for attempt in range(attempts):
            order = (True, False) if attempt % 2 == 0 else (False, True)
            for enabled in order:
                set_enabled(enabled)
                t, samples = _best_and_samples(fn, repeats)
                best[enabled] = min(best[enabled], t)
                if enabled:
                    on_samples.extend(samples)
    finally:
        set_enabled(True)
    return best[True], best[False], on_samples


def overhead_pct(t_on: float, t_off: float) -> float:
    """Relative slowdown of the instrumented side, clamped at zero."""
    return max(0.0, (t_on / t_off - 1.0) * 100.0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ids", type=int, default=100_000,
                        help="ids/batch for the DLRM train-step composite")
    parser.add_argument("--rows", type=int, default=100_000)
    parser.add_argument("--dim", type=int, default=8)
    parser.add_argument("--accesses", type=int, default=50_000,
                        help="inference accesses for the cache-window composite")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--attempts", type=int, default=3)
    parser.add_argument(
        "--check-overhead",
        type=float,
        default=None,
        help="fail if either composite slows by more than this percent",
    )
    args = parser.parse_args(argv)

    # Sibling bench modules own the workloads; the script dir is on
    # sys.path when run as `python benchmarks/bench_obs_overhead.py`.
    import bench_cache_window_throughput as cache_bench
    import bench_dlrm_train_throughput as dlrm_bench
    from _emit import emit_bench_result

    dlrm_bench._pin_allocator()
    if not registry().enabled:
        set_enabled(True)

    # -- DLRM composite train step (the model-plane gate's vectorized side)
    rng = np.random.default_rng(7)
    ids, offsets, grad_out = dlrm_bench.make_workload(
        args.ids, args.rows, args.dim, mean_bag=2, max_bag=8, rng=rng
    )
    table = EmbeddingTable(args.rows, args.dim, rng=np.random.default_rng(0))
    opt = RowwiseAdagrad(lr=dlrm_bench.LR, eps=dlrm_bench.EPS)
    t_on, t_off, on_samples = measure_pair(
        lambda: dlrm_bench.vec_train_step(table, opt, ids, offsets, grad_out),
        args.repeats,
        args.attempts,
    )
    dlrm_overhead = overhead_pct(t_on, t_off)
    dlrm_ids_per_s = ids.size / t_on
    dlrm_p99_ms = float(np.percentile(np.asarray(on_samples), 99)) * 1e3

    # -- serving-window cache engine (default interval policy)
    w = cache_bench.build_window(args.accesses, args.rows)
    c_on, c_off, _ = measure_pair(
        lambda: cache_bench.run_window_batched(w, "interval"),
        args.repeats,
        args.attempts,
    )
    cache_overhead = overhead_pct(c_on, c_off)

    print("telemetry overhead (instrumented vs bare, best-of-N interleaved)")
    print(f"{'composite':<26} {'bare':>10} {'instrumented':>13} {'overhead':>9}")
    print(
        f"{'dlrm train step':<26} {t_off * 1e3:>9.2f}ms {t_on * 1e3:>12.2f}ms "
        f"{dlrm_overhead:>8.2f}%"
    )
    print(
        f"{'cache window (interval)':<26} {c_off * 1e3:>9.2f}ms {c_on * 1e3:>12.2f}ms "
        f"{cache_overhead:>8.2f}%"
    )

    emit_bench_result(
        "obs_overhead",
        shape=(
            f"{args.ids} ids/batch dlrm, {args.accesses} accesses/window, "
            f"{args.rows} rows"
        ),
        ids_per_sec=dlrm_ids_per_s,
        p99_ms=dlrm_p99_ms,
        extra={
            "overhead_pct_dlrm": dlrm_overhead,
            "overhead_pct_cache_window": cache_overhead,
        },
    )

    if args.check_overhead is not None:
        worst = max(dlrm_overhead, cache_overhead)
        if worst > args.check_overhead:
            print(
                f"FAIL: telemetry overhead {worst:.2f}% exceeds "
                f"{args.check_overhead}%",
                file=sys.stderr,
            )
            return 1
        print(f"OK: telemetry overhead <= {args.check_overhead}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
