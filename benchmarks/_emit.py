"""Shared benchmark result emitter: every CI-gated bench writes one file.

Each gated benchmark calls :func:`emit_bench_result` at the end of its
``main()`` and a ``BENCH_<name>.json`` file appears in the working
directory (or ``$REPRO_BENCH_DIR`` when set), carrying the numbers the
gate was judged on plus the git revision they were measured at.  The
schema is deliberately flat so CI can archive the files as artifacts and
trend them across commits:

``schema_version``
    integer, bumped only on breaking layout changes.
``name``
    the benchmark's short name (also the filename suffix).
``shape``
    a string describing the workload shape (ids/batch, rows, bag sizes).
``ids_per_sec``
    throughput of the engine under test, in its natural unit.
``speedup``
    the gated ratio vs the seed reference (``null`` for absolute benches).
``p99_ms``
    tail latency when the bench measures one (``null`` otherwise).
``git_rev``
    short commit hash, or ``"unknown"`` outside a git checkout.

The emitter never raises on environmental problems (missing git binary,
detached tree): benchmark numbers still print and gates still gate; only
the provenance field degrades.
"""

from __future__ import annotations

import json
import os
import subprocess

__all__ = ["BENCH_SCHEMA_VERSION", "emit_bench_result"]

BENCH_SCHEMA_VERSION = 1


def _git_rev() -> str:
    """Short commit hash of the tree being benchmarked, or ``unknown``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def emit_bench_result(
    name: str,
    shape: str,
    ids_per_sec: float,
    speedup: float | None = None,
    p99_ms: float | None = None,
    extra: dict | None = None,
) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Args:
        name: short benchmark name; becomes the filename suffix, so keep
            it ``[a-z0-9_]``.
        shape: human-readable workload shape the numbers were taken at.
        ids_per_sec: headline throughput of the engine under test.
        speedup: gated ratio vs the seed reference, if the bench has one.
        p99_ms: tail latency in milliseconds, if the bench measures one.
        extra: additional flat key/value pairs merged into the payload
            (reserved keys cannot be overridden).

    The output directory is ``$REPRO_BENCH_DIR`` when set (created if
    missing), else the current working directory.
    """
    payload: dict[str, object] = {}
    if extra:
        payload.update(extra)
    payload.update(
        {
            "schema_version": BENCH_SCHEMA_VERSION,
            "name": str(name),
            "shape": str(shape),
            "ids_per_sec": float(ids_per_sec),
            "speedup": None if speedup is None else float(speedup),
            "p99_ms": None if p99_ms is None else float(p99_ms),
            "git_rev": _git_rev(),
        }
    )
    out_dir = os.environ.get("REPRO_BENCH_DIR") or os.getcwd()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
