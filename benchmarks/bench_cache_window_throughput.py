"""Serving-window cache-engine throughput: seed per-key loop vs batched.

The serving-window simulator was the last per-key hot path in the tree:
every inference lookup, trainer read and trainer write walked
``LRUCache.access`` (one OrderedDict operation each) plus a per-key shadow
publish/lookup.  This benchmark replays the exact colocated window of
``ColocatedNodeSimulator.run_colocated_full`` — warm + inference streams
through the serving cache, burst-chunked trainer reads/writes through the
training cache, shadow-buffer absorption in between — through both
implementations over identical precomputed streams:

* **seed loop** — the pre-vectorization engine body, verbatim semantics:
  ``repro.hardware.cache.LRUCache`` accesses one key at a time with
  ``ShadowEmbeddingBuffer`` publishes/lookups per key;
* **batched lru** — the engine's exactness-pinned mode:
  ``repro.hardware.vectorcache.BatchLRUCache.access_many`` over whole
  streams plus ``BatchedShadowReuse`` per trainer burst — must agree with
  the seed loop on every hit/miss count (asserted);
* **batched interval** — the engine's default ``cache_policy``:
  the CLOCK-style :class:`~repro.hardware.vectorcache.IntervalCache`
  coarse-recency model, whose hits are a checked conservative subset of
  the exact LRU's.

The CI gate applies to the default (interval) engine; the exact-LRU row is
reported alongside so the cost of exactness stays visible.  Streams are
generated once, outside the timers — they are the workload, not the
engine.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cache_window_throughput.py
    PYTHONPATH=src python benchmarks/bench_cache_window_throughput.py \
        --accesses 100000 --check-speedup 10

``--check-speedup X`` exits non-zero unless the batched window engine is at
least ``X`` times faster (the CI smoke gate, mirroring the kernel and
parameter-plane gates).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.data.zipf import ZipfSampler
from repro.hardware.cache import CacheStats, LRUCache
from repro.hardware.reuse import BatchedShadowReuse, ShadowEmbeddingBuffer
from repro.hardware.vectorcache import BatchLRUCache, IntervalCache

MB = 1024 ** 2


def build_window(accesses: int, num_rows: int, seed: int = 0):
    """Streams + geometry of one colocated serving window (Fig. 16 shape)."""
    training_ratio, read_fraction = 12.0, 0.4
    inf_sampler = ZipfSampler(
        num_rows, 0.9, rng=np.random.default_rng(seed + 1), method="alias"
    )
    train_sampler = ZipfSampler(
        num_rows, 0.15, rng=np.random.default_rng(seed + 2), method="alias"
    )
    rng = np.random.default_rng(seed)
    warm = inf_sampler.sample(accesses)
    inf = inf_sampler.sample(accesses)
    n_train = int(accesses * training_ratio)
    n_read = int(n_train * read_fraction)
    reads = rng.choice(inf, size=n_read, replace=True)
    writes = train_sampler.sample(n_train - n_read)
    return {
        "num_rows": num_rows,
        "row_bytes": 128,
        "l3_inf": 10 * int(0.25 * MB),
        "l3_train": 2 * int(0.25 * MB),
        "burst": 256,
        "trainer_burst_every": 8,
        "reuse_capacity_rows": 40_000,
        "warm": warm,
        "inf": inf,
        "reads": reads,
        "writes": writes,
    }


def _trainer_schedule(w):
    burst = w["burst"]
    num_bursts = max(1, (len(w["inf"]) + burst - 1) // burst)
    num_trainer_bursts = max(1, num_bursts // w["trainer_burst_every"])
    read_chunk = (len(w["reads"]) + num_trainer_bursts - 1) // num_trainer_bursts
    write_chunk = (
        len(w["writes"]) + num_trainer_bursts - 1
    ) // num_trainer_bursts
    fired = num_bursts // w["trainer_burst_every"]
    return fired, read_chunk, write_chunk


def run_window_seed(w) -> tuple[CacheStats, CacheStats, int]:
    """The pre-vectorization engine body: one dict op per key."""
    cache_inf = LRUCache(w["l3_inf"])
    cache_train = LRUCache(max(w["l3_train"], 1))
    shadow = ShadowEmbeddingBuffer(w["reuse_capacity_rows"])
    row_bytes = w["row_bytes"]
    dummy = np.zeros((1, 1))
    for key in w["warm"]:
        cache_inf.access(int(key), row_bytes)
        shadow.publish(0, np.array([key]), dummy)
    inf_stats, train_stats = CacheStats(), CacheStats()
    absorbed = 0
    fired, read_chunk, write_chunk = _trainer_schedule(w)
    burst, every = w["burst"], w["trainer_burst_every"]
    inf, reads, writes = w["inf"], w["reads"], w["writes"]
    num_bursts = max(1, (len(inf) + burst - 1) // burst)
    read_offset, write_offset = 1 << 41, 1 << 40
    trainer_step = 0
    for b in range(num_bursts):
        for key in inf[b * burst : (b + 1) * burst]:
            if cache_inf.access(int(key), row_bytes):
                inf_stats.hits += 1
            else:
                inf_stats.misses += 1
            shadow.publish(0, np.array([key]), dummy)
        if (b + 1) % every:
            continue
        t = trainer_step
        trainer_step += 1
        for key in reads[t * read_chunk : (t + 1) * read_chunk]:
            if shadow.lookup(0, int(key)) is not None:
                absorbed += 1
                train_stats.hits += 1
            elif cache_train.access(int(key) + read_offset, row_bytes):
                train_stats.hits += 1
            else:
                train_stats.misses += 1
        for key in writes[t * write_chunk : (t + 1) * write_chunk]:
            if cache_train.access(int(key) + write_offset, row_bytes):
                train_stats.hits += 1
            else:
                train_stats.misses += 1
    return inf_stats, train_stats, absorbed


def run_window_batched(w, policy: str = "lru") -> tuple[CacheStats, CacheStats, int]:
    """The vectorized engine body: whole streams per cache."""
    num_rows, row_bytes = w["num_rows"], w["row_bytes"]
    factory = BatchLRUCache if policy == "lru" else IntervalCache
    cache_inf = factory(w["l3_inf"], universe=num_rows)
    cache_train = factory(max(w["l3_train"], 1), universe=2 * num_rows)
    warm, inf, reads, writes = w["warm"], w["inf"], w["reads"], w["writes"]
    cache_inf.access_many(warm, row_bytes)
    inf_stats, train_stats = CacheStats(), CacheStats()
    cache_inf.access_many(inf, row_bytes, stats=inf_stats)
    shadow = BatchedShadowReuse(
        np.concatenate([warm, inf]), w["reuse_capacity_rows"]
    )
    fired, read_chunk, write_chunk = _trainer_schedule(w)
    burst, every = w["burst"], w["trainer_burst_every"]
    absorbed = 0
    pieces = []
    for t in range(fired):
        step_reads = reads[t * read_chunk : (t + 1) * read_chunk]
        if step_reads.size:
            prefix = warm.size + min(inf.size, (t + 1) * every * burst)
            mask = shadow.absorbed(prefix, step_reads)
            hits = int(mask.sum())
            absorbed += hits
            train_stats.hits += hits
            step_reads = step_reads[~mask]
        pieces.append(step_reads)
        pieces.append(writes[t * write_chunk : (t + 1) * write_chunk] + num_rows)
    if pieces:
        cache_train.access_many(
            np.concatenate(pieces), row_bytes, stats=train_stats
        )
    return inf_stats, train_stats, absorbed


def _best_seconds(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=100_000,
                        help="inference accesses per window")
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        help="fail unless the batched window engine reaches this speedup",
    )
    args = parser.parse_args(argv)
    if args.accesses < 1000:
        parser.error("--accesses must be at least 1000")

    w = build_window(args.accesses, args.rows)
    total_keys = (
        w["warm"].size + w["inf"].size + w["reads"].size + w["writes"].size
    )

    # correctness first: exact mode must agree with the seed loop on
    # every aggregate, and the interval model's hits must be a
    # conservative subset of the exact LRU's.
    seed_res = run_window_seed(w)
    lru_res = run_window_batched(w, "lru")
    for s, v, label in zip(seed_res, lru_res, ("inference", "training", "absorbed")):
        if isinstance(s, CacheStats):
            assert (s.hits, s.misses) == (v.hits, v.misses), (
                label, (s.hits, s.misses), (v.hits, v.misses))
        else:
            assert s == v, (label, s, v)
    itv_res = run_window_batched(w, "interval")
    assert itv_res[0].hits <= lru_res[0].hits
    assert itv_res[1].hits <= lru_res[1].hits
    assert itv_res[2] == lru_res[2]  # shadow absorption is policy-free

    t_seed = _best_seconds(lambda: run_window_seed(w), args.repeats)
    t_lru = _best_seconds(lambda: run_window_batched(w, "lru"), args.repeats)
    t_itv = _best_seconds(
        lambda: run_window_batched(w, "interval"), args.repeats
    )
    speedup = t_seed / t_itv

    print(
        f"serving-window cache engine @ {args.accesses:,}-access windows, "
        f"{total_keys:,} cache/shadow touches (keys/sec)"
    )
    print(f"{'engine':<26} {'keys/s':>16} {'window time':>12}")
    print(f"{'seed per-key loop':<26} {total_keys / t_seed:>16,.0f} {t_seed:>11.2f}s")
    print(f"{'batched exact lru':<26} {total_keys / t_lru:>16,.0f} {t_lru:>11.2f}s")
    print(f"{'batched interval (engine)':<26} {total_keys / t_itv:>16,.0f} {t_itv:>11.2f}s")
    print(
        f"speedup: {speedup:.1f}x (default engine policy)  |  "
        f"exact lru: {t_seed / t_lru:.1f}x"
    )

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "cache_window",
        shape=f"{args.accesses} accesses/window, {args.rows} rows",
        ids_per_sec=total_keys / t_itv,
        speedup=speedup,
        extra={"speedup_exact_lru": t_seed / t_lru, "window_seconds": t_itv},
    )

    if args.check_speedup is not None:
        if speedup < args.check_speedup:
            print(
                f"FAIL: window-engine speedup {speedup:.1f}x below "
                f"{args.check_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: window-engine speedup >= {args.check_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
