"""Fig. 6 — cumulative PCA variance of embedding gradients.

Paper result: 3-6 principal components capture >=80% of gradient variance,
with per-table spread between the best and worst case.
"""

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.lowrank import collect_gradient_spectra, spread_extremes
from repro.experiments.reporting import banner, format_table


def test_fig06_gradient_lowrank(once):
    config = AccuracyConfig(pretrain_steps=150)
    spectra = once(
        lambda: collect_gradient_spectra(
            config, snapshots=5, steps_per_snapshot=15
        )
    )
    smallest, largest = spread_extremes(spectra)
    rows = []
    for label, spec in (("smallest spread", smallest), ("largest spread", largest)):
        curve = spec.mean_curve()
        rows.append(
            [
                f"table {spec.table} ({label})",
                f"{curve[0]:.3f}",
                f"{curve[2]:.3f}",
                f"{curve[min(5, len(curve) - 1)]:.3f}",
                f"{spec.ranks_at_alpha}",
            ]
        )
    print(banner("Fig. 6: cumulative variance of top-k gradient components"))
    print(format_table(["table", "k=1", "k=3", "k=6", "rank@0.8 per snapshot"], rows))

    # <=6 components reach 80% of the variance in every table (paper's O2)
    for spec in spectra:
        curve = spec.mean_curve()
        assert curve[min(5, len(curve) - 1)] >= 0.80
    assert largest.rank_spread >= smallest.rank_spread
