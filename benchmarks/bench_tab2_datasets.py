"""Table II — the dataset inventory used throughout the evaluation.

Prints each dataset spec (rows, sparse fields, vocabulary sizes, on-disk
footprint) from ``repro.data.datasets.TABLE_II`` and instantiates the live
drifting-stream generator behind every spec, so a broken spec fails here
rather than inside an accuracy bench.  No knobs — the inventory *is* the
fixture every other benchmark builds on.  Expected output: one table row
per dataset with EMT sizes in the multi-GB..TB range, mirroring the
paper's Table II proportions.
"""

from repro.data.datasets import TABLE_II, build_stream
from repro.experiments.reporting import banner, format_table

TB = 1024 ** 4


def test_tab2_dataset_inventory(once):
    def run():
        # also exercise the live generators each spec can instantiate
        return {
            spec.name: build_stream(spec, total_rows=600, seed=1).next_batch(32)
            for spec in TABLE_II
        }

    batches = once(run)
    rows = [
        [
            spec.name,
            f"{spec.dataset_gb:.1f} GB",
            f"{spec.num_samples / 1e6:.1f}M",
            f"{spec.embedding_bytes / TB:.2f} TB"
            if spec.embedding_bytes >= TB
            else f"{spec.embedding_bytes / 1024 ** 3:.2f} GB",
            spec.num_sparse_fields,
        ]
        for spec in TABLE_II
    ]
    print(banner("Table II: datasets for accuracy & performance testing"))
    print(
        format_table(
            ["dataset", "size", "samples", "EMT size", "sparse fields"], rows
        )
    )
    assert len(batches) == 5
    for spec in TABLE_II:
        assert batches[spec.name].size == 32
