"""Hot-path throughput: vectorized kernels vs per-id reference loops.

Measures ids/sec for the three id-granular operations on LiveUpdate's
serving/training hot path — LoRA delta application, hot-index membership
checks, and fleet routing — comparing the vectorized kernel layer
(:mod:`repro.core.kernels` and everything built on it) against the per-id
Python reference implementations the repository started from.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath_throughput.py
    PYTHONPATH=src python benchmarks/bench_hotpath_throughput.py \
        --ids 100000 --check-speedup 10

``--check-speedup X`` exits non-zero unless LoRA delta application and
hot-index checks are at least ``X`` times faster than the reference loops
(the CI smoke gate).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.hot_index import HotIndexFilter
from repro.core.lora import LoRAAdapter
from repro.serving.router import ConsistentHashRouter

DIM = 32
RANK = 8


# --------------------------------------------------------------- references
def ref_delta_rows(
    a: np.ndarray, b: np.ndarray, id_to_slot: dict[int, int], ids: np.ndarray
) -> np.ndarray:
    """Seed implementation: one dict probe + matvec per id."""
    out = np.zeros((ids.shape[0], b.shape[1]))
    for j, i in enumerate(ids):
        slot = id_to_slot.get(int(i))
        if slot is not None:
            out[j] = a[slot] @ b
    return out


def ref_is_hot(
    table: dict[int, float], ids: np.ndarray, horizon: float | None
) -> np.ndarray:
    """Seed implementation: one dict probe per id."""
    if horizon is None:
        return np.array([int(i) in table for i in ids], dtype=bool)
    return np.array(
        [table.get(int(i), -np.inf) >= horizon for i in ids], dtype=bool
    )


def ref_route(router: ConsistentHashRouter, keys: np.ndarray) -> np.ndarray:
    """Seed implementation: per-key scalar ring lookup + probe."""
    return np.array([router.route_one(int(k)) for k in keys], dtype=np.int64)


# -------------------------------------------------------------------- timing
def _rate(fn, num_ids: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return num_ids / best


def bench_delta(num_ids: int, rng: np.random.Generator) -> tuple[float, float]:
    capacity = max(1024, num_ids // 4)
    # universe known (embedding-table row space): direct-address slot map
    adapter = LoRAAdapter(
        DIM, RANK, capacity, rng=np.random.default_rng(0), universe=num_ids * 2
    )
    active = rng.choice(num_ids * 2, size=capacity, replace=False)
    adapter.activate_batch(active)
    adapter.a[:] = rng.normal(size=adapter.a.shape)
    # The serving overlay only reaches delta application for *hot* ids
    # (cold ids short-circuit to the base table), so every id pays the
    # per-row matvec in the reference implementation.
    ids = rng.choice(active, size=num_ids)
    id_to_slot = {
        int(i): int(s)
        for i, s in zip(adapter.active_ids, adapter.active_slots)
    }
    ref = _rate(
        lambda: ref_delta_rows(adapter.a, adapter.b, id_to_slot, ids), num_ids
    )
    vec = _rate(lambda: adapter.delta_rows(ids), num_ids)
    np.testing.assert_allclose(
        adapter.delta_rows(ids),
        ref_delta_rows(adapter.a, adapter.b, id_to_slot, ids),
        atol=1e-9,
    )
    return ref, vec


def bench_hot_index(num_ids: int, rng: np.random.Generator) -> tuple[float, float]:
    # Dense layout: the serving configuration (embedding-table universe).
    filt = HotIndexFilter(1, expiry_s=50.0, num_rows=num_ids * 2)
    marked = rng.integers(0, num_ids * 2, size=num_ids // 2)
    filt.mark(0, marked, now=100.0)
    ids = rng.integers(0, num_ids * 2, size=num_ids)
    table = {int(i): 100.0 for i in marked}
    horizon = 100.0 - 50.0
    ref = _rate(lambda: ref_is_hot(table, ids, horizon), num_ids)
    vec = _rate(lambda: filt.is_hot(0, ids), num_ids)
    np.testing.assert_array_equal(
        filt.is_hot(0, ids), ref_is_hot(table, ids, horizon)
    )
    return ref, vec


def bench_route(num_ids: int, rng: np.random.Generator) -> tuple[float, float]:
    keys = rng.integers(0, 1 << 31, size=num_ids)
    ref_router = ConsistentHashRouter(list(range(16)), virtual_nodes=64)
    vec_router = ConsistentHashRouter(list(range(16)), virtual_nodes=64)
    ref = _rate(lambda: ref_route(ref_router, keys), num_ids)
    vec = _rate(lambda: vec_router.route(keys), num_ids)
    np.testing.assert_array_equal(
        vec_router.assign(keys), ref_route(ref_router, keys)
    )
    return ref, vec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ids", type=int, default=100_000)
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        help="fail unless delta + hot-index speedups reach this factor",
    )
    args = parser.parse_args(argv)
    if args.ids < 1024:
        parser.error("--ids must be at least 1024")
    rng = np.random.default_rng(7)

    rows = []
    for name, bench in (
        ("lora delta_rows", bench_delta),
        ("hot-index is_hot", bench_hot_index),
        ("router route", bench_route),
    ):
        ref, vec = bench(args.ids, rng)
        rows.append((name, ref, vec, vec / ref))

    print(f"hot-path throughput @ {args.ids:,} ids/batch (ids/sec)")
    print(f"{'kernel':<18} {'per-id ref':>14} {'vectorized':>14} {'speedup':>9}")
    for name, ref, vec, speedup in rows:
        print(f"{name:<18} {ref:>14,.0f} {vec:>14,.0f} {speedup:>8.1f}x")

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "hotpath",
        shape=f"{args.ids} ids/batch",
        ids_per_sec=rows[0][2],
        speedup=min(s for name, _, _, s in rows if name != "router route"),
        extra={f"speedup_{n.split()[0].replace('-', '_')}": s for n, _, _, s in rows},
    )

    if args.check_speedup is not None:
        gated = {name: s for name, _, _, s in rows if name != "router route"}
        failing = {n: s for n, s in gated.items() if s < args.check_speedup}
        if failing:
            print(
                f"FAIL: speedup below {args.check_speedup}x for {failing}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: delta + hot-index speedups >= {args.check_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
