"""Dense-stack throughput: fused MLP + batched interaction vs seed loops.

Measures samples/sec for one dense-stack train step — bottom MLP forward,
pairwise dot interaction, top MLP forward, full backward, SGD update —
comparing the fused model plane (:mod:`repro.dlrm.mlp`'s single
activation-cache / flat-gradient passes plus
:mod:`repro.dlrm.interaction`'s triu-indexed batched gram) against the
seed-style implementation the repository started from: per-layer Python
lists with a fresh allocation per activation and per-gradient, and a
Python loop over all ``C(m, 2)`` feature pairs in the interaction's
forward *and* backward.

With ``m`` feature vectors the seed pays ``m * (m - 1) / 2`` interpreter
round-trips per direction (351 at the default ``m = 27``) while the
fused path runs one batched matmul each way, so the ratio grows
quadratically with the number of sparse fields.  MLP widths are kept
small so the comparison isolates the loop structure rather than BLAS
time that both sides share.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dense_stack_throughput.py
    PYTHONPATH=src python benchmarks/bench_dense_stack_throughput.py \
        --batch 2048 --check-speedup 10

``--check-speedup X`` exits non-zero unless the fused composite is at
least ``X`` times faster than the seed loop (the CI gate).  Both
composites are equivalence-asserted — probabilities, every parameter
gradient, and the post-step parameters — before anything is timed.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.dlrm.interaction import DotInteraction
from repro.dlrm.mlp import MLP

LR = 0.05


def _pin_allocator() -> None:
    """Keep glibc from mmap/munmap-cycling the benchmark's big arrays.

    Same rationale as the other throughput gates: both composites
    allocate MB-scale transients per step, and with default glibc
    thresholds every block above 128 KiB round-trips through mmap.
    No-op off glibc.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None)
        m_trim_threshold, m_mmap_threshold = -1, -3  # malloc.h constants
        libc.mallopt(m_mmap_threshold, 1 << 30)
        libc.mallopt(m_trim_threshold, 1 << 30)
    except (OSError, AttributeError):
        pass  # not glibc (musl, macOS): nothing to tune


def _sigmoid(z):
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


# --------------------------------------------------------------- seed reference
def seed_mlp_forward(weights, biases, x, final_relu):
    """Seed forward: a fresh allocation and list append per layer."""
    acts = [x]
    h = x
    last = len(weights) - 1
    for layer, (w, b) in enumerate(zip(weights, biases)):
        z = h @ w + b
        if layer != last or final_relu:
            z = np.maximum(z, 0.0)
        acts.append(z)
        h = z
    return h, acts


def seed_mlp_backward(weights, acts, grad_out, final_relu):
    """Seed backward: per-layer grad lists, fresh arrays throughout."""
    grad_w = []
    grad_b = []
    g = grad_out
    last = len(weights) - 1
    for layer in range(last, -1, -1):
        if layer != last or final_relu:
            g = g * (acts[layer + 1] > 0.0)
        grad_w.insert(0, acts[layer].T @ g)
        grad_b.insert(0, g.sum(axis=0))
        g = g @ weights[layer].T
    return g, grad_w, grad_b


def seed_interaction_forward(dense, embeddings):
    """Seed interaction: one Python iteration per feature pair."""
    feats = [dense] + list(embeddings)
    m = len(feats)
    pairs = []
    for i in range(m):
        for j in range(i + 1, m):
            pairs.append(np.sum(feats[i] * feats[j], axis=1))
    out = np.concatenate([dense] + [p[:, None] for p in pairs], axis=1)
    return out, feats


def seed_interaction_backward(feats, grad_out, dim):
    """Seed interaction backward: two scatter-accumulates per pair."""
    m = len(feats)
    grad_feats = [np.zeros_like(f) for f in feats]
    grad_feats[0] += grad_out[:, :dim]
    col = dim
    for i in range(m):
        for j in range(i + 1, m):
            g = grad_out[:, col][:, None]
            grad_feats[i] += g * feats[j]
            grad_feats[j] += g * feats[i]
            col += 1
    return grad_feats


def seed_step(bw, bb, tw, tb, dense, embeddings, labels, dim):
    """Seed composite: full dense-stack forward/backward + per-layer SGD."""
    h_bottom, acts_b = seed_mlp_forward(bw, bb, dense, final_relu=True)
    inter_out, feats = seed_interaction_forward(h_bottom, embeddings)
    logits, acts_t = seed_mlp_forward(tw, tb, inter_out, final_relu=False)
    probs = _sigmoid(logits[:, 0])
    grad_logit = ((probs - labels) / labels.shape[0])[:, None]
    grad_inter, gw_t, gb_t = seed_mlp_backward(
        tw, acts_t, grad_logit, final_relu=False
    )
    grad_feats = seed_interaction_backward(feats, grad_inter, dim)
    _, gw_b, gb_b = seed_mlp_backward(
        bw, acts_b, grad_feats[0], final_relu=True
    )
    for w, gw in zip(bw, gw_b):
        w -= LR * gw
    for b, gb in zip(bb, gb_b):
        b -= LR * gb
    for w, gw in zip(tw, gw_t):
        w -= LR * gw
    for b, gb in zip(tb, gb_t):
        b -= LR * gb
    return probs, gw_b, gb_b, gw_t, gb_t


# ------------------------------------------------------------------- fused path
def fused_step(bottom, top, interaction, dense, embeddings, labels):
    """Fused composite: cached forwards, flat-gradient backwards, axpy SGD."""
    h_bottom, cache_b = bottom.forward(dense)
    inter_out, stacked = interaction.forward(h_bottom, embeddings)
    logits, cache_t = top.forward(inter_out)
    probs = _sigmoid(logits[:, 0])
    grad_logit = ((probs - labels) / labels.shape[0])[:, None]
    grad_inter, top_grads = top.backward(cache_t, grad_logit)
    grad_dense, _ = interaction.backward(stacked, grad_inter)
    _, bottom_grads = bottom.backward(cache_b, grad_dense)
    bottom.apply_grads(bottom_grads, LR)
    top.apply_grads(top_grads, LR)
    return probs, bottom_grads, top_grads


# -------------------------------------------------------------------- workload
def make_stack(num_dense, num_sparse, dim, hidden, seed):
    """Fused modules plus a seed-side copy of the identical parameters."""
    rng = np.random.default_rng(seed)
    bottom = MLP([num_dense, hidden, dim], rng=rng, final_relu=True)
    interaction = DotInteraction(1 + num_sparse, dim)
    top = MLP([interaction.output_dim, hidden, 1], rng=rng)
    bw = [w.copy() for w in bottom.weights]
    bb = [b.copy() for b in bottom.biases]
    tw = [w.copy() for w in top.weights]
    tb = [b.copy() for b in top.biases]
    return bottom, top, interaction, bw, bb, tw, tb


def make_batch(batch, num_dense, num_sparse, dim, rng):
    dense = rng.normal(size=(batch, num_dense))
    embeddings = [rng.normal(size=(batch, dim)) for _ in range(num_sparse)]
    labels = rng.integers(0, 2, size=batch).astype(np.float64)
    return dense, embeddings, labels


def _rates(ref_fn, vec_fn, batch, repeats, attempts=3):
    """Best samples/sec per side over interleaved measurement windows."""
    best = [float("inf"), float("inf")]
    for fn in (ref_fn, vec_fn):
        fn()  # warm the allocator arena and caches before timing
    for _ in range(attempts):
        for side, fn in enumerate((ref_fn, vec_fn)):
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                best[side] = min(best[side], time.perf_counter() - t0)
    return batch / best[0], batch / best[1]


def bench_stack(batch, num_dense, num_sparse, dim, hidden, repeats, rng):
    """Equivalence-check then time both dense-stack composites."""
    bottom, top, interaction, bw, bb, tw, tb = make_stack(
        num_dense, num_sparse, dim, hidden, seed=0
    )
    dense, embeddings, labels = make_batch(
        batch, num_dense, num_sparse, dim, rng
    )

    # -- equivalence: one step from identical initial parameters
    s_probs, s_gw_b, s_gb_b, s_gw_t, s_gb_t = seed_step(
        bw, bb, tw, tb, dense, embeddings, labels, dim
    )
    f_probs, bottom_grads, top_grads = fused_step(
        bottom, top, interaction, dense, embeddings, labels
    )
    np.testing.assert_allclose(f_probs, s_probs, rtol=1e-9, atol=1e-12)
    for fused_g, seed_g in zip(bottom_grads.weights, s_gw_b):
        np.testing.assert_allclose(fused_g, seed_g, rtol=1e-9, atol=1e-12)
    for fused_g, seed_g in zip(bottom_grads.biases, s_gb_b):
        np.testing.assert_allclose(fused_g, seed_g, rtol=1e-9, atol=1e-12)
    for fused_g, seed_g in zip(top_grads.weights, s_gw_t):
        np.testing.assert_allclose(fused_g, seed_g, rtol=1e-9, atol=1e-12)
    for fused_g, seed_g in zip(top_grads.biases, s_gb_t):
        np.testing.assert_allclose(fused_g, seed_g, rtol=1e-9, atol=1e-12)
    for fused_w, seed_w in zip(bottom.weights + top.weights, bw + tw):
        np.testing.assert_allclose(fused_w, seed_w, rtol=1e-9, atol=1e-12)
    for fused_b, seed_b in zip(bottom.biases + top.biases, bb + tb):
        np.testing.assert_allclose(fused_b, seed_b, rtol=1e-9, atol=1e-12)

    ref, vec = _rates(
        lambda: seed_step(bw, bb, tw, tb, dense, embeddings, labels, dim),
        lambda: fused_step(bottom, top, interaction, dense, embeddings, labels),
        batch,
        repeats,
    )
    return ref, vec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=2048)
    parser.add_argument("--num-dense", type=int, default=16)
    parser.add_argument(
        "--num-sparse", type=int, default=26,
        help="sparse fields; the interaction sees 1 + this many vectors",
    )
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument(
        "--hidden", type=int, default=32,
        help="hidden width of both MLPs (kept small: the loop structure, "
        "not BLAS time, is what is being compared)",
    )
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        help="fail unless the fused composite reaches this speedup factor",
    )
    args = parser.parse_args(argv)
    if args.batch < 32:
        parser.error("--batch must be at least 32")
    _pin_allocator()
    rng = np.random.default_rng(11)

    m = 1 + args.num_sparse
    print(
        f"dense-stack train-step throughput @ batch {args.batch:,}, "
        f"m={m} features x d={args.dim} ({m * (m - 1) // 2} pairs), "
        f"hidden {args.hidden} (samples/sec)"
    )
    ref, vec = bench_stack(
        args.batch, args.num_dense, args.num_sparse, args.dim,
        args.hidden, args.repeats, rng,
    )
    speedup = vec / ref
    print(f"{'seed loops':<14} {ref:>12,.0f}")
    print(f"{'fused':<14} {vec:>12,.0f} {speedup:>8.1f}x")

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "dense_stack",
        shape=(
            f"batch {args.batch}, m={m} x d={args.dim}, "
            f"hidden {args.hidden}"
        ),
        ids_per_sec=vec,
        speedup=speedup,
    )

    if args.check_speedup is not None:
        if speedup < args.check_speedup:
            print(
                f"FAIL: dense-stack speedup {speedup:.1f}x below "
                f"{args.check_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: dense-stack speedup >= {args.check_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
