"""Tail-latency availability of the resilient read path under gray failure.

The question ISSUE 10's client plane has to answer: when ONE replica of
the parameter plane turns slow (a gray failure — it answers, just 20x
late), what happens to the p99 of a puller's modelled read latency?

Three scenarios, same store, same workload, measured on the simulated
clock so results replay bit-for-bit:

1. **baseline** — fault-free resilient pulls; p99 is the healthy wave.
2. **slow, no hedging** — one shard slowed by ``--slow-factor``; every
   wave waits for the straggler, so p99 tracks the full slowdown.
3. **slow, hedged** — same fault, hedging on: once the primary exceeds
   the health tracker's learned latency quantile, a backup read races it
   and the wave completes at ``hedge_delay + backup`` instead.

The gate (``--check-p99-ratio``, CI default 3) requires the *hedged*
slow-replica p99 to stay within that multiple of the fault-free
baseline — hedging has to actually buy the availability it claims.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_resilience_availability.py
    PYTHONPATH=src python benchmarks/bench_resilience_availability.py \
        --slow-factor 40 --check-p99-ratio 3

Results land in ``BENCH_resilience_availability.json``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cluster.faults import FaultEvent, FaultPlane, FaultSchedule
from repro.cluster.resilience import HedgedRead, ResiliencePolicy
from repro.cluster.shardstore import ShardClient, ShardedParameterStore
from repro.hardware.latency import percentile

DIM = 16


def _fresh_store(num_shards: int, replication: int, num_rows: int, rng):
    store = ShardedParameterStore(
        num_shards=num_shards,
        row_bytes=DIM * 8,
        row_dim=DIM,
        replication=replication,
    )
    all_ids = np.arange(num_rows)
    store.publish_batch("emb", all_ids, rng.normal(size=(num_rows, DIM)))
    return store


def _slow_plane(store, victim: int, factor: float) -> FaultPlane:
    schedule = FaultSchedule(
        [FaultEvent(at_s=1.0, kind="slow_node", shard_id=victim, factor=factor)]
    )
    return FaultPlane(store, schedule)


def run_scenario(
    store,
    policy: ResiliencePolicy,
    rng,
    trials: int,
    warmup: int,
    num_rows: int,
    delta_rows: int,
    plane: FaultPlane | None = None,
) -> dict[str, float]:
    """Publish-then-pull ``trials`` times; returns latency stats in ms.

    The ``warmup`` pulls run before any scheduled fault fires (the plane
    is only advanced past its events afterwards) so the health tracker's
    hedge quantile is learned from *healthy* waves — exactly the state a
    long-lived client is in when a replica starts degrading.
    """
    client = ShardClient(store, faults=plane, resilience=policy)
    lat_ms: list[float] = []
    hedges = 0
    rows_pulled = 0
    total_s = 0.0
    for trial in range(warmup + trials):
        if trial == warmup and plane is not None:
            plane.advance_to(1.0)  # the slow_node fault lands here
        size = int(rng.integers(delta_rows // 2, delta_rows + 1))
        hot = rng.choice(num_rows, size=size, replace=False)
        store.publish_batch("emb", hot, rng.normal(size=(size, DIM)))
        _, report = client.pull_tables(["emb"])
        if report.degraded:
            raise RuntimeError("gray failure must not degrade the pull")
        if trial >= warmup:
            lat_ms.append(report.seconds * 1e3)
            hedges += report.hedges
            rows_pulled += report.rows
            total_s += report.seconds
    client.close()
    samples = np.asarray(lat_ms, dtype=np.float64)
    return {
        "p50_ms": percentile(samples, 50),
        "p99_ms": percentile(samples, 99),
        "mean_ms": float(samples.mean()),
        "hedges": float(hedges),
        "rows_per_s": rows_pulled / max(total_s, 1e-12),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=65_536)
    parser.add_argument("--delta-fraction", type=float, default=0.01)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--replication", type=int, default=3)
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--warmup", type=int, default=32)
    parser.add_argument("--slow-factor", type=float, default=20.0)
    parser.add_argument(
        "--check-p99-ratio",
        type=float,
        default=None,
        help="fail if the hedged slow-replica p99 exceeds this multiple "
        "of the fault-free baseline p99 (CI gate: 3)",
    )
    args = parser.parse_args(argv)
    if args.rows < 1000:
        parser.error("--rows must be at least 1000")
    if args.slow_factor < 2.0:
        parser.error("--slow-factor must be at least 2.0 to mean anything")
    delta_rows = max(8, int(args.rows * args.delta_fraction))

    def scenario(policy, with_fault: bool, seed: int):
        rng = np.random.default_rng(seed)
        store = _fresh_store(
            args.shards, args.replication, args.rows, rng
        )
        plane = None
        if with_fault:
            victim = int(store.shard_ids[0])
            plane = _slow_plane(store, victim, args.slow_factor)
        return run_scenario(
            store,
            policy,
            rng,
            args.trials,
            args.warmup,
            args.rows,
            delta_rows,
            plane=plane,
        )

    # Same seed everywhere: identical publish workload, only the fault
    # and the hedging policy differ between scenarios.
    baseline = scenario(ResiliencePolicy(), with_fault=False, seed=23)
    unhedged = scenario(
        ResiliencePolicy(hedge=HedgedRead(min_delay_s=1e9)),
        with_fault=True,
        seed=23,
    )
    hedged = scenario(ResiliencePolicy(), with_fault=True, seed=23)

    hedged_ratio = hedged["p99_ms"] / baseline["p99_ms"]
    unhedged_ratio = unhedged["p99_ms"] / baseline["p99_ms"]

    print(
        f"resilient pull availability @ {args.rows:,} rows, "
        f"{args.shards} shards, R={args.replication}, "
        f"one replica {args.slow_factor:g}x slow "
        f"({args.trials} pulls, modelled ms)"
    )
    print(
        f"{'scenario':<22} {'p50':>9} {'p99':>9} {'vs base':>8} {'hedges':>7}"
    )
    for label, stats, ratio in (
        ("fault-free baseline", baseline, 1.0),
        ("slow, no hedging", unhedged, unhedged_ratio),
        ("slow, hedged", hedged, hedged_ratio),
    ):
        print(
            f"{label:<22} {stats['p50_ms']:>9.3f} {stats['p99_ms']:>9.3f} "
            f"{ratio:>7.2f}x {stats['hedges']:>7.0f}"
        )

    from _emit import emit_bench_result  # sibling module; script dir is on sys.path

    emit_bench_result(
        "resilience_availability",
        shape=(
            f"{args.rows} rows, {args.shards} shards, "
            f"R={args.replication}, slow x{args.slow_factor:g}, "
            f"{args.trials} pulls"
        ),
        ids_per_sec=hedged["rows_per_s"],
        p99_ms=hedged["p99_ms"],
        extra={
            "baseline_p99_ms": baseline["p99_ms"],
            "unhedged_p99_ms": unhedged["p99_ms"],
            "hedged_p99_ms": hedged["p99_ms"],
            "hedged_ratio_x": hedged_ratio,
            "unhedged_ratio_x": unhedged_ratio,
            "hedges_fired": hedged["hedges"],
            "slow_factor": args.slow_factor,
        },
    )

    if args.check_p99_ratio is not None:
        if hedged_ratio > args.check_p99_ratio:
            print(
                f"FAIL: hedged slow-replica p99 {hedged_ratio:.2f}x above "
                f"{args.check_p99_ratio}x fault-free baseline",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: hedged slow-replica p99 {hedged_ratio:.2f}x <= "
            f"{args.check_p99_ratio}x fault-free baseline "
            f"(unhedged would be {unhedged_ratio:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
