"""Ablation — priority merge vs averaging merge (Algorithm 3's conflict rule).

The paper resolves write conflicts deterministically (max rank id wins),
guaranteeing replica consistency.  Averaging is the natural alternative;
this bench checks both converge replicas and compares fleet accuracy.
"""

import numpy as np

from repro.core.sync import SparseLoRASynchronizer
from repro.core.trainer import LoRATrainer, TrainerConfig
from repro.data.stream import InferenceLogBuffer
from repro.dlrm.metrics import auc_roc
from repro.experiments.accuracy import AccuracyConfig, build_pretrained_world
from repro.experiments.reporting import banner, format_table


def _run_policy(policy: str, config: AccuracyConfig) -> tuple[float, float]:
    stream, base_model = build_pretrained_world(config)
    trainers = [
        LoRATrainer(
            base_model.copy(),
            InferenceLogBuffer(600.0),
            TrainerConfig(
                rank=8, lr=0.25, dynamic_rank=False, dynamic_prune=False, seed=r
            ),
        )
        for r in range(4)
    ]
    sync = SparseLoRASynchronizer(trainers, sync_interval=16, merge_policy=policy)
    for _ in range(128):
        batches = []
        for _ in range(4):
            b = stream.next_batch(128, local=True)
            batches.append((b.dense, b.sparse_ids, b.labels))
        sync.step_all(batches)
        stream.advance(5.0)
    ev = stream.next_batch(4000, local=True)
    aucs = [
        auc_roc(ev.labels, t.model.predict(ev.dense, ev.sparse_ids, overlay=t.overlay()))
        for t in trainers
    ]
    return float(np.mean(aucs)), sync.replica_divergence(0)


def test_ablation_merge_policy(once):
    config = AccuracyConfig(table_sizes=(800, 600), num_dense=3, pretrain_steps=150)

    def run():
        return {p: _run_policy(p, config) for p in ("priority", "average")}

    results = once(run)
    rows = [
        [policy, f"{auc:.4f}", f"{div:.4f}"]
        for policy, (auc, div) in results.items()
    ]
    print(banner("Ablation: conflict-merge policy"))
    print(format_table(["policy", "fleet AUC", "post-sync divergence"], rows))

    # both policies keep replicas close right after sync (residual
    # divergence comes only from slot-capacity differences across ranks)
    for _, (auc, div) in results.items():
        assert div < 2.0
        assert auc > 0.5
    # and their accuracy is comparable (the rule is about determinism,
    # not accuracy — the paper picks priority for replica consistency)
    auc_p = results["priority"][0]
    auc_a = results["average"][0]
    assert abs(auc_p - auc_a) < 0.03
