"""Ablation — fixed hourly full sync vs drift-triggered adaptive sync.

The paper re-anchors serving replicas on a fixed hourly schedule to bound
model drift (Fig. 8).  The natural extension is to measure drift directly
and sync only when it matters.  This bench compares the two policies on the
same serving horizon: the adaptive policy should match (or beat) fixed-sync
accuracy while spending no more full-sync bandwidth.
"""

import numpy as np

from repro.cluster.nodes import InferenceNode, TrainingCluster
from repro.cluster.parameter_server import ParameterServer
from repro.core.drift import AdaptiveSyncPolicy, DriftMonitor
from repro.core.liveupdate import LiveUpdate, LiveUpdateConfig
from repro.core.trainer import TrainerConfig
from repro.dlrm.metrics import auc_roc
from repro.experiments.accuracy import AccuracyConfig, build_pretrained_world
from repro.experiments.reporting import banner, format_table


def _run(policy: str, config: AccuracyConfig):
    stream, base_model = build_pretrained_world(config)
    server = ParameterServer(row_bytes=config.embedding_dim * 8)
    cluster = TrainingCluster(base_model.copy(), server)
    node = InferenceNode(base_model.copy(), server)
    live = LiveUpdate(
        node,
        trainer_cluster=cluster,
        trainer_config=TrainerConfig(rank=8, lr=0.25, dynamic_rank=False),
        config=LiveUpdateConfig(steps_per_slot=4),
    )
    monitor = DriftMonitor(node.model)
    adaptive = AdaptiveSyncPolicy(
        drift_threshold=8.0, max_interval_s=3600.0, min_interval_s=600.0
    )
    aucs, syncs = [], 0
    slots = int(config.horizon_s / config.slot_s)
    for slot in range(1, slots + 1):
        now = slot * config.slot_s
        cluster.train_on(stream.next_batch(config.train_batch))
        serve = stream.next_batch(config.serve_batch, local=True)
        probs = node.predict(serve, overlay=live.overlay())
        aucs.append(auc_roc(serve.labels, probs))
        live.on_serving_batch(serve)
        live.on_slot(now)
        stream.advance(config.slot_s)
        sample = monitor.observe(
            now, node.model, lora_collection=live.trainer.lora, reference=cluster.model
        )
        if policy == "fixed":
            fire = now % 3600.0 == 0 and slot != slots
        else:
            fire = adaptive.should_sync(now, sample) and slot != slots
        if fire:
            live.on_full_sync(now)
            monitor.re_anchor(node.model)
            adaptive.mark_synced(now)
            syncs += 1
    valid = [a for a in aucs if not np.isnan(a)]
    return float(np.mean(valid)), syncs


def test_ablation_drift_triggered_sync(once):
    config = AccuracyConfig(horizon_s=5400.0, update_interval_s=600.0)

    def run():
        return {p: _run(p, config) for p in ("fixed", "adaptive")}

    results = once(run)
    rows = [
        [policy, f"{auc:.4f}", syncs]
        for policy, (auc, syncs) in results.items()
    ]
    print(banner("Ablation: fixed hourly vs drift-triggered full sync"))
    print(format_table(["policy", "mean AUC", "full syncs"], rows))

    fixed_auc, fixed_syncs = results["fixed"]
    adaptive_auc, adaptive_syncs = results["adaptive"]
    # adaptive must not lose meaningful accuracy
    assert adaptive_auc > fixed_auc - 0.01
    # and both policies actually fired
    assert fixed_syncs >= 1
    assert adaptive_syncs >= 1
