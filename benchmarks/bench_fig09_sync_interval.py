"""Fig. 9 — accuracy gap under different LoRA sync intervals.

Paper result: longer synchronization intervals leave replicas blind to each
other's updates, opening an accuracy gap versus tight synchronization.
"""

from repro.experiments.accuracy import AccuracyConfig
from repro.experiments.reporting import banner, format_table
from repro.experiments.sync_interval import sync_interval_sweep

from conftest import FAST


def test_fig09_sync_interval(once):
    config = AccuracyConfig(
        table_sizes=(800, 600), num_dense=3, pretrain_steps=150
    )
    intervals = (4, 32, 256) if FAST else (4, 16, 64, 256)
    results = once(
        lambda: sync_interval_sweep(
            intervals=intervals,
            num_ranks=4,
            total_steps=256,
            config=config,
        )
    )
    tight = results[0]
    rows = [
        [
            r.sync_interval,
            f"{r.mean_auc:.4f}",
            f"{(tight.mean_auc - r.mean_auc) * 100:+.3f}%",
            r.sync_rounds,
            f"{r.total_sync_seconds:.2f}s",
        ]
        for r in results
    ]
    print(banner("Fig. 9: accuracy gap vs LoRA sync interval"))
    print(
        format_table(
            ["interval", "fleet AUC", "gap vs tight", "rounds", "sync time"],
            rows,
        )
    )
    # the loosest sync must trail the tightest
    assert results[-1].mean_auc <= tight.mean_auc + 1e-4
    # and exchange fewer rounds
    assert results[-1].sync_rounds < tight.sync_rounds
