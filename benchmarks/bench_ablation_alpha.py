"""Ablation — PCA variance threshold alpha (Eq. 2).

The paper uses alpha in [0.8, 0.95]: higher alpha selects more components
(larger rank, more memory) for marginal accuracy.  This bench sweeps alpha
and reports the rank Eq. 2 selects on real gradient snapshots.
"""

import numpy as np

from repro.core.rank_adaptation import rank_for_variance
from repro.experiments.accuracy import AccuracyConfig, build_pretrained_world
from repro.experiments.reporting import banner, format_table
from repro.dlrm.optim import RowwiseAdagrad


def test_ablation_alpha_threshold(once):
    config = AccuracyConfig(pretrain_steps=150)

    def run():
        stream, model = build_pretrained_world(config)
        opt = RowwiseAdagrad(lr=config.train_lr)
        grads = [[] for _ in model.embeddings]
        for _ in range(30):
            b = stream.next_batch(256, duration_s=5.0)
            res = model.train_step(b.dense, b.sparse_ids, b.labels, opt)
            for f, g in enumerate(res.embedding_grads):
                grads[f].append(g.rows)
        return [np.concatenate(g, axis=0) for g in grads]

    matrices = once(run)
    alphas = (0.7, 0.8, 0.9, 0.95, 0.99)
    rows = []
    ranks_by_alpha = {}
    for alpha in alphas:
        ranks = [rank_for_variance(m, alpha) for m in matrices]
        ranks_by_alpha[alpha] = ranks
        rows.append([f"{alpha:.2f}", *ranks])
    headers = ["alpha"] + [f"table {f}" for f in range(len(matrices))]
    print(banner("Ablation: Eq. 2 rank selection vs alpha"))
    print(format_table(headers, rows))

    # rank selection is monotone in alpha for every table
    for f in range(len(matrices)):
        per_table = [ranks_by_alpha[a][f] for a in alphas]
        assert all(x <= y for x, y in zip(per_table, per_table[1:]))
    # the paper's default band keeps ranks small relative to d=16
    assert max(ranks_by_alpha[0.8]) <= 8
