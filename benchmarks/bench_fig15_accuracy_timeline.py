"""Fig. 15 — accuracy over two hours with 5-minute updates (BD-TB-like).

Paper result: LiveUpdate tracks or exceeds DeltaUpdate most of the time;
QuickUpdate sits slightly below DeltaUpdate; the hourly full sync re-anchors
the reduced-update methods (grey vertical line at 60 min).
"""

import numpy as np

from repro.experiments.accuracy import AccuracyConfig, run_comparison
from repro.experiments.factories import (
    delta_update,
    live_update,
    quick_update,
)
from repro.experiments.reporting import banner, format_table

from conftest import FAST


def test_fig15_accuracy_timeline(once):
    cfg = AccuracyConfig(
        horizon_s=3600.0 if FAST else 7200.0,
        update_interval_s=300.0,
        full_sync_interval_s=3600.0,
    )
    runs = once(
        lambda: run_comparison(
            cfg,
            {
                "DeltaUpdate": delta_update,
                "QuickUpdate-5%": quick_update(0.05),
                "LiveUpdate": live_update(),
            },
        )
    )
    # print one AUC sample per 10 minutes
    delta_tl = runs["DeltaUpdate"].timeline
    stride = max(1, len(delta_tl) // 12)
    rows = []
    for i in range(0, len(delta_tl), stride):
        rows.append(
            [f"{delta_tl[i].time_s / 60:.0f} min"]
            + [f"{runs[k].timeline[i].auc:.4f}" for k in runs]
        )
    print(banner("Fig. 15: AUC timeline, 5-min updates, hourly full sync"))
    print(format_table(["time", *runs.keys()], rows))
    for name, run in runs.items():
        print(f"{name:16s} mean AUC = {run.mean_auc:.4f}")

    assert runs["LiveUpdate"].mean_auc > runs["DeltaUpdate"].mean_auc
    assert runs["QuickUpdate-5%"].mean_auc < runs["DeltaUpdate"].mean_auc

    # LiveUpdate wins most of the timeline, not just on average
    wins = np.mean(
        [
            l.auc > d.auc
            for l, d in zip(runs["LiveUpdate"].timeline, delta_tl)
            if not (np.isnan(l.auc) or np.isnan(d.auc))
        ]
    )
    assert wins > 0.5
