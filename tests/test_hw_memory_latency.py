"""Tests for the DRAM bandwidth model and latency model."""

import numpy as np
import pytest

from repro.hardware.latency import InferenceLatencyModel, percentile
from repro.hardware.memory import MemoryBandwidthModel, MemoryTraffic


class TestMemoryTraffic:
    def test_addition(self):
        t = MemoryTraffic(1.0, 2.0) + MemoryTraffic(3.0, 4.0)
        assert t.read_gbps == 4.0 and t.write_gbps == 6.0
        assert t.total_gbps == 10.0


class TestMemoryBandwidthModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBandwidthModel(peak_gbps=0)

    def test_utilization_capped(self):
        m = MemoryBandwidthModel(peak_gbps=10, max_utilization=0.9)
        assert m.utilization(MemoryTraffic(read_gbps=100)) == 0.9

    def test_write_penalty_counts_more(self):
        m = MemoryBandwidthModel(peak_gbps=100, write_penalty=2.0)
        reads = m.utilization(MemoryTraffic(read_gbps=10))
        writes = m.utilization(MemoryTraffic(write_gbps=10))
        assert writes == pytest.approx(2 * reads)

    def test_latency_grows_with_load(self):
        m = MemoryBandwidthModel(peak_gbps=100)
        idle = m.access_latency_ns(MemoryTraffic())
        loaded = m.access_latency_ns(MemoryTraffic(read_gbps=60))
        assert idle == pytest.approx(m.base_latency_ns)
        assert loaded > idle

    def test_headroom(self):
        m = MemoryBandwidthModel(peak_gbps=100, max_utilization=0.9)
        assert m.headroom_gbps(MemoryTraffic()) == pytest.approx(90.0)
        assert m.headroom_gbps(MemoryTraffic(read_gbps=95)) == 0.0

    def test_inference_traffic_scales_with_misses(self):
        hi = MemoryBandwidthModel.inference_traffic(1000, 100, 128, 0.2)
        lo = MemoryBandwidthModel.inference_traffic(1000, 100, 128, 0.8)
        assert hi.read_gbps == pytest.approx(4 * lo.read_gbps)
        assert hi.write_gbps == 0.0

    def test_training_traffic_has_writes(self):
        t = MemoryBandwidthModel.training_traffic(
            1000, 100, 128, 0.0, write_fraction=0.5
        )
        assert t.write_gbps > 0
        assert t.read_gbps == pytest.approx(t.write_gbps)


class TestLatencyModel:
    def test_hit_ratio_validated(self):
        m = InferenceLatencyModel()
        with pytest.raises(ValueError):
            m.mean_lookup_ms(1.5, MemoryTraffic())
        with pytest.raises(ValueError):
            m.mean_lookup_ms(0.5, MemoryTraffic(), remote_fraction=2.0)

    def test_higher_hit_ratio_is_faster(self):
        m = InferenceLatencyModel()
        t = MemoryTraffic(read_gbps=10)
        assert m.mean_lookup_ms(0.9, t) < m.mean_lookup_ms(0.1, t)

    def test_remote_fraction_slows_misses(self):
        m = InferenceLatencyModel()
        t = MemoryTraffic()
        local = m.mean_lookup_ms(0.5, t, remote_fraction=0.0)
        remote = m.mean_lookup_ms(0.5, t, remote_fraction=1.0)
        assert remote > local

    def test_contention_slows_lookups(self):
        m = InferenceLatencyModel(memory=MemoryBandwidthModel(peak_gbps=50))
        calm = m.mean_lookup_ms(0.5, MemoryTraffic(read_gbps=1))
        busy = m.mean_lookup_ms(0.5, MemoryTraffic(read_gbps=40))
        assert busy > calm

    def test_sample_shapes_and_positivity(self):
        m = InferenceLatencyModel(seed=1)
        s = m.sample_latencies(1000, 0.7, MemoryTraffic())
        assert s.shape == (1000,)
        assert (s > 0).all()

    def test_p99_above_p50(self):
        m = InferenceLatencyModel(seed=2)
        bd = m.breakdown(0.7, MemoryTraffic())
        assert bd.total_p99_ms > bd.total_p50_ms

    def test_deterministic_with_seed(self):
        a = InferenceLatencyModel(seed=5).sample_latencies(10, 0.5, MemoryTraffic())
        b = InferenceLatencyModel(seed=5).sample_latencies(10, 0.5, MemoryTraffic())
        np.testing.assert_array_equal(a, b)


class TestPercentile:
    def test_empty_is_nan(self):
        assert np.isnan(percentile(np.array([]), 99))

    def test_median(self):
        assert percentile(np.array([1.0, 2.0, 3.0]), 50) == 2.0
