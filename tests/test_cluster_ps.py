"""Tests for the versioned parameter server (facade over the shard store)."""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.cluster.parameter_server import ParameterServer


@pytest.fixture
def ps():
    return ParameterServer(num_shards=4, row_bytes=32)


class TestPublish:
    def test_version_bumps_per_batch(self, ps):
        v1 = ps.publish_batch("t", np.array([0, 1]), np.zeros((2, 4)))
        v2 = ps.publish_batch("t", np.array([2]), np.zeros((1, 4)))
        assert (v1, v2) == (1, 2)

    def test_length_mismatch_raises(self, ps):
        with pytest.raises(ValueError):
            ps.publish_batch("t", np.array([0]), np.zeros((2, 4)))

    def test_write_stats_accumulate(self, ps):
        ps.publish_batch("t", np.arange(8), np.zeros((8, 4)))
        written = sum(s.rows_written for s in ps.shard_stats)
        assert written == 8
        assert sum(s.bytes_written for s in ps.shard_stats) == 8 * 32

    def test_total_bytes(self, ps):
        ps.publish_batch("t", np.arange(5), np.zeros((5, 4)))
        assert ps.total_bytes == 5 * 32
        assert len(ps) == 5


class TestPull:
    def test_pull_rows_found_and_missing(self, ps):
        ps.publish_batch("t", np.array([3]), np.full((1, 4), 7.0))
        mask, rows = ps.pull_rows("t", np.array([3, 9]))
        assert mask.tolist() == [True, False]
        np.testing.assert_array_equal(rows[0], np.full(4, 7.0))
        np.testing.assert_array_equal(rows[1], np.zeros(4))

    def test_pull_rows_all_missing(self, ps):
        mask, rows = ps.pull_rows("t", np.array([1, 2]))
        assert not mask.any()

    def test_pull_delta_since_version(self, ps):
        ps.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = ps.version
        ps.publish_batch("t", np.array([1, 2]), np.ones((2, 4)))
        idx, rows, now = ps.pull_delta("t", since_version=v)
        assert idx.tolist() == [1, 2]
        assert now == ps.version

    def test_pull_delta_empty(self, ps):
        idx, rows, v = ps.pull_delta("t", since_version=ps.version)
        assert idx.size == 0

    def test_rewrite_advances_row_version(self, ps):
        ps.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = ps.version
        ps.publish_batch("t", np.array([0]), np.ones((1, 4)))
        idx, rows, _ = ps.pull_delta("t", since_version=v)
        assert idx.tolist() == [0]
        np.testing.assert_array_equal(rows[0], np.ones(4))

    def test_tables_are_namespaced(self, ps):
        ps.publish_batch("a", np.array([0]), np.zeros((1, 4)))
        idx, _, _ = ps.pull_delta("b", since_version=0)
        assert idx.size == 0

    def test_delta_volume_matches_pull(self, ps):
        ps.publish_batch("t", np.arange(6), np.zeros((6, 4)))
        assert ps.delta_volume_bytes("t", 0) == 6 * 32

    def test_published_rows_are_copies(self, ps):
        rows = np.zeros((1, 4))
        ps.publish_batch("t", np.array([0]), rows)
        rows += 99.0
        _, pulled = ps.pull_rows("t", np.array([0]))
        np.testing.assert_array_equal(pulled[0], np.zeros(4))

    def test_pull_rows_vectorized_gather_many(self, ps):
        """Large gathers come back correct without any per-id probing."""
        ids = np.arange(500)
        ps.publish_batch("t", ids, np.tile(ids[:, None], (1, 4)).astype(float))
        mask, rows = ps.pull_rows("t", np.array([499, 7, 1000, 0]))
        assert mask.tolist() == [True, True, False, True]
        np.testing.assert_array_equal(rows[0], np.full(4, 499.0))
        np.testing.assert_array_equal(rows[2], np.zeros(4))


class TestShardDeterminism:
    """Shard placement must not depend on the process hash seed.

    Regression: the seed implementation's ``_shard_of`` used the builtin
    ``hash()``, which is salted per process via PYTHONHASHSEED, so shard
    statistics differed between processes.  Placement now routes through
    the splitmix64 ring.
    """

    def test_pinned_shard_assignments(self):
        ps = ParameterServer(num_shards=4, row_bytes=32)
        shards = [ps._shard_of(("t", i)) for i in range(8)]
        assert shards == [0, 2, 0, 0, 3, 1, 2, 3]

    def test_shard_of_agrees_with_store_placement(self, ps):
        ids = np.arange(64)
        owners = ps.store.placement.shard_of("t", ids)
        singles = [ps._shard_of(("t", int(i))) for i in ids]
        assert owners.tolist() == singles

    @pytest.mark.parametrize("hash_seed", ["0", "42"])
    def test_shard_stats_identical_across_processes(self, hash_seed):
        """Per-shard write counts are byte-identical under any PYTHONHASHSEED."""
        snippet = (
            "import numpy as np;"
            "from repro.cluster.parameter_server import ParameterServer;"
            "ps = ParameterServer(num_shards=4, row_bytes=32);"
            "ps.publish_batch('t', np.arange(256), np.zeros((256, 4)));"
            "print([s.rows_written for s in ps.shard_stats])"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        here = ParameterServer(num_shards=4, row_bytes=32)
        here.publish_batch("t", np.arange(256), np.zeros((256, 4)))
        assert out == str([s.rows_written for s in here.shard_stats])
