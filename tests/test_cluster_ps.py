"""Tests for the versioned parameter server."""

import numpy as np
import pytest

from repro.cluster.parameter_server import ParameterServer


@pytest.fixture
def ps():
    return ParameterServer(num_shards=4, row_bytes=32)


class TestPublish:
    def test_version_bumps_per_batch(self, ps):
        v1 = ps.publish_batch("t", np.array([0, 1]), np.zeros((2, 4)))
        v2 = ps.publish_batch("t", np.array([2]), np.zeros((1, 4)))
        assert (v1, v2) == (1, 2)

    def test_length_mismatch_raises(self, ps):
        with pytest.raises(ValueError):
            ps.publish_batch("t", np.array([0]), np.zeros((2, 4)))

    def test_write_stats_accumulate(self, ps):
        ps.publish_batch("t", np.arange(8), np.zeros((8, 4)))
        written = sum(s.rows_written for s in ps.shard_stats)
        assert written == 8
        assert sum(s.bytes_written for s in ps.shard_stats) == 8 * 32

    def test_total_bytes(self, ps):
        ps.publish_batch("t", np.arange(5), np.zeros((5, 4)))
        assert ps.total_bytes == 5 * 32
        assert len(ps) == 5


class TestPull:
    def test_pull_rows_found_and_missing(self, ps):
        ps.publish_batch("t", np.array([3]), np.full((1, 4), 7.0))
        mask, rows = ps.pull_rows("t", np.array([3, 9]))
        assert mask.tolist() == [True, False]
        np.testing.assert_array_equal(rows[0], np.full(4, 7.0))
        np.testing.assert_array_equal(rows[1], np.zeros(4))

    def test_pull_rows_all_missing(self, ps):
        mask, rows = ps.pull_rows("t", np.array([1, 2]))
        assert not mask.any()

    def test_pull_delta_since_version(self, ps):
        ps.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = ps.version
        ps.publish_batch("t", np.array([1, 2]), np.ones((2, 4)))
        idx, rows, now = ps.pull_delta("t", since_version=v)
        assert idx.tolist() == [1, 2]
        assert now == ps.version

    def test_pull_delta_empty(self, ps):
        idx, rows, v = ps.pull_delta("t", since_version=ps.version)
        assert idx.size == 0

    def test_rewrite_advances_row_version(self, ps):
        ps.publish_batch("t", np.array([0]), np.zeros((1, 4)))
        v = ps.version
        ps.publish_batch("t", np.array([0]), np.ones((1, 4)))
        idx, rows, _ = ps.pull_delta("t", since_version=v)
        assert idx.tolist() == [0]
        np.testing.assert_array_equal(rows[0], np.ones(4))

    def test_tables_are_namespaced(self, ps):
        ps.publish_batch("a", np.array([0]), np.zeros((1, 4)))
        idx, _, _ = ps.pull_delta("b", since_version=0)
        assert idx.size == 0

    def test_delta_volume_matches_pull(self, ps):
        ps.publish_batch("t", np.arange(6), np.zeros((6, 4)))
        assert ps.delta_volume_bytes("t", 0) == 6 * 32

    def test_published_rows_are_copies(self, ps):
        rows = np.zeros((1, 4))
        ps.publish_batch("t", np.array([0]), rows)
        rows += 99.0
        _, pulled = ps.pull_rows("t", np.array([0]))
        np.testing.assert_array_equal(pulled[0], np.zeros(4))
